//! Autotuning the replication factor — the paper's §V future-work
//! suggestion, both ways:
//!
//! 1. model-guided: sweep candidate `c` through the simulated machine and
//!    pick the predicted-fastest;
//! 2. measurement-guided: time a few real steps per candidate on the
//!    threaded runtime and keep the winner.
//!
//! Run with: `cargo run --release --example autotune`

use ca_nbody::autotune::{autotune_all_pairs, autotune_cutoff_1d, pick_fastest};
use ca_nbody::{run_distributed, Method, SimConfig};
use nbody_netsim::{hopper, intrepid};
use nbody_physics::{init, Boundary, Domain, RepulsiveInverseSquare, SemiImplicitEuler};

fn main() {
    // --- Model-guided tuning at cluster scale -------------------------
    println!("model-guided tuning (simulated machines):");
    for (machine, p, n) in [
        (hopper(), 1536usize, 12_288usize),
        (hopper(), 6144, 24_576),
        (intrepid(), 2048, 16_384),
    ] {
        let tune = autotune_all_pairs(&machine, p, n);
        print!("  all-pairs {} p={p} n={n}:", machine.name);
        for k in &tune.candidates {
            print!(" c={}:{:.1}ms", k.c, k.predicted_secs * 1e3);
        }
        println!("  -> best c = {}", tune.best_c);
    }
    let tune = autotune_cutoff_1d(&hopper(), 1536, 12_288, 0.25);
    println!(
        "  1D-cutoff Hopper p=1536 n=12288 rc=l/4 -> best c = {} ({:.1} ms)",
        tune.best_c,
        tune.best_time() * 1e3
    );

    // --- Measurement-guided tuning on the real threaded runtime -------
    println!("\nmeasurement-guided tuning (threaded runtime, p = 16):");
    let cfg = SimConfig {
        law: RepulsiveInverseSquare::default(),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps: 2,
    };
    let initial = init::uniform(1024, &cfg.domain, 4);
    let candidates = [1usize, 2, 4];
    let best = pick_fastest(&candidates, 2, |c| {
        let _ = run_distributed(&cfg, Method::CaAllPairs { c }, 16, &initial);
    });
    println!("  candidates {candidates:?} -> measured best c = {best}");
    println!(
        "  (in-process ranks share memory bandwidth, so the measured optimum \
         reflects this host, not a cluster — exactly why the paper suggests \
         tuning at runtime)"
    );
}
