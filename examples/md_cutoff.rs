//! Molecular-dynamics-style workload: a Lennard-Jones fluid with a finite
//! cutoff radius, run with the 2D communication-avoiding cutoff algorithm
//! (the Fig. 5 generalization of Algorithm 2), including the per-step
//! spatial re-assignment the paper charges as "Communication (Re-assign)".
//!
//! Run with: `cargo run --release --example md_cutoff`

use ca_nbody::{run_distributed, run_serial, Method, SimConfig};
use nbody_comm::Phase;
use nbody_physics::{
    diagnostics, init, Boundary, Cutoff, Domain, LennardJones, VelocityVerlet,
};

fn main() {
    // An LJ fluid at moderate density; sigma sets the particle "size".
    let domain = Domain::square(30.0);
    let sigma = 1.0;
    let r_c = 2.5 * sigma; // the classic LJ cutoff
    let law = Cutoff::new(
        LennardJones {
            epsilon: 1.0,
            sigma,
        },
        r_c,
    );
    let cfg = SimConfig {
        law,
        integrator: VelocityVerlet,
        domain,
        boundary: Boundary::Reflective,
        dt: 0.002,
        steps: 25,
    };
    // Lattice start (avoids overlapping LJ cores), thermalized.
    let mut initial = init::lattice(400, &domain);
    init::thermalize(&mut initial, 0.2, 3);

    println!("LJ fluid with cutoff: n = {}, rc = {r_c}", initial.len());
    let e0 = diagnostics::total_energy(&initial, &cfg.law, &domain, cfg.boundary);
    println!("  initial total energy: {e0:.4}");

    for (method, p, label) in [
        (Method::Ca2dCutoff { c: 1 }, 8, "CA 2D-cutoff c=1"),
        (Method::Ca2dCutoff { c: 2 }, 8, "CA 2D-cutoff c=2"),
        (Method::SpatialHalo2d, 8, "spatial halo    "),
    ] {
        let start = std::time::Instant::now();
        let result = run_distributed(&cfg, method, p, &initial);
        let wall = start.elapsed();
        let e1 = diagnostics::total_energy(&result.particles, &cfg.law, &domain, cfg.boundary);
        let reassign_msgs: u64 = result
            .stats
            .iter()
            .map(|s| s.phase(Phase::Reassign).messages)
            .sum();
        println!(
            "  {label}: energy {e1:.4} (drift {:+.2e}), {} re-assign msgs total, wall {:.2?}",
            e1 - e0,
            reassign_msgs,
            wall
        );
        assert_eq!(result.particles.len(), initial.len());
    }

    // The distributed cutoff trajectory must match the serial one.
    let serial = run_serial(&cfg, &initial);
    let dist = run_distributed(&cfg, Method::Ca2dCutoff { c: 2 }, 8, &initial);
    let max_err = dist
        .particles
        .iter()
        .zip(&serial)
        .map(|(a, b)| (a.pos - b.pos).norm())
        .fold(0.0, f64::max);
    println!("  max deviation vs serial: {max_err:.3e}");
    assert!(max_err < 1e-8);
    println!("OK.");
}
