//! An ASCII "movie" of a gravitational collapse, sampled from a
//! distributed run — demonstrates `run_distributed_sampled` and the
//! density diagnostics.
//!
//! Run with: `cargo run --release --example collapse_movie`

use ca_nbody::{run_distributed_sampled, Method, SimConfig};
use nbody_physics::{diagnostics, init, Boundary, Domain, Gravity, Particle, SemiImplicitEuler};

const W: usize = 48;
const H: usize = 18;

fn render(frame: &[Particle], domain: &Domain) -> String {
    let mut cells = vec![0u32; W * H];
    for p in frame {
        let x = ((p.pos.x - domain.min.x) / domain.length_x() * W as f64) as usize;
        let y = ((p.pos.y - domain.min.y) / domain.length_y() * H as f64) as usize;
        cells[y.min(H - 1) * W + x.min(W - 1)] += 1;
    }
    let glyphs = [' ', '.', ':', 'o', 'O', '@'];
    let mut out = String::new();
    for row in cells.chunks(W).rev() {
        out.push('|');
        for &c in row {
            out.push(glyphs[(c as usize).min(glyphs.len() - 1)]);
        }
        out.push_str("|\n");
    }
    out
}

fn main() {
    let domain = Domain::square(12.0);
    let cfg = SimConfig {
        law: Gravity {
            g: 2e-3,
            softening: 0.08,
        },
        integrator: SemiImplicitEuler,
        domain,
        boundary: Boundary::Open,
        dt: 0.02,
        steps: 120,
    };
    // Two clusters on a collision course.
    let mut initial = init::gaussian_clusters(400, &domain, 2, 0.8, 2013);
    init::thermalize(&mut initial, 1e-5, 3);

    println!("two-cluster gravitational collapse — 8 ranks, CA all-pairs c = 2\n");
    let frames = run_distributed_sampled(&cfg, Method::CaAllPairs { c: 2 }, 8, &initial, 30);
    println!("t = 0:");
    print!("{}", render(&initial, &domain));
    for (i, frame) in frames.iter().enumerate() {
        let r = mean_radius(frame);
        println!(
            "\nt = {:.1} (mean radius about the center of mass: {r:.2}):",
            (i + 1) as f64 * 30.0 * cfg.dt
        );
        print!("{}", render(frame, &domain));
    }
    let r0 = mean_radius(&initial);
    let r1 = mean_radius(frames.last().unwrap());
    println!("\nmean radius {r0:.2} -> {r1:.2}: the clusters merge under gravity.");
    assert!(r1 < r0);
}

fn mean_radius(ps: &[Particle]) -> f64 {
    let com = diagnostics::center_of_mass(ps);
    ps.iter().map(|p| p.pos.distance(com)).sum::<f64>() / ps.len() as f64
}
