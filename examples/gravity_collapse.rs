//! Gravity collapse: a self-gravitating particle cluster, demonstrating
//! the all-pairs API with an attractive force law, open boundaries, and a
//! sweep over replication factors with per-phase traffic accounting.
//!
//! Run with: `cargo run --release --example gravity_collapse`

use ca_nbody::{run_distributed, run_serial, Method, SimConfig};
use nbody_comm::Phase;
use nbody_physics::{diagnostics, init, Boundary, Domain, Gravity, SemiImplicitEuler};

fn main() {
    let domain = Domain::square(10.0);
    let cfg = SimConfig {
        law: Gravity {
            g: 5e-4,
            softening: 0.05,
        },
        integrator: SemiImplicitEuler,
        domain,
        boundary: Boundary::Open,
        dt: 0.01,
        steps: 40,
    };
    // Two gaussian sub-clusters that fall toward each other.
    let initial = init::gaussian_clusters(512, &domain, 2, 0.4, 99);
    let r0 = mean_radius(&initial);
    println!("gravity collapse: n = {}, {} steps", initial.len(), cfg.steps);
    println!("  initial mean radius about the center of mass: {r0:.4}");

    for (p, c) in [(4usize, 1usize), (8, 2), (16, 4)] {
        let start = std::time::Instant::now();
        let result = run_distributed(&cfg, Method::CaAllPairs { c }, p, &initial);
        let wall = start.elapsed();
        let r1 = mean_radius(&result.particles);
        let shift_msgs: u64 = result
            .stats
            .iter()
            .map(|s| s.phase(Phase::Shift).messages)
            .max()
            .unwrap_or(0);
        println!(
            "  p={p:>2} c={c}: mean radius {r1:.4} (collapsing), \
             {shift_msgs} shift msgs/rank over {} steps (p/c^2 = {} per step), wall {:.2?}",
            cfg.steps,
            p / (c * c),
            wall
        );
        assert!(r1 < r0, "cluster should contract under gravity");
    }

    // Momentum conservation: gravity is symmetric and the domain is open.
    let result = run_distributed(&cfg, Method::CaAllPairs { c: 2 }, 8, &initial);
    let momentum = diagnostics::total_momentum(&result.particles).norm();
    println!("  |total momentum| after distributed run: {momentum:.3e}");

    let serial = run_serial(&cfg, &initial);
    let max_err = result
        .particles
        .iter()
        .zip(&serial)
        .map(|(a, b)| (a.pos - b.pos).norm())
        .fold(0.0, f64::max);
    println!("  max deviation vs serial: {max_err:.3e}");
    assert!(max_err < 1e-8);
    println!("OK.");
}

fn mean_radius(particles: &[nbody_physics::Particle]) -> f64 {
    let com = diagnostics::center_of_mass(particles);
    particles.iter().map(|p| p.pos.distance(com)).sum::<f64>() / particles.len() as f64
}
