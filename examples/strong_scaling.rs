//! Strong-scaling study on the simulated machines: a miniature Fig. 3,
//! driven entirely through the public schedule + netsim APIs — how a user
//! would explore "what happens to my workload at 24K cores" without a
//! cluster allocation.
//!
//! Run with: `cargo run --release --example strong_scaling`

use ca_nbody::schedule::AllPairsParams;
use nbody_netsim::{hopper, intrepid, simulate, Machine};

fn study(machine: &Machine, n: usize, ps: &[usize], cs: &[usize]) {
    println!("\nstrong scaling of {} particles on {}", n, machine.name);
    print!("{:>8}", "cores");
    for c in cs {
        print!(" {:>9}", format!("c={c}"));
    }
    println!("   (parallel efficiency vs one core)");
    for &p in ps {
        print!("{:>8}", p);
        for &c in cs {
            if c * c <= p && p % (c * c) == 0 {
                let params = AllPairsParams::new(p, c, n);
                let rep = simulate(machine, p, |r| params.program(r));
                let compute: f64 = rep.per_rank.iter().map(|b| b.compute).sum();
                let eff = compute / (p as f64 * rep.makespan);
                print!(" {:>9.3}", eff);
            } else {
                print!(" {:>9}", "-");
            }
        }
        println!();
    }
}

fn main() {
    let ps = [256usize, 512, 1024, 2048, 4096];
    let cs = [1usize, 2, 4, 8, 16];
    study(&hopper(), 32_768, &ps, &cs);
    study(&intrepid(), 32_768, &ps, &cs);
    println!(
        "\nReading the table: with c = 1 efficiency collapses as the machine grows \
         (communication dominates); a moderate replication factor keeps it near 1 — \
         the paper's Fig. 3 in miniature."
    );
}
