//! MD observables from a distributed run: equilibrate a Lennard-Jones
//! fluid with the CA 2D-cutoff algorithm (force-shifted truncation, as in
//! production MD) under periodic boundaries — the extension beyond the
//! paper's non-periodic setup — then measure temperature and the radial
//! distribution function g(r).
//!
//! Run with: `cargo run --release --example lj_fluid_observables`

use ca_nbody::{run_distributed, Method, SimConfig};
use nbody_physics::{
    diagnostics, init, Boundary, Domain, LennardJones, ShiftedForce, VelocityVerlet,
};

fn main() {
    let n = 576; // 24 x 24 lattice
    let domain = Domain::square(26.0); // spacing ~1.08 sigma
    let law = ShiftedForce::new(LennardJones::default(), 2.5);
    let cfg = SimConfig {
        law,
        integrator: VelocityVerlet,
        domain,
        boundary: Boundary::Periodic,
        dt: 0.004,
        steps: 120,
    };
    let mut initial = init::lattice(n, &domain);
    init::thermalize(&mut initial, 0.45, 11);

    println!("LJ fluid (force-shifted rc = 2.5 sigma), n = {n}, periodic box {:.0}^2", 26.0);
    println!("  initial temperature: {:.3}", diagnostics::temperature(&initial));

    let start = std::time::Instant::now();
    let result = run_distributed(&cfg, Method::Ca2dCutoff { c: 2 }, 8, &initial);
    println!(
        "  equilibrated {} steps on 8 ranks (c = 2) in {:.2?}",
        cfg.steps,
        start.elapsed()
    );
    println!(
        "  final temperature:   {:.3}",
        diagnostics::temperature(&result.particles)
    );

    // g(r): the LJ fluid shows an exclusion core below ~0.9 sigma and a
    // first-neighbor peak near the potential minimum (~1.12 sigma).
    let g = diagnostics::radial_distribution(
        &result.particles,
        &domain,
        Boundary::Periodic,
        3.0,
        15,
    );
    println!("  g(r):");
    for (r, v) in &g {
        let bar = "#".repeat((v * 20.0).min(60.0) as usize);
        println!("    r={r:>5.2}  g={v:>5.2}  {bar}");
    }

    let core = g.iter().filter(|(r, _)| *r < 0.8).map(|(_, v)| *v).fold(0.0, f64::max);
    let peak = g
        .iter()
        .filter(|(r, _)| (0.9..1.6).contains(r))
        .map(|(_, v)| *v)
        .fold(0.0, f64::max);
    assert!(core < 0.2, "LJ core should be excluded, got g={core}");
    assert!(peak > 1.0, "first-neighbor shell should be enhanced, got g={peak}");
    println!("OK: exclusion core + first-neighbor peak present.");
}
