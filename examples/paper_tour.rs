//! A guided tour of the paper's claims, each demonstrated live at laptop
//! scale. Run with: `cargo run --release --example paper_tour`

use ca_nbody::schedule::AllPairsParams;
use ca_nbody::{run_distributed, run_serial, Method, ProcGrid, SimConfig};
use nbody_comm::Phase;
use nbody_netsim::{hopper, simulate};
use nbody_physics::{init, Boundary, Domain, RepulsiveInverseSquare, SemiImplicitEuler};

fn main() {
    println!("A Communication-Optimal N-Body Algorithm for Direct Interactions");
    println!("— a tour of the paper's claims, reproduced live.\n");

    claim_1_interpolation();
    claim_2_latency_bandwidth_factors();
    claim_3_lower_bound();
    claim_4_interior_optimum();
    claim_5_correctness();
    println!("\nTour complete. See EXPERIMENTS.md for the full-scale record.");
}

/// §III.A: c=1 is a particle decomposition, c=√p a force decomposition.
fn claim_1_interpolation() {
    println!("1. The algorithm interpolates between Plimpton's decompositions (§III.A)");
    for (c, expect) in [(1usize, "particle decomposition: p shift steps"),
                        (4, "force decomposition: 1 shift step")] {
        let grid = ProcGrid::new_all_pairs(16, c).unwrap();
        println!(
            "   c={c}: {} teams x {c} rows, {} shift steps  ({expect})",
            grid.teams(),
            grid.all_pairs_steps()
        );
    }
    println!();
}

/// Eq. 5: latency improves by c², bandwidth by c.
fn claim_2_latency_bandwidth_factors() {
    println!("2. Replication cuts latency by c^2 and bandwidth by c (Eq. 5)");
    let count = |c: usize| {
        let params = AllPairsParams::new(64, c, 4096);
        let ops = ca_nbody::schedule::count_ops(params.program(0));
        (
            ops.sends[Phase::Shift.index()],
            ops.send_bytes[Phase::Shift.index()],
        )
    };
    let (m1, b1) = count(1);
    let (m4, b4) = count(4);
    println!(
        "   c=1: {m1} shift msgs, {b1} B; c=4: {m4} msgs ({}x fewer), {b4} B ({}x fewer)",
        m1 / m4,
        b1 / b4
    );
    assert_eq!(m1 / m4, 16, "latency factor c^2");
    assert_eq!(b1 / b4, 4, "bandwidth factor c");
    println!();
}

/// §III.B: the algorithm meets the memory-dependent lower bound.
fn claim_3_lower_bound() {
    println!("3. The algorithm meets the communication lower bound (§III.B)");
    let (n, p) = (1u64 << 16, 1u64 << 10);
    for c in [1u64, 4, 16] {
        let m = nbody_model::memory_per_proc(n, p, c);
        let cost = nbody_model::ca_all_pairs(n, p, c);
        let (rs, rw) = nbody_model::optimality_ratio(
            cost,
            nbody_model::s_direct(n, p, m),
            nbody_model::w_direct(n, p, m),
        );
        println!("   c={c:>2}: S/S_bound = {rs:.2}, W/W_bound = {rw:.2} (constants, not growth)");
        assert!(rs < 8.0 && rw < 8.0);
    }
    println!();
}

/// §III.C / §V: collectives saturate, so the best c is interior.
fn claim_4_interior_optimum() {
    println!("4. The best replication factor is interior — c is a tuning parameter (§V)");
    let machine = hopper();
    let (p, n) = (1024, 8192);
    let mut best = (1usize, f64::INFINITY);
    print!("   makespans:");
    for c in [1usize, 2, 4, 8, 16, 32] {
        if p % (c * c) != 0 {
            continue;
        }
        let params = AllPairsParams::new(p, c, n);
        let t = simulate(&machine, p, |r| params.program(r)).makespan;
        print!(" c={c}:{:.2}ms", t * 1e3);
        if t < best.1 {
            best = (c, t);
        }
    }
    println!("\n   best c = {} (neither 1 nor the maximum)", best.0);
    assert!(best.0 > 1 && best.0 < 32);
    println!();
}

/// And all of it is exact: the distributed trajectory equals the serial one.
fn claim_5_correctness() {
    println!("5. Replication changes communication, not answers");
    let cfg = SimConfig {
        law: RepulsiveInverseSquare::default(),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps: 10,
    };
    let initial = init::uniform(128, &cfg.domain, 1);
    let want = run_serial(&cfg, &initial);
    for (c, p) in [(1usize, 8usize), (2, 8), (2, 16), (4, 16)] {
        let got = run_distributed(&cfg, Method::CaAllPairs { c }, p, &initial);
        let dev = got
            .particles
            .iter()
            .zip(&want)
            .map(|(a, b)| (a.pos - b.pos).norm())
            .fold(0.0, f64::max);
        println!("   p={p:>2} c={c}: max deviation vs serial = {dev:.2e}");
        assert!(dev < 1e-10);
    }
}
