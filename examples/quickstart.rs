//! Quickstart: the paper's simulation in a few lines.
//!
//! Simulates the paper's workload — particles in a 2D box with reflective
//! walls and an inverse-square repulsive force — using the
//! communication-avoiding all-pairs algorithm (Algorithm 1) on 8 rank
//! threads with replication factor c = 2, and verifies the distributed
//! trajectory against the serial reference.
//!
//! Run with: `cargo run --release --example quickstart`

use ca_nbody::{run_distributed, run_serial, Method, SimConfig};
use nbody_physics::{diagnostics, init, Boundary, Domain, RepulsiveInverseSquare, VelocityVerlet};

fn main() {
    let cfg = SimConfig {
        law: RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        },
        integrator: VelocityVerlet,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.005,
        steps: 50,
    };
    let mut initial = init::uniform(256, &cfg.domain, 2013);
    init::thermalize(&mut initial, 1e-4, 7);

    println!("CA all-pairs N-body quickstart");
    println!(
        "  n = {} particles, {} steps, dt = {}",
        initial.len(),
        cfg.steps,
        cfg.dt
    );
    let ke0 = diagnostics::total_kinetic_energy(&initial);
    println!("  initial kinetic energy: {ke0:.6e}");

    // Distributed run: 8 rank threads in a 4-team x 2-row grid.
    let start = std::time::Instant::now();
    let result = run_distributed(&cfg, Method::CaAllPairs { c: 2 }, 8, &initial);
    let wall = start.elapsed();
    let ke1 = diagnostics::total_kinetic_energy(&result.particles);
    println!("  final kinetic energy:   {ke1:.6e}  ({:.2?} on 8 ranks, c = 2)", wall);

    // Communication summary (rank 0).
    let s = &result.stats[0];
    println!(
        "  rank 0 traffic: {} messages, {} particles moved, {} collectives",
        s.total_messages(),
        s.total_elements(),
        s.total_collectives()
    );

    // Cross-check against the serial engine.
    let serial = run_serial(&cfg, &initial);
    let max_err = result
        .particles
        .iter()
        .zip(&serial)
        .map(|(a, b)| (a.pos - b.pos).norm())
        .fold(0.0, f64::max);
    println!("  max position deviation vs serial reference: {max_err:.3e}");
    assert!(max_err < 1e-9, "distributed trajectory diverged");
    println!("OK: distributed == serial.");
}
