//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro with `#![proptest_config(...)]`,
//! range/`any`/`Just`/`prop_oneof!`/`collection::vec` strategies, the
//! `prop_filter` combinator, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, acceptable for this repo's tests:
//! no shrinking (a failing case reports its seed and case index instead of
//! a minimized input), and sampling distributions are plain uniforms.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of random test inputs.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Keep only values satisfying `pred` (resamples on rejection).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Erase a strategy's concrete type (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Filtering combinator returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 consecutive samples", self.reason);
        }
    }

    /// Mapping combinator returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Constant strategy: always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Full-range strategy for primitives (`any::<T>()`).
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    /// Types with a canonical `any` strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let m: f64 = rng.gen_range(-1.0..1.0);
            let e: i32 = rng.gen_range(-60i32..60);
            m * (e as f64).exp2()
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                0
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The (minimal) case runner used by the `proptest!` macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// Run `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure (fails the test).
        Fail(String),
        /// `prop_assume!` rejection (the case is skipped).
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic per-case RNG: a pure function of the base seed (from
    /// the test name) and the case index, so failures are reproducible.
    pub fn case_rng(name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37))
    }
}

/// Re-export of a deterministic RNG builder (used by generated tests).
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

pub mod prelude {
    //! Glob-import surface, as in `use proptest::prelude::*`.

    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// The proptest entry macro: wraps each `fn name(args in strategies) body`
/// in a multi-case deterministic runner.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}/{}: {}",
                                stringify!($name), case, config.cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `prop_assert!`: fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // Callers pass arbitrary comparisons (including on partially
        // ordered floats), which the negation here would otherwise lint.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!`: fail unless the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// `prop_assert_ne!`: fail if the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a), stringify!($b), left
        );
    }};
}

/// `prop_assume!`: silently skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

/// `prop_oneof!`: uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuple_patterns_work((a, b) in prop_oneof![Just((1usize, 2usize)), Just((3, 4))]) {
            prop_assert!(a + 1 == b || a == 3);
            prop_assert_eq!(a % 2, 1);
        }

        #[test]
        fn vec_strategy_respects_length(v in collection::vec(any::<u64>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn filters_apply(x in (0.0..10.0f64).prop_filter("big", |v| *v > 1.0)) {
            prop_assert!(x > 1.0);
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::case_rng("t", 3);
        let mut b = crate::test_runner::case_rng("t", 3);
        let s = 0u64..1000;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
