//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly (a poisoned std lock — a panic while
//! holding it — just passes the data through, matching parking_lot's
//! behavior of not poisoning at all).

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with non-poisoning accessors.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
