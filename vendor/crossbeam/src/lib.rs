//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! semantics the message-passing runtime relies on: unbounded MPSC queues,
//! cloneable `Sync` senders, and `recv_timeout`. Backed by
//! `std::sync::mpsc`, whose `Sender` has been `Sync` since Rust 1.72.

pub mod channel {
    use std::sync::mpsc;
    pub use std::sync::mpsc::{RecvTimeoutError, SendError};
    use std::time::Duration;

    /// Unbounded sending half; clone freely across threads.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue without blocking (the queue is unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half, owned by one consumer.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Block up to `timeout` for the next value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking poll.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn cross_thread_roundtrip() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(7).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        h.join().unwrap();
        tx.send(8).unwrap();
        assert_eq!(rx.recv().unwrap(), 8);
    }

    #[test]
    fn timeout_elapses_when_empty() {
        let (_tx, rx) = unbounded::<u32>();
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
    }
}
