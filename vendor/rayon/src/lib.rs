//! Offline stand-in for `rayon`.
//!
//! Implements the one pattern the workspace uses — `par_iter_mut()` on a
//! mutable slice followed by `for_each` — with real data parallelism:
//! the slice is split into contiguous chunks, one per available core, each
//! processed by a scoped thread. Order within a chunk is preserved, which
//! is all the physics kernel needs for its bitwise-reproducibility claim
//! (each element is processed independently).

/// Parallel iterator over `&mut` slice elements.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Apply `f` to every element, fanning chunks out across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Send + Sync,
    {
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(len);
        if workers <= 1 {
            for item in self.slice.iter_mut() {
                f(item);
            }
            return;
        }
        let chunk = len.div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            for part in self.slice.chunks_mut(chunk) {
                scope.spawn(move || {
                    for item in part.iter_mut() {
                        f(item);
                    }
                });
            }
        });
    }
}

/// The traits rayon puts in scope via `use rayon::prelude::*`.
pub mod prelude {
    use super::ParIterMut;

    /// Conversion of `&mut` collections into parallel iterators.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The parallel iterator type.
        type Iter;
        /// Create a parallel iterator over mutable references.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Iter = ParIterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { slice: self }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Iter = ParIterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { slice: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn for_each_touches_every_element_once() {
        let mut v: Vec<u64> = (0..10_000).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn empty_and_tiny_slices() {
        let mut v: Vec<u32> = Vec::new();
        v.par_iter_mut().for_each(|x| *x += 1);
        let mut one = vec![5u32];
        one.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(one, vec![10]);
    }
}
