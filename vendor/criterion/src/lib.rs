//! Offline stand-in for `criterion`.
//!
//! Implements the builder/macro surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `sample_size`, `throughput`,
//! `black_box`) over a simple wall-clock harness: each benchmark is warmed
//! up, then timed for a fixed number of samples, and mean / min / p50
//! times are printed one line per benchmark. No plots, no statistics
//! beyond that — enough to compare hot paths and catch regressions by eye
//! or by parsing the stable one-line output format:
//!
//! ```text
//! bench: <group>/<id>  mean 1.234 ms  min 1.200 ms  p50 1.230 ms  (20 samples)
//! ```

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Throughput annotation (printed alongside the timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Run `f` repeatedly, recording one wall-clock sample per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: let allocators/caches settle.
        for _ in 0..2 {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn report(group: &str, id: &str, throughput: Option<Throughput>, samples: &mut [Duration]) {
    if samples.is_empty() {
        return;
    }
    samples.sort();
    let n = samples.len();
    let mean = samples.iter().sum::<Duration>() / n as u32;
    let min = samples[0];
    let p50 = samples[n / 2];
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let tp = match throughput {
        Some(Throughput::Elements(e)) => {
            format!("  {:.3} Melem/s", e as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(b)) => {
            format!("  {:.3} MiB/s", b as f64 / mean.as_secs_f64() / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!(
        "bench: {name}  mean {}  min {}  p50 {}{tp}  ({n} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(p50),
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Shorten/extend measurement (accepted for API compatibility; the
    /// sample count alone governs this harness).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.id, self.throughput, &mut b.samples);
        self
    }

    /// Benchmark a closure with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.id, self.throughput, &mut b.samples);
        self
    }

    /// End the group (no-op; printed incrementally).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: if self.default_sample_size == 0 {
                20
            } else {
                self.default_sample_size
            },
        };
        f(&mut b);
        report("", name, None, &mut b.samples);
        self
    }
}

/// Define a bench group function calling each target with a `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &5u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        // 2 warmup + 3 samples.
        assert_eq!(runs, 5);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with(" ms"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with(" us"));
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with(" ns"));
    }
}
