//! Offline stand-in for the `rand` crate.
//!
//! This container builds without network access, so the real `rand 0.8`
//! cannot be fetched. This crate provides the (small) API surface the
//! workspace actually uses — `StdRng::seed_from_u64`, `Rng::gen_range` over
//! half-open ranges, and `Rng::gen` for a few primitives — with the same
//! determinism guarantee: identical seeds yield identical streams. The
//! generator is xoshiro256++ seeded through SplitMix64 (the same seeding
//! scheme rand's `SeedableRng::seed_from_u64` documents). Streams are *not*
//! bit-compatible with the real `rand`, which is fine here: every consumer
//! in the workspace only relies on determinism, not on specific values.

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64,
                // far below anything the deterministic tests can observe.
                let x = rng.next_u64() as u128;
                low.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + u * (high - low);
        // Guard against rounding up to `high` when the span is tiny.
        if v >= high { low } else { v }
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Draw one value.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for usize {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from seeds, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic, fast, and state-of-the-art quality —
    /// not bit-compatible with `rand::rngs::StdRng` (ChaCha12), which no
    /// consumer here depends on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xa: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..5.0f64);
            assert!((-3.0..5.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn int_range_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let x = rng.gen_range(0usize..8);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
