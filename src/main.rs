//! `ca-nbody` — command-line front end of the reproduction.
//!
//! ```text
//! ca-nbody run      [n=1024] [p=8] [c=2] [steps=20] [dt=0.005] [method=ca]
//!                   [law=repulsive|gravity|lj] [cutoff=0.25] [boundary=reflective]
//!                   [--trace=out.json] [--metrics=out.json|out.prom] [--profile]
//!                   [--record-timeline=out.json] [--wire-probe=out.json]
//!                   [--serve-metrics=ADDR] [serve-metrics-hold-ms=2000]
//!                   [--faults=SPEC] [fault-timeout-ms=1000] [max-retries=3]
//!                   [retry-backoff=2.0] [retry-jitter=0.1] [retry-budget-ms=60000]
//!                   [peer-dead-timeout-ms=MS] [retry-seed=S]
//!                   [--checkpoint-dir=D] [checkpoint-every=1] [--resume=D]
//!                   [--crash-at-step=S]
//! ca-nbody verify   [same options]            distributed-vs-serial check
//! ca-nbody report   <trace-file>              per-phase/per-step breakdown tables
//! ca-nbody audit    [n=4096] [p=16] [steps=1] [c=N] [cutoff=0] [--wire]
//!                   [--baseline=F] [--out=F.csv|F.json]
//!                   [--calibration=F] [--roofline-baseline=F] [--roofline-out=F.csv|F.json]
//! ca-nbody calibrate [--out=bench_results/machine_calibration.json] [seed=42] [--full]
//! ca-nbody chaos    [n=192] [p=8] [c=2] [steps=1] [method=ca] [seed=42]
//!                   [fault-timeout-ms=250] [--kills=N] [--baseline=F]
//!                   [--metrics=F] [--postmortem=DIR]
//! ca-nbody soak     [n=96] [p=6] [c=2] [steps=2] [method=ca] [seed=42]
//!                   [seconds=30] [events=3] [fault-timeout-ms=250]
//!                   [--postmortem=DIR]   time-boxed randomized chaos
//! ca-nbody scale    [machine=hopper] [n=32768] [--metrics=F]
//!                   strong-scaling table (simulated)
//! ca-nbody autotune [machine=hopper] [p=1536] [n=12288] [cutoff=0]
//! ca-nbody analyze  [trace-file] [--metrics=F] [--timeline=F] [--wire=F]
//!                   [--drift-window=16] [--drift-nsigma=6] [c=1] [--csv=F] [--json=F]
//! ca-nbody conformance <wire-log.json> [n=1024] [p=8] [c=2] [steps=20]
//!                   [method=ca] [law=repulsive] [cutoff=0.25]
//!                   [boundary=reflective] [--faults=SPEC]
//! ca-nbody postmortem <bundle.json>           render a flight-recorder dump
//! ca-nbody regress  <trace-file> [--metrics=F] [n=0] [c=1] [kernel=allpairs]
//!                   [tolerance=1.5] [--history=bench_results/history] [--record]
//! ```
//!
//! Options take `key=value`, `--key=value`, or `--key value` form.
//!
//! `--trace` records per-rank wall-clock spans and writes them in a format
//! chosen by extension: `.json` Chrome `trace_event` (open in Perfetto or
//! `chrome://tracing`), `.jsonl` JSON-lines, `.csv` the shared event
//! schema. `--metrics` writes the live metrics snapshot (per-rank
//! communication counters, message-size histograms, memory high-water
//! marks) as JSON, or in Prometheus text format for a `.prom` path.
//! `--profile` prints the per-phase breakdown after the run.
//!
//! `audit` runs real instrumented executions across replication factors
//! and compares the measured per-step communication against the paper's
//! lower bounds (Eq. 2/3) and predicted costs (Eq. 5/§IV.B), failing if
//! any constant factor exceeds the ceilings (`--baseline` overrides the
//! defaults from a JSON file). It also reports the *compute* side: the
//! kernel's live `compute_*` counters joined with a machine calibration
//! (`--calibration`, default `bench_results/machine_calibration.json`,
//! else a quick in-process calibration) become per-rank roofline points —
//! achieved GFLOP/s, arithmetic intensity, %-of-roofline — written with
//! `--roofline-out` and gated by `--roofline-baseline` (fails if the best
//! rank falls below the recorded floor minus its tolerance).
//!
//! `calibrate` measures the machine ceilings the roofline uses (scalar
//! FMA peak, stream bandwidth) with seedable microbenchmarks and writes
//! them as JSON (`--full` for the long, checked-in variant).
//!
//! `--serve-metrics=<addr>` starts a dependency-free HTTP endpoint
//! serving the Prometheus exposition of the run's metrics at
//! `http://<addr>/metrics` (empty until the run finishes, then held for
//! `serve-metrics-hold-ms` so scrapers can collect the final snapshot).
//!
//! `--record-timeline=<path>` writes the run's per-step time series
//! (bytes, blocked time, FLOPs, particles per rank) plus the always-on
//! flight-recorder event ring as one `nbody-timeline/v1` JSON bundle.
//! When a fault-injected run dies, the same path receives a *postmortem*
//! bundle carrying the failure reason and the events leading up to it.
//! `postmortem <bundle>` renders such a dump as text; `analyze
//! --timeline=<bundle>` runs the online drift detector over the recorded
//! series and prints the flagged windows next to the straggler table.
//! When `--serve-metrics` is active the timeline is also published at
//! `/timeseries` (JSON) and `/dashboard` (self-contained HTML).
//!
//! `--wire-probe=<path>` turns on message-level wire probes: every rank
//! records each point-to-point protocol message (send/recv, rank pair,
//! tag, phase, payload size, timestamp against a shared epoch) into a
//! bounded ring, merged after the run into one `nbody-wireprobe/v1` JSON
//! log. `analyze --wire=<log>` renders the per-channel latency table
//! (send→recv histograms, queue depths, drop accounting) derived from the
//! matched probe pairs. `conformance <log>` replays the CA schedule for
//! the given run parameters, diffs the predicted message multiset against
//! the observed traffic, and classifies every discrepancy (missing,
//! unexpected, wrong-size, out-of-order) — consulting `--faults` so
//! injected drops/dups/kills are attributed to the fault plan instead of
//! flagged as violations; it exits non-zero on a FAIL verdict (an
//! unexplained discrepancy with intact probe rings). `audit --wire` adds
//! a per-phase observed-vs-predicted message-count section from the same
//! machinery. When `--serve-metrics` is active the wire log is published
//! at `/wire` and the dashboard grows a channel-latency panel.
//!
//! `--faults` injects a deterministic fault schedule (spec grammar
//! `kind:rank@step` with kinds `kill | drop | dup | delay`, comma-
//! separated) and switches `run`/`verify` to the fault-tolerant CA
//! drivers. Retries follow an adaptive [`RetryPolicy`]: exponential
//! backoff (`retry-backoff`) with deterministic seeded jitter
//! (`retry-jitter`, `retry-seed`), a separate post-crash deadline
//! (`peer-dead-timeout-ms`), and a total per-evaluation wall-clock
//! budget (`retry-budget-ms`). When every replica of a column dies the
//! run *shrinks*: survivors agree on the dead teams, re-decompose onto
//! the remaining ranks, and finish in degraded mode (the summary
//! reports `shrinks`, `lost_particles`, `final_ranks`).
//!
//! `--checkpoint-dir` makes the run persist a durable
//! `nbody-checkpoint/v1` bundle (atomic temp-file + rename) every
//! `checkpoint-every` completed steps; `--resume=<dir>` restores the
//! newest bundle — rejecting it unless its run-config fingerprint
//! matches the flags — and continues mid-run. `--crash-at-step=<s>`
//! kills the process (exit 137) right after that step's bundle hits the
//! disk, exercising the resume path end to end. The cadence default can
//! also come from `NBODY_CHECKPOINT_EVERY`; retry-policy defaults from
//! `NBODY_RETRY_TIMEOUT_MS`, `NBODY_RETRY_MAX`, `NBODY_RETRY_BACKOFF`,
//! `NBODY_RETRY_JITTER`, `NBODY_RETRY_BUDGET_MS` (all validated at
//! startup; malformed values exit 2).
//!
//! `chaos` sweeps kill schedules over every rank and pipeline
//! step, asserting recovered forces stay bit-identical to the fault-free
//! run and gating recovery overhead against `--baseline` ceilings; with
//! `--kills=N` it adds multi-fault schedules, and it always exercises
//! the two degraded tiers (a double kill inside one column at `c >= 2`
//! and a `c = 1` kill), asserting both shrink onto the survivors and
//! match a recomposed reference run. `soak` runs randomized seeded
//! fault plans until a wall-clock budget expires — the CI chaos-soak
//! entry point.
//!
//! `analyze` diagnoses a recorded trace: the per-timestep cross-rank
//! critical path (which rank gated the step, how its time split into
//! compute/comm/blocked, and which late sender it waited on), per-phase
//! load-imbalance factors, straggler rankings, and traffic/wait heat-maps
//! on the `p/c × c` grid when `--metrics` is given. `regress` distills the
//! same trace into a `RunSummary`, compares its wall time against the
//! median of matching entries in the append-only history store
//! (`bench_results/history/<kernel>.jsonl`), exits non-zero past the
//! tolerance, and with `--record` appends the live summary — the CI
//! performance gate.
//!
//! `run`, `scale`, `audit`, `chaos`, and `regress` end with a single-line
//! JSON summary on stdout for scripted consumption.

use std::collections::HashMap;
use std::process::ExitCode;

use ca_nbody::autotune::{autotune_all_pairs, autotune_cutoff_1d};
use ca_nbody::cutoff::validate_cutoff;
use ca_nbody::schedule::{count_ops, AllPairsParams};
use ca_nbody::recovery::RetryPolicy;
use ca_nbody::{
    expected_schedule, run_distributed, run_distributed_chaos_recorded,
    run_distributed_chaos_wired, run_distributed_durable, run_distributed_health,
    run_distributed_recorded, run_distributed_traced, run_distributed_wired, run_serial,
    CheckpointConfig, Method, ProcGrid, RunResult, SimConfig, Window, Window1d, WireScheduleSpec,
};
use nbody_durable::{load_latest, RunFingerprint};
use nbody_analyze::{
    analyze, check_regression, parse_history, render_conformance, render_csv, render_drift,
    render_health, render_json, render_regression, render_table, render_wire, RunSummary, Verdict,
};
use nbody_simhealth::{HealthBaseline, HealthConfig, HealthInjection, HealthReport, HealthSummary};
use nbody_comm::{
    check_conformance, match_events, validate_env, FaultKind, FaultNote, FaultPlan, RunTimeline,
    WireLog,
};
use nbody_timeline::DriftConfig;
use nbody_metrics::{
    audit, audit_csv, audit_json, audit_table, ceilings_from_json, wire_phase_counts,
    wire_phase_table, AuditAlgorithm, AuditConfig, AuditInput, FactorCeilings, MetricsSnapshot,
};
use nbody_netsim::{hopper, intrepid, simulate, Machine};
use nbody_perfmon::{
    roofline, roofline_csv, roofline_json, roofline_table, CalibrationConfig, MachineCalibration,
    MetricsServer, RooflineGate, RooflineReport,
};
use nbody_physics::{
    diagnostics, init, Boundary, Cutoff, Domain, ForceLaw, Gravity, LennardJones, Particle,
    RepulsiveInverseSquare, SemiImplicitEuler, Vec2, PARTICLE_WIRE_BYTES,
};
use nbody_trace::{ExecutionTrace, Json, ALL_PHASES};

fn main() -> ExitCode {
    // A malformed NBODY_RECV_TIMEOUT_SECS is a startup error, not a silent
    // fallback discovered mid-run inside a worker thread.
    if let Err(e) = validate_env() {
        eprintln!("{e}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    // `key=value`, `--key=value`, and `--key value` populate the option
    // map; a `--flag` with no value is a boolean switch; anything else is
    // positional.
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let a = &args[i];
        let body = a.strip_prefix("--").unwrap_or(a);
        if let Some((k, v)) = body.split_once('=') {
            opts.insert(k.to_string(), v.to_string());
        } else if a.starts_with("--") {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") && !v.contains('=') => {
                    opts.insert(body.to_string(), v.clone());
                    i += 1;
                }
                _ => {
                    opts.insert(body.to_string(), "true".to_string());
                }
            }
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }

    match cmd.as_str() {
        "run" => run_cmd(&opts, false),
        "verify" => run_cmd(&opts, true),
        "report" => report_cmd(&positional),
        "audit" => audit_cmd(&opts),
        "calibrate" => calibrate_cmd(&opts),
        "chaos" => chaos_cmd(&opts),
        "soak" => soak_cmd(&opts),
        "scale" => scale_cmd(&opts),
        "autotune" => autotune_cmd(&opts),
        "analyze" => analyze_cmd(&opts, &positional),
        "health" => health_cmd(&positional),
        "conformance" => conformance_cmd(&opts, &positional),
        "postmortem" => postmortem_cmd(&positional),
        "regress" => regress_cmd(&opts, &positional),
        _ => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: ca-nbody <run|verify|report|audit|calibrate|chaos|soak|scale|autotune|analyze|\
         health|conformance|postmortem|regress> \
         [key=value ...] \
         [--trace=F] [--metrics=F] [--record-timeline=F] [--wire-probe=F] [--profile] \
         [--faults=SPEC] [--checkpoint-dir=D] [--resume=D] \
         [--health] [--health-every=K] [--health-baseline=F] \
         [--inject-nan=RANK@STEP] [--corrupt-replica=RANK@STEP]\n\
         see `src/main.rs` header or README.md for the option list"
    );
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A force law selected at runtime; delegates to the concrete laws.
enum AnyLaw {
    Repulsive(RepulsiveInverseSquare),
    Gravity(Gravity),
    Lj(Cutoff<LennardJones>),
    RepulsiveCutoff(Cutoff<RepulsiveInverseSquare>),
    GravityCutoff(Cutoff<Gravity>),
}

impl ForceLaw for AnyLaw {
    fn force(&self, target: &Particle, source: &Particle, disp: Vec2) -> Vec2 {
        match self {
            AnyLaw::Repulsive(l) => l.force(target, source, disp),
            AnyLaw::Gravity(l) => l.force(target, source, disp),
            AnyLaw::Lj(l) => l.force(target, source, disp),
            AnyLaw::RepulsiveCutoff(l) => l.force(target, source, disp),
            AnyLaw::GravityCutoff(l) => l.force(target, source, disp),
        }
    }

    fn potential(&self, target: &Particle, source: &Particle, disp: Vec2) -> f64 {
        match self {
            AnyLaw::Repulsive(l) => l.potential(target, source, disp),
            AnyLaw::Gravity(l) => l.potential(target, source, disp),
            AnyLaw::Lj(l) => l.potential(target, source, disp),
            AnyLaw::RepulsiveCutoff(l) => l.potential(target, source, disp),
            AnyLaw::GravityCutoff(l) => l.potential(target, source, disp),
        }
    }

    fn cutoff(&self) -> Option<f64> {
        match self {
            AnyLaw::Repulsive(_) | AnyLaw::Gravity(_) => None,
            AnyLaw::Lj(l) => l.cutoff(),
            AnyLaw::RepulsiveCutoff(l) => l.cutoff(),
            AnyLaw::GravityCutoff(l) => l.cutoff(),
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn flops_per_interaction(&self) -> u64 {
        match self {
            AnyLaw::Repulsive(l) => l.flops_per_interaction(),
            AnyLaw::Gravity(l) => l.flops_per_interaction(),
            AnyLaw::Lj(l) => l.flops_per_interaction(),
            AnyLaw::RepulsiveCutoff(l) => l.flops_per_interaction(),
            AnyLaw::GravityCutoff(l) => l.flops_per_interaction(),
        }
    }
}

fn run_cmd(opts: &HashMap<String, String>, verify: bool) -> ExitCode {
    let n: usize = get(opts, "n", 1024);
    let p: usize = get(opts, "p", 8);
    let c: usize = get(opts, "c", 2);
    let steps: usize = get(opts, "steps", 20);
    let dt: f64 = get(opts, "dt", 0.005);
    let default_cutoff = if opts.get("law").map(String::as_str) == Some("lj") {
        2.5
    } else {
        0.25
    };
    let cutoff: f64 = get(opts, "cutoff", default_cutoff);
    let method_name = opts.get("method").map(String::as_str).unwrap_or("ca");
    let law_name = opts.get("law").map(String::as_str).unwrap_or("repulsive");
    let seed: u64 = get(opts, "seed", 42);
    let (boundary, boundary_name) = match opts.get("boundary").map(String::as_str) {
        Some("periodic") => (Boundary::Periodic, "periodic"),
        Some("open") => (Boundary::Open, "open"),
        _ => (Boundary::Reflective, "reflective"),
    };

    let method = match method_name {
        "ca" => Method::CaAllPairs { c },
        "ring" => Method::ParticleRing,
        "ring-symmetric" => Method::ParticleRingSymmetric,
        "allgather" => Method::NaiveAllgather,
        "force-decomp" => Method::ForceDecomposition,
        "ca-cutoff-1d" => Method::Ca1dCutoff { c },
        "ca-cutoff-2d" => Method::Ca2dCutoff { c },
        "halo-1d" => Method::SpatialHalo1d,
        "halo-2d" => Method::SpatialHalo2d,
        "midpoint-1d" => Method::Midpoint1d,
        "midpoint-2d" => Method::Midpoint2d,
        other => {
            eprintln!("unknown method '{other}'");
            return ExitCode::FAILURE;
        }
    };
    let law = match (law_name, method.needs_cutoff()) {
        ("repulsive", false) => AnyLaw::Repulsive(RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        }),
        ("repulsive", true) => AnyLaw::RepulsiveCutoff(Cutoff::new(
            RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 1e-3,
            },
            cutoff,
        )),
        ("gravity", false) => AnyLaw::Gravity(Gravity {
            g: 1e-3,
            softening: 0.02,
        }),
        ("gravity", true) => AnyLaw::GravityCutoff(Cutoff::new(
            Gravity {
                g: 1e-3,
                softening: 0.02,
            },
            cutoff,
        )),
        ("lj", _) => AnyLaw::Lj(Cutoff::new(LennardJones::default(), cutoff)),
        (other, _) => {
            eprintln!("unknown law '{other}'");
            return ExitCode::FAILURE;
        }
    };

    // LJ needs a domain scaled to sigma (lattice spacing ~1.2 sigma) and a
    // lattice start; the other laws use the paper's unit box.
    let domain = if law_name == "lj" {
        Domain::square((n as f64).sqrt() * 1.2)
    } else {
        Domain::unit()
    };
    let mut cfg = SimConfig {
        law,
        integrator: SemiImplicitEuler,
        domain,
        boundary,
        dt,
        steps,
    };
    let mut initial = if law_name == "lj" {
        init::lattice(n, &cfg.domain)
    } else {
        init::uniform(n, &cfg.domain, seed)
    };
    init::thermalize(&mut initial, get(opts, "temperature", 1e-4), 7);

    let trace_path = opts.get("trace").cloned();
    let metrics_path = opts.get("metrics").cloned();
    let timeline_path = opts.get("record-timeline").cloned();
    let wire_path = opts.get("wire-probe").cloned();
    let profile = opts.get("profile").is_some_and(|v| v != "false");
    let serve_addr = opts.get("serve-metrics").cloned();
    let tracing = trace_path.is_some()
        || profile
        || metrics_path.is_some()
        || serve_addr.is_some()
        || timeline_path.is_some()
        || wire_path.is_some();

    // The endpoint comes up before the run (serving an empty snapshot) so
    // scrapers can connect while the simulation is in flight; the final
    // snapshot is published after the run and held for a grace period.
    let server = match &serve_addr {
        Some(addr) => match MetricsServer::start(addr.as_str()) {
            Ok(s) => {
                println!("  serving metrics on http://{}/metrics", s.local_addr());
                Some(s)
            }
            Err(e) => {
                eprintln!("cannot serve metrics on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let faults = match opts.get("faults") {
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("invalid --faults spec: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // Numerical-health monitors: --health turns them on; the injection
    // flags (seeded non-finite / replica corruption) imply them, since an
    // injection without its monitor would be an unobserved fault.
    let health_cfg: Option<HealthConfig> = {
        let on = opts.get("health").is_some_and(|v| v != "false")
            || opts.contains_key("health-every")
            || opts.contains_key("inject-nan")
            || opts.contains_key("corrupt-replica");
        if on {
            let mut h = HealthConfig::enabled();
            h.every = get(opts, "health-every", 1u64).max(1);
            if let Some(spec) = opts.get("inject-nan") {
                match HealthInjection::parse_target(spec) {
                    Ok(t) => h.injection.nan = Some(t),
                    Err(e) => {
                        eprintln!("invalid --inject-nan target: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(spec) = opts.get("corrupt-replica") {
                match HealthInjection::parse_target(spec) {
                    Ok(t) => h.injection.corrupt = Some(t),
                    Err(e) => {
                        eprintln!("invalid --corrupt-replica target: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Some(h)
        } else {
            None
        }
    };

    // The adaptive retry policy: CLI flags beat env overrides beat
    // defaults (env values were validated by `validate_env` at startup).
    let env_u64 = |name: &str| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
    };
    let env_f64 = |name: &str| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
    };
    let timeout_ms: u64 = get(
        opts,
        "fault-timeout-ms",
        env_u64("NBODY_RETRY_TIMEOUT_MS").unwrap_or(1000),
    );
    let policy = RetryPolicy {
        base_timeout: std::time::Duration::from_millis(timeout_ms),
        peer_dead_timeout: std::time::Duration::from_millis(get(
            opts,
            "peer-dead-timeout-ms",
            timeout_ms,
        )),
        backoff: get(
            opts,
            "retry-backoff",
            env_f64("NBODY_RETRY_BACKOFF").unwrap_or(2.0),
        ),
        jitter: get(
            opts,
            "retry-jitter",
            env_f64("NBODY_RETRY_JITTER").unwrap_or(0.1),
        ),
        max_retries: get(
            opts,
            "max-retries",
            env_u64("NBODY_RETRY_MAX").unwrap_or(3) as usize,
        ),
        budget: std::time::Duration::from_millis(get(
            opts,
            "retry-budget-ms",
            env_u64("NBODY_RETRY_BUDGET_MS").unwrap_or(60_000),
        )),
        seed: get(opts, "retry-seed", seed),
    };

    // Durable checkpointing: --checkpoint-dir turns on the cadence sink,
    // --resume restores the newest bundle from a directory (and keeps
    // checkpointing into it unless --checkpoint-dir redirects).
    let resume_dir = opts.get("resume").cloned();
    let ckpt_dir = opts.get("checkpoint-dir").cloned().or_else(|| resume_dir.clone());
    let mut base_step: u64 = 0;
    let mut resumed_from: Option<u64> = None;
    let ckpt: Option<CheckpointConfig> = if let Some(dir) = &ckpt_dir {
        if !matches!(
            method,
            Method::CaAllPairs { .. } | Method::Ca1dCutoff { .. } | Method::Ca2dCutoff { .. }
        ) {
            eprintln!(
                "--checkpoint-dir/--resume require a CA method (ca, ca-cutoff-1d, ca-cutoff-2d)"
            );
            return ExitCode::FAILURE;
        }
        let every: usize = get(
            opts,
            "checkpoint-every",
            env_u64("NBODY_CHECKPOINT_EVERY").unwrap_or(1) as usize,
        );
        if every == 0 {
            eprintln!("checkpoint-every must be a positive step count");
            return ExitCode::FAILURE;
        }
        let crash_at: Option<u64> = match opts.get("crash-at-step") {
            Some(v) => match v.trim().parse() {
                Ok(s) => Some(s),
                Err(_) => {
                    eprintln!("--crash-at-step must be an integer step, got '{v}'");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        // The fingerprint is derived from the *total* run configuration,
        // so a resumed continuation stamps (and checks) the same digest
        // the original run did.
        let fingerprint = RunFingerprint {
            n,
            p,
            c: method.replication(),
            method: method_name.to_string(),
            law: law_name.to_string(),
            boundary: boundary_name.to_string(),
            dt,
            steps,
            seed,
            cutoff: if method.needs_cutoff() { cutoff } else { 0.0 },
            domain: [cfg.domain.min.x, cfg.domain.min.y, cfg.domain.max.x, cfg.domain.max.y],
        }
        .digest();
        if let Some(dir) = &resume_dir {
            let bundle = match load_latest(std::path::Path::new(dir)) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot resume from {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = bundle.validate_fingerprint(&fingerprint) {
                eprintln!("resume rejected: {e}");
                return ExitCode::FAILURE;
            }
            if bundle.step as usize > steps {
                eprintln!(
                    "resume rejected: checkpoint is at step {} but the run has only {steps}",
                    bundle.step
                );
                return ExitCode::FAILURE;
            }
            base_step = bundle.step;
            resumed_from = Some(bundle.step);
            initial = bundle.all_particles();
            cfg.steps = steps - base_step as usize;
            println!(
                "  resumed from {dir} at step {base_step} ({} particles, {} steps left)",
                initial.len(),
                cfg.steps
            );
        }
        Some(CheckpointConfig {
            dir: std::path::PathBuf::from(dir),
            every,
            base_step,
            fingerprint,
            seed,
            crash_at,
        })
    } else {
        None
    };

    println!("{method:?} on {p} ranks: n={n}, steps={steps}, dt={dt}, law={law_name}");
    let start = std::time::Instant::now();
    let mut health_report: Option<HealthReport> = None;
    let (result, trace, metrics, chaos_info, timeline, wire) = if faults.is_some()
        || ckpt.is_some()
        || health_cfg.is_some()
    {
        if !matches!(
            method,
            Method::CaAllPairs { .. } | Method::Ca1dCutoff { .. } | Method::Ca2dCutoff { .. }
        ) {
            eprintln!(
                "each of --faults/--checkpoint-dir/--health requires a CA method \
                 (ca, ca-cutoff-1d, ca-cutoff-2d)"
            );
            return ExitCode::FAILURE;
        }
        let plan = faults.clone().unwrap_or_else(FaultPlan::empty);
        // Wire probes are opt-in: the probed chaos runner records every
        // protocol message *and* injected fault as first-class events.
        // (The probed runner has no checkpoint sink, so checkpointing
        // takes precedence when both are requested.)
        let (res, timeline, wire) = if let Some(h) = &health_cfg {
            // The health runner has no checkpoint sink: the durable lens
            // and the health lens instrument the same recovery loop, so
            // combining them is rejected rather than silently degraded.
            if ckpt.is_some() {
                eprintln!("--health cannot be combined with --checkpoint-dir/--resume");
                return ExitCode::FAILURE;
            }
            if wire_path.is_some() {
                eprintln!("note: --wire-probe is ignored on health runs");
            }
            let (res, timeline) =
                run_distributed_health(&cfg, method, p, &plan, &policy, h, &initial);
            (
                res.map(|(r, hr)| {
                    health_report = Some(hr);
                    r
                }),
                timeline,
                None,
            )
        } else if wire_path.is_some() && ckpt.is_none() {
            let (res, timeline, wire) =
                run_distributed_chaos_wired(&cfg, method, p, &plan, &policy, &initial);
            (res, timeline, Some(wire))
        } else {
            if wire_path.is_some() {
                eprintln!("note: --wire-probe is ignored on checkpointed runs");
            }
            let (res, timeline) =
                run_distributed_durable(&cfg, method, p, &plan, &policy, ckpt.as_ref(), &initial);
            (res, timeline, None)
        };
        match res {
            Ok(res) => {
                if let Some(plan) = &faults {
                    println!(
                        "  faults [{}]: max attempts {}, recovered: {}",
                        plan.spec(),
                        res.max_attempts,
                        res.recovered
                    );
                }
                if res.shrinks > 0 {
                    println!(
                        "  degraded: world shrank {}x onto {} ranks, {} particles lost",
                        res.shrinks, res.final_ranks, res.lost_particles
                    );
                }
                if let Some(hr) = &health_report {
                    println!(
                        "  health: {} steps checked, max |ΔE/E₀| {:.3e}, max |p| {:.3e}, \
                         {} sentinel event(s), {} fingerprint mismatch(es)",
                        hr.steps_checked,
                        hr.max_rel_energy_drift,
                        hr.max_momentum_norm,
                        hr.sentinel_events,
                        hr.fingerprint_mismatches
                    );
                }
                (
                    RunResult {
                        particles: res.particles,
                        stats: res.stats,
                    },
                    Some(res.trace),
                    res.metrics,
                    Some((
                        res.max_attempts,
                        res.recovered,
                        res.shrinks,
                        res.lost_particles,
                        res.final_ranks,
                    )),
                    Some(timeline),
                    wire,
                )
            }
            Err(e) => {
                if health_cfg.is_some() && faults.is_none() {
                    eprintln!("health-instrumented run failed: {e}");
                } else {
                    eprintln!("fault-injected run failed: {e}");
                }
                // The flight recorder was on the whole time: dump the
                // postmortem bundle so the failure can be diagnosed.
                if let Some(path) = &timeline_path {
                    let bundle = if timeline.is_postmortem() {
                        timeline
                    } else {
                        timeline.with_failure(&e.to_string())
                    };
                    match std::fs::write(path, bundle.to_json()) {
                        Ok(()) => eprintln!("postmortem bundle written to {path}"),
                        Err(we) => eprintln!("cannot write postmortem to {path}: {we}"),
                    }
                }
                // The wire log survives the failure too: what actually
                // crossed the wire is exactly what a postmortem needs.
                if let (Some(path), Some(w)) = (&wire_path, &wire) {
                    match std::fs::write(path, w.to_json()) {
                        Ok(()) => eprintln!("wire-probe log written to {path}"),
                        Err(we) => eprintln!("cannot write wire log to {path}: {we}"),
                    }
                }
                return ExitCode::FAILURE;
            }
        }
    } else if wire_path.is_some() {
        let (result, trace, metrics, timeline, wire) =
            run_distributed_wired(&cfg, method, p, &initial);
        (result, Some(trace), metrics, None, Some(timeline), Some(wire))
    } else if tracing {
        let (result, trace, metrics, timeline) =
            run_distributed_recorded(&cfg, method, p, &initial);
        (result, Some(trace), metrics, None, Some(timeline), None)
    } else {
        (
            run_distributed(&cfg, method, p, &initial),
            None,
            MetricsSnapshot::empty(),
            None,
            None,
            None,
        )
    };
    let elapsed = start.elapsed();
    let kinetic = diagnostics::total_kinetic_energy(&result.particles);
    println!(
        "  done in {elapsed:.2?}; kinetic energy {kinetic:.4e}; rank-0 messages {}",
        result.stats[0].total_messages()
    );

    if let (Some(path), Some(trace)) = (&trace_path, &trace) {
        let body = if path.ends_with(".jsonl") {
            trace.to_jsonl()
        } else if path.ends_with(".csv") {
            trace.to_events_csv()
        } else {
            trace.to_chrome_json()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  trace written to {path} ({} spans)", trace.spans.len());
    }
    if let Some(path) = &metrics_path {
        let body = if path.ends_with(".prom") {
            metrics.to_prometheus()
        } else {
            metrics.to_json().to_string()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  metrics written to {path} ({} ranks)", metrics.ranks.len());
    }
    if let (Some(path), Some(tl)) = (&timeline_path, &timeline) {
        if let Err(e) = std::fs::write(path, tl.to_json()) {
            eprintln!("cannot write timeline to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "  timeline written to {path} ({} ranks, {} step samples)",
            tl.ranks.len(),
            tl.ranks.iter().map(|r| r.samples.len()).sum::<usize>()
        );
    }
    if let (Some(path), Some(w)) = (&wire_path, &wire) {
        if let Err(e) = std::fs::write(path, w.to_json()) {
            eprintln!("cannot write wire log to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "  wire probes written to {path} ({} events, {} evicted)",
            w.total_events(),
            w.total_dropped()
        );
    }
    if profile {
        if let Some(trace) = &trace {
            print_breakdown(trace);
        }
    }
    if let Some(server) = &server {
        server.publish(&metrics);
        if let Some(tl) = &timeline {
            server.publish_timeline(tl);
            println!(
                "  dashboard live at http://{}/dashboard",
                server.local_addr()
            );
        }
        if let Some(w) = &wire {
            server.publish_wire(w);
            println!("  wire log live at http://{}/wire", server.local_addr());
        }
        println!(
            "  metrics published at http://{}/metrics ({} ranks)",
            server.local_addr(),
            metrics.ranks.len()
        );
    }

    let mut max_err = None;
    let degraded = chaos_info.is_some_and(|(_, _, shrinks, lost, _)| shrinks > 0 || lost > 0);
    if verify && degraded {
        // A shrunken run dropped the dead columns' particles mid-flight;
        // the full-world serial trajectory is no longer the reference.
        println!("  degraded run: serial verification skipped");
    }
    if verify && !degraded {
        let serial = run_serial(&cfg, &initial);
        let err = result
            .particles
            .iter()
            .zip(&serial)
            .map(|(a, b)| (a.pos - b.pos).norm())
            .fold(0.0, f64::max);
        max_err = Some(err);
        println!("  max deviation vs serial: {err:.3e}");
        if err > 1e-9 {
            eprintln!("VERIFY FAILED");
            return ExitCode::FAILURE;
        }
        println!("  VERIFY OK");
    }

    // Machine-readable one-line summary, always the last stdout line.
    let mut summary = vec![
        ("cmd".to_string(), Json::Str(if verify { "verify" } else { "run" }.into())),
        ("method".to_string(), Json::Str(method_name.into())),
        ("law".to_string(), Json::Str(law_name.into())),
        ("n".to_string(), Json::Num(n as f64)),
        ("p".to_string(), Json::Num(p as f64)),
        ("c".to_string(), Json::Num(method.replication() as f64)),
        ("steps".to_string(), Json::Num(steps as f64)),
        ("elapsed_secs".to_string(), Json::Num(elapsed.as_secs_f64())),
        ("kinetic_energy".to_string(), Json::Num(kinetic)),
        (
            "rank0_messages".to_string(),
            Json::Num(result.stats[0].total_messages() as f64),
        ),
    ];
    if let Some(trace) = &trace {
        summary.push(("trace_spans".to_string(), Json::Num(trace.spans.len() as f64)));
        summary.push((
            "trace_wall_secs".to_string(),
            Json::Num(trace.wall_secs()),
        ));
        // Post-run diagnosis: per-phase imbalance factors and the
        // critical-path split of the makespan (what actually gated the
        // run, not the mean across ranks).
        let a = analyze(trace, Some(&metrics), method.replication());
        let (crit_compute, crit_comm, crit_blocked) = a.critical_split();
        summary.push((
            "critical_compute_secs".to_string(),
            Json::Num(crit_compute),
        ));
        summary.push(("critical_comm_secs".to_string(), Json::Num(crit_comm)));
        summary.push((
            "critical_blocked_secs".to_string(),
            Json::Num(crit_blocked),
        ));
        summary.push((
            "imbalance".to_string(),
            Json::Obj(
                a.imbalance
                    .iter()
                    .map(|i| (i.phase.label().to_string(), Json::Num(i.factor)))
                    .collect(),
            ),
        ));
    }
    if let Some(path) = &trace_path {
        summary.push(("trace_path".to_string(), Json::Str(path.clone())));
    }
    if let (Some(path), Some(tl)) = (&timeline_path, &timeline) {
        summary.push(("timeline_path".to_string(), Json::Str(path.clone())));
        summary.push((
            "timeline_samples".to_string(),
            Json::Num(tl.ranks.iter().map(|r| r.samples.len()).sum::<usize>() as f64),
        ));
        summary.push((
            "drift_windows".to_string(),
            Json::Num(tl.drift(&DriftConfig::default()).len() as f64),
        ));
    }
    if let Some(path) = &metrics_path {
        summary.push(("metrics_path".to_string(), Json::Str(path.clone())));
        let total_sends: u64 = ALL_PHASES
            .iter()
            .map(|ph| metrics.sum_counter("comm_send_messages", Some(*ph)))
            .sum();
        summary.push((
            "total_send_messages".to_string(),
            Json::Num(total_sends as f64),
        ));
    }
    if let (Some(path), Some(w)) = (&wire_path, &wire) {
        summary.push(("wire_probe_path".to_string(), Json::Str(path.clone())));
        summary.push((
            "wire_events".to_string(),
            Json::Num(w.total_events() as f64),
        ));
        summary.push((
            "wire_dropped_events".to_string(),
            Json::Num(w.total_dropped() as f64),
        ));
    }
    if let Some(err) = max_err {
        summary.push(("max_deviation".to_string(), Json::Num(err)));
        summary.push(("verify_ok".to_string(), Json::Bool(true)));
    }
    if let Some(server) = &server {
        summary.push((
            "metrics_endpoint".to_string(),
            Json::Str(format!("http://{}/metrics", server.local_addr())),
        ));
        summary.push((
            "compute_flops".to_string(),
            Json::Num(metrics.sum_counter("compute_flops", None) as f64),
        ));
    }
    if let Some((attempts, recovered, shrinks, lost, final_ranks)) = chaos_info {
        summary.push(("max_attempts".to_string(), Json::Num(attempts as f64)));
        summary.push(("recovered".to_string(), Json::Bool(recovered)));
        summary.push(("shrinks".to_string(), Json::Num(shrinks as f64)));
        summary.push(("lost_particles".to_string(), Json::Num(lost as f64)));
        summary.push(("final_ranks".to_string(), Json::Num(final_ranks as f64)));
        if let Some(plan) = &faults {
            summary.push(("faults".to_string(), Json::Str(plan.spec())));
            for key in [
                "fault_injected_total",
                "fault_detected_total",
                "fault_retries_total",
                "recovery_bytes_total",
            ] {
                summary.push((
                    key.to_string(),
                    Json::Num(metrics.sum_counter(key, None) as f64),
                ));
            }
        }
    }
    let mut health_violations: Vec<String> = Vec::new();
    if let Some(hr) = &health_report {
        summary.push((
            "health_steps_checked".to_string(),
            Json::Num(hr.steps_checked as f64),
        ));
        summary.push((
            "health_sentinel_events".to_string(),
            Json::Num(hr.sentinel_events as f64),
        ));
        summary.push((
            "health_fingerprint_mismatches".to_string(),
            Json::Num(hr.fingerprint_mismatches as f64),
        ));
        summary.push(("energy0".to_string(), Json::Num(hr.energy_first)));
        summary.push(("energy_final".to_string(), Json::Num(hr.energy_last)));
        summary.push((
            "energy_drift_rel".to_string(),
            Json::Num(hr.max_rel_energy_drift),
        ));
        summary.push((
            "momentum_norm_max".to_string(),
            Json::Num(hr.max_momentum_norm),
        ));
        // The CI gate: drift and event counts against the versioned
        // baseline. An explicitly named baseline must exist; the default
        // one is optional (monitors still ran, the gate is just skipped).
        let explicit = opts.get("health-baseline").cloned();
        let base_path = explicit
            .clone()
            .unwrap_or_else(|| "bench_results/health_baseline.json".to_string());
        match std::fs::read_to_string(&base_path) {
            Ok(body) => match HealthBaseline::parse(&body) {
                Ok(base) => {
                    health_violations = base.gate(hr);
                    summary.push((
                        "health_gate".to_string(),
                        Json::Str(if health_violations.is_empty() { "pass" } else { "fail" }.into()),
                    ));
                }
                Err(e) => {
                    eprintln!("invalid health baseline {base_path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                if explicit.is_some() {
                    eprintln!("cannot read health baseline {base_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let Some(ck) = &ckpt {
        summary.push((
            "checkpoint_dir".to_string(),
            Json::Str(ck.dir.display().to_string()),
        ));
        summary.push(("checkpoint_every".to_string(), Json::Num(ck.every as f64)));
        for key in ["checkpoint_persisted_total", "checkpoint_bytes_total"] {
            summary.push((
                key.to_string(),
                Json::Num(metrics.sum_counter(key, None) as f64),
            ));
        }
    }
    if let Some(step) = resumed_from {
        summary.push(("resumed_from_step".to_string(), Json::Num(step as f64)));
    }
    println!("{}", Json::Obj(summary));
    if let Some(server) = server {
        // Hold the endpoint open so an external scraper launched against
        // the printed address can still collect the final snapshot.
        let hold_ms: u64 = get(opts, "serve-metrics-hold-ms", 2000);
        std::thread::sleep(std::time::Duration::from_millis(hold_ms));
        server.shutdown();
    }
    if !health_violations.is_empty() {
        for v in &health_violations {
            eprintln!("HEALTH GATE: {v}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Print the paper-style per-phase table and the per-step driver-section
/// table of a trace (`--profile` and the `report` subcommand).
fn print_breakdown(trace: &ExecutionTrace) {
    let b = trace.phase_breakdown();
    println!(
        "per-phase wall-clock across {} ranks (seconds per rank):",
        b.ranks
    );
    println!(
        "  {:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "phase", "mean", "p50", "p95", "max", "blocked", "share"
    );
    for (phase, d) in &b.phases {
        if d.max == 0.0 {
            continue;
        }
        let blocked = b
            .blocked
            .iter()
            .find(|(p, _)| p == phase)
            .map_or(0.0, |(_, s)| *s);
        println!(
            "  {:<10} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>6.1}%",
            phase.label(),
            d.mean,
            d.p50,
            d.p95,
            d.max,
            blocked,
            100.0 * d.mean / b.wall_secs.max(f64::MIN_POSITIVE),
        );
    }
    println!(
        "  phase sum {:.6} s of {:.6} s wall ({:.1}%)",
        b.phase_sum_secs(),
        b.wall_secs,
        100.0 * b.phase_sum_secs() / b.wall_secs.max(f64::MIN_POSITIVE),
    );

    let reports = trace.step_reports();
    if reports.is_empty() {
        return;
    }
    println!("per-step driver sections (seconds, mean / max across ranks):");
    for r in &reports {
        print!("  step {:>3}:", r.step);
        for (name, d) in &r.parts {
            print!(" {name} {:.6}/{:.6}", d.mean, d.max);
        }
        println!();
    }
}

fn report_cmd(positional: &[String]) -> ExitCode {
    let Some(path) = positional.first() else {
        eprintln!("usage: ca-nbody report <trace.json|trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match ExecutionTrace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{path}: {} spans over {} ranks, {:.6} s wall",
        trace.spans.len(),
        trace.ranks,
        trace.wall_secs()
    );
    print_breakdown(&trace);
    ExitCode::SUCCESS
}

/// Run real instrumented executions across replication factors and audit
/// the measured communication against the paper's bounds and predictions.
fn audit_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let n: usize = get(opts, "n", 4096);
    let p: usize = get(opts, "p", 16);
    let steps: usize = get(opts, "steps", 1);
    let seed: u64 = get(opts, "seed", 42);
    let cutoff_frac: f64 = get(opts, "cutoff", 0.0);
    if n == 0 || p == 0 || steps == 0 {
        eprintln!("audit: n, p, and steps must be positive");
        return ExitCode::FAILURE;
    }

    let mut ceilings = FactorCeilings::default();
    if let Some(path) = opts.get("baseline") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        ceilings = match ceilings_from_json(&doc) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
    }

    let domain = Domain::unit();
    // A c is auditable if its processor grid is valid (and, with a cutoff,
    // the replication fits inside the interaction window).
    let usable = |c: usize| -> Result<(), String> {
        if cutoff_frac > 0.0 {
            let grid = ProcGrid::new(p, c).map_err(|e| e.to_string())?;
            let window = Window1d::from_cutoff(&domain, grid.teams(), cutoff_frac);
            validate_cutoff(&window, grid.teams(), c).map_err(|e| e.to_string())
        } else {
            ProcGrid::new_all_pairs(p, c)
                .map(|_| ())
                .map_err(|e| e.to_string())
        }
    };
    let cs: Vec<usize> = match opts.get("c") {
        Some(v) => {
            let Ok(c) = v.parse::<usize>() else {
                eprintln!("audit: invalid replication factor '{v}'");
                return ExitCode::FAILURE;
            };
            if let Err(e) = usable(c) {
                eprintln!("audit: c={c} is not usable with p={p}: {e}");
                return ExitCode::FAILURE;
            }
            vec![c]
        }
        // Default sweep: every c = 1..√p the grid supports.
        None => ProcGrid::valid_all_pairs_factors(p)
            .into_iter()
            .filter(|&c| usable(c).is_ok())
            .collect(),
    };
    if cs.is_empty() {
        eprintln!("audit: no usable replication factors for p={p}");
        return ExitCode::FAILURE;
    }

    let (algorithm, algo_name) = if cutoff_frac > 0.0 {
        (
            AuditAlgorithm::Cutoff1d {
                rc_over_l: cutoff_frac,
            },
            "cutoff-1d",
        )
    } else {
        (AuditAlgorithm::AllPairs, "all-pairs")
    };
    println!(
        "optimality audit: {algo_name} n={n} p={p} steps={steps}, c in {cs:?} \
         (ceilings: latency {:.1}, bandwidth {:.1})",
        ceilings.latency, ceilings.bandwidth
    );

    let wire_on = opts.get("wire").is_some_and(|v| v != "false");
    let mut reports = Vec::new();
    let mut rooflines: Vec<RooflineReport> = Vec::new();
    let mut wire_sections: Vec<(usize, String)> = Vec::new();
    let mut wire_predicted = 0u64;
    let mut wire_observed = 0u64;
    let calibration = match load_calibration(opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for &c in &cs {
        let base_law = RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        };
        let (law, method) = if cutoff_frac > 0.0 {
            (
                AnyLaw::RepulsiveCutoff(Cutoff::new(base_law, cutoff_frac)),
                Method::Ca1dCutoff { c },
            )
        } else {
            (AnyLaw::Repulsive(base_law), Method::CaAllPairs { c })
        };
        let cfg = SimConfig {
            law,
            integrator: SemiImplicitEuler,
            domain,
            boundary: Boundary::Reflective,
            dt: 0.001,
            steps,
        };
        let initial = init::uniform(n, &cfg.domain, seed);
        // With --wire the same audited run also records message-level
        // probes, so the table can compare observed traffic against the
        // schedule's per-phase predictions.
        let metrics = if wire_on {
            let (_, _, metrics, _, log) = run_distributed_wired(&cfg, method, p, &initial);
            let spec = WireScheduleSpec {
                method,
                n,
                p,
                steps,
                domain,
                boundary: Boundary::Reflective,
                cutoff: (cutoff_frac > 0.0).then_some(cutoff_frac),
            };
            match expected_schedule(&spec) {
                Ok(expected) => {
                    let rows = wire_phase_counts(&expected, &log);
                    wire_predicted += rows.iter().map(|r| r.predicted).sum::<u64>();
                    wire_observed += rows.iter().map(|r| r.observed).sum::<u64>();
                    wire_sections.push((c, wire_phase_table(&rows)));
                }
                Err(e) => {
                    eprintln!("audit: cannot derive wire schedule for c={c}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            metrics
        } else {
            let (_, _, metrics) = run_distributed_traced(&cfg, method, p, &initial);
            metrics
        };
        // The same instrumented run feeds both sides of the audit: its
        // comm counters go to the optimality check, its compute counters
        // to the roofline.
        rooflines.push(roofline(
            &format!("{algo_name} c={c}"),
            &metrics,
            &calibration,
        ));
        let input = AuditInput::from_snapshot(&metrics);
        let acfg = AuditConfig {
            n: n as u64,
            p: p as u64,
            c: c as u64,
            steps: steps as u64,
            algorithm,
            ceilings,
        };
        reports.push(audit(&acfg, &input));
    }
    print!("{}", audit_table(&reports));
    for (c, table) in &wire_sections {
        println!("c={c}:");
        print!("{table}");
    }

    if let Some(path) = opts.get("out") {
        let body = if path.ends_with(".csv") {
            audit_csv(&reports)
        } else {
            audit_json(&reports).to_string()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write audit report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("audit report written to {path}");
    }

    print!("{}", roofline_table(&rooflines));
    if let Some(path) = opts.get("roofline-out") {
        let body = if path.ends_with(".csv") {
            roofline_csv(&rooflines)
        } else {
            roofline_json(&rooflines).to_string()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write roofline report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("roofline report written to {path}");
    }

    let roofline_best = rooflines
        .iter()
        .map(RooflineReport::best_pct)
        .fold(0.0, f64::max);
    let mut roofline_pass = true;
    if let Some(path) = opts.get("roofline-baseline") {
        let gate = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|text| Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}")))
            .and_then(|doc| RooflineGate::from_json(&doc));
        let gate = match gate {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        match gate.check(&rooflines) {
            Ok(best) => println!(
                "roofline gate: best rank {best:.2}% of roofline >= floor \
                 {:.2}% - {:.2}%",
                gate.min_pct, gate.tolerance_pct
            ),
            Err(e) => {
                eprintln!("{e}");
                roofline_pass = false;
            }
        }
    }

    let rows = reports
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("c".to_string(), Json::Num(r.config.c as f64)),
                ("s_factor".to_string(), Json::Num(r.s_factor)),
                ("w_factor".to_string(), Json::Num(r.w_factor)),
                (
                    "shift_words".to_string(),
                    Json::Num(r.shift_words() as f64),
                ),
                ("pass".to_string(), Json::Bool(r.pass)),
            ])
        })
        .collect();
    let mut summary = vec![
        ("cmd".to_string(), Json::Str("audit".into())),
        ("algorithm".to_string(), Json::Str(algo_name.into())),
        ("n".to_string(), Json::Num(n as f64)),
        ("p".to_string(), Json::Num(p as f64)),
        ("steps".to_string(), Json::Num(steps as f64)),
        ("rows".to_string(), Json::Arr(rows)),
        ("roofline_best_pct".to_string(), Json::Num(roofline_best)),
        ("roofline_pass".to_string(), Json::Bool(roofline_pass)),
        (
            "pass".to_string(),
            Json::Bool(reports.iter().all(|r| r.pass) && roofline_pass),
        ),
    ];
    if wire_on {
        summary.push((
            "wire_predicted_msgs".to_string(),
            Json::Num(wire_predicted as f64),
        ));
        summary.push((
            "wire_observed_msgs".to_string(),
            Json::Num(wire_observed as f64),
        ));
    }
    let summary = Json::Obj(summary);
    println!("{summary}");
    if !reports.iter().all(|r| r.pass) {
        eprintln!("AUDIT FAILED: a constant factor exceeded its ceiling");
        ExitCode::FAILURE
    } else if !roofline_pass {
        eprintln!("AUDIT FAILED: compute efficiency fell below the roofline baseline");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Resolve the machine calibration the roofline uses: an explicit
/// `--calibration` path, else the checked-in default if present, else a
/// quick in-process measurement.
fn load_calibration(opts: &HashMap<String, String>) -> Result<MachineCalibration, String> {
    const DEFAULT_PATH: &str = "bench_results/machine_calibration.json";
    let explicit = opts.get("calibration").map(String::as_str);
    let path = explicit.unwrap_or(DEFAULT_PATH);
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let doc = Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
            let cal = MachineCalibration::from_json(&doc)?;
            println!(
                "calibration from {path}: peak {:.2} GFLOP/s, bandwidth {:.2} GB/s",
                cal.peak_gflops, cal.mem_bw_gbytes
            );
            Ok(cal)
        }
        Err(e) if explicit.is_some() => Err(format!("cannot read {path}: {e}")),
        Err(_) => {
            // No recorded calibration: measure a quick one so the audit
            // still renders a roofline (noisier than the recorded file).
            let cal = MachineCalibration::measure(&CalibrationConfig::quick());
            println!(
                "no {DEFAULT_PATH}; quick live calibration: peak {:.2} GFLOP/s, \
                 bandwidth {:.2} GB/s",
                cal.peak_gflops, cal.mem_bw_gbytes
            );
            Ok(cal)
        }
    }
}

/// `calibrate`: run the machine microbenchmarks and persist the ceilings.
fn calibrate_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let full = opts.get("full").is_some_and(|v| v != "false");
    let mut cfg = if full {
        CalibrationConfig::full()
    } else {
        CalibrationConfig::quick()
    };
    cfg.seed = get(opts, "seed", cfg.seed);
    println!(
        "calibrating ({}): {} FMA iters x {} lanes, {} MiB stream, best of {}",
        if full { "full" } else { "quick" },
        cfg.fma_iters,
        8,
        cfg.stream_mib,
        cfg.repeats
    );
    let start = std::time::Instant::now();
    let cal = MachineCalibration::measure(&cfg);
    let elapsed = start.elapsed();
    println!(
        "  scalar FMA peak {:.3} GFLOP/s, stream bandwidth {:.3} GB/s ({elapsed:.2?})",
        cal.peak_gflops, cal.mem_bw_gbytes
    );
    if let Some(path) = opts.get("out") {
        if let Some(dir) = std::path::Path::new(path).parent().filter(|d| !d.as_os_str().is_empty())
        {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(path, cal.to_json().to_string()) {
            eprintln!("cannot write calibration to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  calibration written to {path}");
    }
    let summary = Json::Obj(vec![
        ("cmd".to_string(), Json::Str("calibrate".into())),
        ("full".to_string(), Json::Bool(full)),
        ("seed".to_string(), Json::Num(cfg.seed as f64)),
        ("peak_gflops".to_string(), Json::Num(cal.peak_gflops)),
        ("mem_bw_gbytes".to_string(), Json::Num(cal.mem_bw_gbytes)),
        ("elapsed_secs".to_string(), Json::Num(elapsed.as_secs_f64())),
    ]);
    println!("{summary}");
    ExitCode::SUCCESS
}

/// `chaos`: sweep deterministic fault schedules over a small execution.
///
/// Five passes, all against the same fault-free baseline trajectory:
/// benign seeded schedules (delays + duplicates) that must not even
/// trigger recovery; a kill of every rank at every pipeline step, which
/// must recover **bit-identically** whenever `c >= 2`; a multi-fault
/// pass (`--kills=N`) killing N ranks in distinct columns at once, which
/// must also recover bit-identically; a double kill inside one column,
/// which must *shrink* the world onto the survivors and match a
/// recomposed reference run on the survivor set; and a `c = 1` kill,
/// which must do the same instead of failing. Recovery overhead (worst
/// attempt count, resync bytes per kill relative to one replicated
/// block) is gated against ceilings, by default or from
/// `--baseline=<json>`.
/// Validate a degraded (shrunken) chaos run: the survivors must account
/// for every particle, occupy the expected rank count, and reproduce —
/// bit for bit — a clean recomposed run on the survivor set at the same
/// shrunken grid the degraded run re-derived.
#[allow(clippy::too_many_arguments)]
fn check_shrunk(
    label: &str,
    res: &ca_nbody::ChaosRunResult,
    cfg: &SimConfig<AnyLaw, SemiImplicitEuler>,
    method: Method,
    initial: &[Particle],
    n: usize,
    expect_ranks: usize,
    r_c: f64,
    failures: &mut Vec<String>,
) {
    if res.shrinks == 0 {
        failures.push(format!("{label}: expected a world shrink, got none"));
        return;
    }
    if res.final_ranks != expect_ranks {
        failures.push(format!(
            "{label}: expected {expect_ranks} surviving ranks, got {}",
            res.final_ranks
        ));
    }
    if res.particles.len() + res.lost_particles != n {
        failures.push(format!(
            "{label}: survivors ({}) + lost ({}) do not cover all {n} particles",
            res.particles.len(),
            res.lost_particles
        ));
        return;
    }
    if res.lost_particles == 0 {
        failures.push(format!("{label}: a dead column should have lost its particles"));
        return;
    }
    // `res.particles` is sorted by id, so the survivor subset of the
    // initial condition falls out of a binary search.
    let ids: Vec<u64> = res.particles.iter().map(|q| q.id).collect();
    let survivors: Vec<Particle> = initial
        .iter()
        .filter(|q| ids.binary_search(&q.id).is_ok())
        .cloned()
        .collect();
    let p2 = res.final_ranks;
    // Mirror the driver's choice: the largest replication the survivor
    // count still supports.
    let reference = match method {
        Method::CaAllPairs { c } => (1..=c)
            .rev()
            .find(|&cc| ProcGrid::new_all_pairs(p2, cc).is_ok())
            .map(|c2| run_distributed(cfg, Method::CaAllPairs { c: c2 }, p2, &survivors).particles),
        Method::Ca1dCutoff { c } => (1..=c)
            .rev()
            .find(|&cc| {
                p2.is_multiple_of(cc)
                    && ProcGrid::new(p2, cc).is_ok()
                    && validate_cutoff(
                        &Window1d::from_cutoff(&cfg.domain, p2 / cc, r_c),
                        p2 / cc,
                        cc,
                    )
                    .is_ok()
            })
            .map(|c2| run_distributed(cfg, Method::Ca1dCutoff { c: c2 }, p2, &survivors).particles),
        _ => None,
    };
    match reference {
        Some(reference) if res.particles == reference => {}
        Some(_) => failures.push(format!(
            "{label}: degraded trajectory diverged from the recomposed survivor reference"
        )),
        None => failures.push(format!(
            "{label}: no valid shrunken grid exists for the reference run"
        )),
    }
}

fn chaos_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let n: usize = get(opts, "n", 192);
    let p: usize = get(opts, "p", 8);
    let c: usize = get(opts, "c", 2);
    let steps: usize = get(opts, "steps", 1);
    let seed: u64 = get(opts, "seed", 42);
    let timeout_ms: u64 = get(opts, "fault-timeout-ms", 250);
    let method_name = opts.get("method").map(String::as_str).unwrap_or("ca");
    if c < 2 {
        eprintln!("chaos: the kill sweep needs a surviving replica; pass c >= 2");
        return ExitCode::FAILURE;
    }

    let mut attempts_ceiling = 2.0f64;
    let mut bytes_factor_ceiling = 2.5f64;
    if let Some(path) = opts.get("baseline") {
        let parsed = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()));
        let doc = match parsed {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite() && *v > 0.0)
                .ok_or_else(|| format!("missing or invalid {key:?}"))
        };
        match (field("max_attempts_ceiling"), field("recovery_bytes_factor_ceiling")) {
            (Ok(a), Ok(b)) => {
                attempts_ceiling = a;
                bytes_factor_ceiling = b;
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("cannot parse baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let domain = Domain::unit();
    let base_law = RepulsiveInverseSquare {
        strength: 1e-3,
        softening: 1e-3,
    };
    let (method, law, pipeline_steps) = match method_name {
        "ca" => {
            let grid = match ProcGrid::new_all_pairs(p, c) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("chaos: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (
                Method::CaAllPairs { c },
                AnyLaw::Repulsive(base_law),
                grid.all_pairs_steps(),
            )
        }
        "ca-cutoff-1d" => {
            let grid = match ProcGrid::new(p, c) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("chaos: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cutoff: f64 = get(opts, "cutoff", 0.25);
            let window = Window1d::from_cutoff(&domain, grid.teams(), cutoff);
            if let Err(e) = validate_cutoff(&window, grid.teams(), c) {
                eprintln!("chaos: {e}");
                return ExitCode::FAILURE;
            }
            (
                Method::Ca1dCutoff { c },
                AnyLaw::RepulsiveCutoff(Cutoff::new(base_law, cutoff)),
                ca_nbody::cutoff::row_steps(window.len(), c, 0),
            )
        }
        other => {
            eprintln!("chaos: unsupported method '{other}' (use ca or ca-cutoff-1d)");
            return ExitCode::FAILURE;
        }
    };

    let cfg = SimConfig {
        law,
        integrator: SemiImplicitEuler,
        domain,
        boundary: Boundary::Reflective,
        dt: 0.005,
        steps,
    };
    let initial = init::uniform(n, &cfg.domain, seed);
    // The sweep asserts exact attempt counts, so it pins the fully
    // deterministic fixed-deadline policy (no backoff, no jitter).
    let policy = RetryPolicy::fixed(timeout_ms, 3);
    println!(
        "chaos sweep: {method_name} n={n} p={p} c={c} steps={steps}, \
         kill schedule 0..={pipeline_steps} x {p} ranks, timeout {timeout_ms} ms"
    );
    let start = std::time::Instant::now();
    let want = run_distributed(&cfg, method, p, &initial).particles;

    let mut failures: Vec<String> = Vec::new();
    let mut runs = 0usize;
    // With --metrics the whole sweep's counters accumulate rank-wise into
    // one snapshot (fault counters sum, memory HWMs take the max), so one
    // file answers "what did the entire chaos campaign cost".
    let metrics_path = opts.get("metrics").cloned();
    let mut sweep_metrics = MetricsSnapshot::empty();

    // With --postmortem every run that dies dumps its flight-recorder
    // bundle into the directory, one JSON file per failed schedule.
    let postmortem_dir = opts.get("postmortem").cloned();
    let mut postmortem_bundles: Vec<String> = Vec::new();
    fn dump_postmortem(
        dir: &Option<String>,
        name: &str,
        tl: &RunTimeline,
        bundles: &mut Vec<String>,
    ) {
        let Some(dir) = dir else { return };
        let write = std::fs::create_dir_all(dir).and_then(|()| {
            let path = format!("{dir}/{name}.json");
            std::fs::write(&path, tl.to_json()).map(|()| path)
        });
        match write {
            Ok(path) => {
                println!("  postmortem bundle written to {path}");
                bundles.push(name.to_string());
            }
            Err(e) => eprintln!("  cannot write postmortem {name} to {dir}: {e}"),
        }
    }

    // Benign schedules: delays and duplicates must be absorbed without
    // even triggering recovery.
    for salt in 0..2u64 {
        let plan = FaultPlan::seeded(
            seed.wrapping_add(salt),
            p,
            pipeline_steps,
            4,
            &[FaultKind::Delay, FaultKind::Duplicate],
        );
        runs += 1;
        let (res, tl) = run_distributed_chaos_recorded(&cfg, method, p, &plan, &policy, &initial);
        match res {
            Ok(res) => {
                sweep_metrics.absorb(&res.metrics);
                if res.particles != want {
                    failures.push(format!("benign [{}]: forces diverged", plan.spec()));
                }
                if res.recovered {
                    failures.push(format!("benign [{}]: spurious recovery", plan.spec()));
                }
            }
            Err(e) => {
                failures.push(format!("benign [{}]: {e}", plan.spec()));
                dump_postmortem(
                    &postmortem_dir,
                    &format!("benign_{salt}"),
                    &tl.with_failure(&e.to_string()),
                    &mut postmortem_bundles,
                );
            }
        }
    }

    // The kill sweep: every rank, every pipeline step (0 = skew).
    let nominal_block_bytes = ((n * c / p) * std::mem::size_of::<Particle>()) as f64;
    let mut kills_fired = 0usize;
    let mut worst_attempts = 1usize;
    let mut worst_bytes_factor = 0.0f64;
    for step in 0..=pipeline_steps {
        for rank in 0..p {
            let plan = FaultPlan::kill(rank, step);
            runs += 1;
            let (res, tl) = run_distributed_chaos_recorded(&cfg, method, p, &plan, &policy, &initial);
            match res {
                Ok(res) => {
                    sweep_metrics.absorb(&res.metrics);
                    if res.particles != want {
                        failures.push(format!(
                            "kill:{rank}@{step}: forces diverged from fault-free run"
                        ));
                    }
                    // In the cutoff pipeline short rows never reach high
                    // steps, so some scheduled kills legitimately don't fire.
                    if res.metrics.sum_counter("fault_injected_kill", None) > 0 {
                        kills_fired += 1;
                        if !res.recovered {
                            failures.push(format!("kill:{rank}@{step}: fired but not recovered"));
                        }
                        worst_attempts = worst_attempts.max(res.max_attempts);
                        let bytes = res.metrics.sum_counter("recovery_bytes_total", None) as f64;
                        worst_bytes_factor = worst_bytes_factor.max(bytes / nominal_block_bytes);
                    }
                }
                Err(e) => {
                    failures.push(format!("kill:{rank}@{step}: {e}"));
                    dump_postmortem(
                        &postmortem_dir,
                        &format!("kill_{rank}_at_{step}"),
                        &tl.with_failure(&e.to_string()),
                        &mut postmortem_bundles,
                    );
                }
            }
        }
    }
    if kills_fired == 0 {
        failures.push("no scheduled kill ever fired".to_string());
    }

    // Multi-fault mode: N simultaneous kills spread across *distinct*
    // columns, so every dead rank still has a live replica — recovery
    // must stay bit-identical, with no shrink.
    let kills: usize = get(opts, "kills", 1);
    let teams = p / c;
    if kills >= 2 {
        let picked: Vec<usize> = (0..kills.min(teams)).map(|t| (t % c) * teams + t).collect();
        let spec = picked
            .iter()
            .map(|r| format!("kill:{r}@0"))
            .collect::<Vec<_>>()
            .join(",");
        let plan = FaultPlan::parse(&spec).expect("generated kill spec parses");
        runs += 1;
        let (res, tl) = run_distributed_chaos_recorded(&cfg, method, p, &plan, &policy, &initial);
        match res {
            Ok(res) => {
                sweep_metrics.absorb(&res.metrics);
                if res.particles != want {
                    failures
                        .push(format!("multi-kill [{spec}]: forces diverged from fault-free run"));
                }
                let fired = res.metrics.sum_counter("fault_injected_kill", None);
                if fired > 0 && !res.recovered {
                    failures.push(format!("multi-kill [{spec}]: fired but not recovered"));
                }
                if res.shrinks != 0 {
                    failures.push(format!("multi-kill [{spec}]: unexpected world shrink"));
                }
                worst_attempts = worst_attempts.max(res.max_attempts);
            }
            Err(e) => {
                failures.push(format!("multi-kill [{spec}]: {e}"));
                dump_postmortem(
                    &postmortem_dir,
                    "multi_kill",
                    &tl.with_failure(&e.to_string()),
                    &mut postmortem_bundles,
                );
            }
        }
    }

    let r_c: f64 = get(opts, "cutoff", 0.25);
    let mut shrinks_observed = 0usize;

    // The second availability tier: kill *every* replica of one column,
    // so replica recovery is impossible and the world must shrink onto
    // the survivors, then finish the run matching a recomposed clean run
    // on the survivor set.
    {
        let victim = 1 % teams;
        let spec = (0..c)
            .map(|row| format!("kill:{}@0", row * teams + victim))
            .collect::<Vec<_>>()
            .join(",");
        let plan = FaultPlan::parse(&spec).expect("generated kill spec parses");
        runs += 1;
        let (res, tl) = run_distributed_chaos_recorded(&cfg, method, p, &plan, &policy, &initial);
        match res {
            Ok(res) => {
                sweep_metrics.absorb(&res.metrics);
                shrinks_observed += res.shrinks;
                check_shrunk(
                    &format!("double-kill [{spec}]"),
                    &res,
                    &cfg,
                    method,
                    &initial,
                    n,
                    p - c,
                    r_c,
                    &mut failures,
                );
            }
            Err(e) => {
                failures.push(format!("double-kill [{spec}]: {e}"));
                dump_postmortem(
                    &postmortem_dir,
                    "double_kill_same_column",
                    &tl.with_failure(&e.to_string()),
                    &mut postmortem_bundles,
                );
            }
        }
    }

    // Without replication a single kill leaves no replica at all: the
    // same degraded tier — survivors must agree, shrink to p-1 ranks,
    // and complete instead of failing or deadlocking.
    let m1 = match method {
        Method::CaAllPairs { .. } => Method::CaAllPairs { c: 1 },
        Method::Ca1dCutoff { .. } => Method::Ca1dCutoff { c: 1 },
        _ => unreachable!("chaos supports only CA methods"),
    };
    runs += 1;
    let (res, tl) =
        run_distributed_chaos_recorded(&cfg, m1, p, &FaultPlan::kill(p / 2, 0), &policy, &initial);
    match res {
        Ok(res) => {
            sweep_metrics.absorb(&res.metrics);
            shrinks_observed += res.shrinks;
            check_shrunk(
                "c=1 kill",
                &res,
                &cfg,
                m1,
                &initial,
                n,
                p - 1,
                r_c,
                &mut failures,
            );
        }
        Err(e) => {
            failures.push(format!("c=1 kill failed instead of shrinking: {e}"));
            dump_postmortem(
                &postmortem_dir,
                "c1_kill",
                &tl.with_failure(&e.to_string()),
                &mut postmortem_bundles,
            );
        }
    }

    // Total loss: every rank killed in the same step leaves nothing to
    // shrink onto. This is the one fault the degraded tiers cannot absorb
    // — it must fail cleanly (no deadlock, no bogus result) and leave a
    // flight-recorder postmortem for the artifact upload.
    {
        let spec = (0..p)
            .map(|r| format!("kill:{r}@0"))
            .collect::<Vec<_>>()
            .join(",");
        let plan = FaultPlan::parse(&spec).expect("generated kill spec parses");
        runs += 1;
        let (res, tl) = run_distributed_chaos_recorded(&cfg, method, p, &plan, &policy, &initial);
        match res {
            Ok(_) => {
                failures.push("total loss must be unrecoverable, but the run succeeded".into())
            }
            Err(e) => {
                println!("  total-loss kill failed as required: {e}");
                dump_postmortem(
                    &postmortem_dir,
                    "total_loss_unrecoverable",
                    &tl.with_failure(&e.to_string()),
                    &mut postmortem_bundles,
                );
            }
        }
    }

    let elapsed = start.elapsed();
    let attempts_ok = (worst_attempts as f64) <= attempts_ceiling;
    let bytes_ok = worst_bytes_factor <= bytes_factor_ceiling;
    if !attempts_ok {
        failures.push(format!(
            "worst attempt count {worst_attempts} exceeds ceiling {attempts_ceiling}"
        ));
    }
    if !bytes_ok {
        failures.push(format!(
            "recovery bytes factor {worst_bytes_factor:.2} exceeds ceiling {bytes_factor_ceiling}"
        ));
    }
    println!(
        "  {runs} runs in {elapsed:.2?}: {kills_fired} kills fired, worst attempts \
         {worst_attempts} (ceiling {attempts_ceiling}), resync bytes/kill \
         {worst_bytes_factor:.2}x block (ceiling {bytes_factor_ceiling})"
    );
    for f in &failures {
        eprintln!("  CHAOS FAILURE: {f}");
    }

    if let Some(path) = &metrics_path {
        let body = if path.ends_with(".prom") {
            sweep_metrics.to_prometheus()
        } else {
            sweep_metrics.to_json().to_string()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "  sweep metrics written to {path} ({} ranks)",
            sweep_metrics.ranks.len()
        );
    }

    let pass = failures.is_empty();
    let mut summary = vec![
        ("cmd".to_string(), Json::Str("chaos".into())),
        ("method".to_string(), Json::Str(method_name.into())),
        ("n".to_string(), Json::Num(n as f64)),
        ("p".to_string(), Json::Num(p as f64)),
        ("c".to_string(), Json::Num(c as f64)),
        ("steps".to_string(), Json::Num(steps as f64)),
        ("runs".to_string(), Json::Num(runs as f64)),
        ("kills_fired".to_string(), Json::Num(kills_fired as f64)),
        ("kills".to_string(), Json::Num(kills as f64)),
        ("shrinks".to_string(), Json::Num(shrinks_observed as f64)),
        ("max_attempts".to_string(), Json::Num(worst_attempts as f64)),
        (
            "recovery_bytes_factor".to_string(),
            Json::Num(worst_bytes_factor),
        ),
        ("elapsed_secs".to_string(), Json::Num(elapsed.as_secs_f64())),
        ("failures".to_string(), Json::Num(failures.len() as f64)),
        ("pass".to_string(), Json::Bool(pass)),
    ];
    if let Some(path) = &metrics_path {
        summary.push(("metrics_path".to_string(), Json::Str(path.clone())));
        summary.push((
            "sweep_compute_flops".to_string(),
            Json::Num(sweep_metrics.sum_counter("compute_flops", None) as f64),
        ));
    }
    if let Some(dir) = &postmortem_dir {
        summary.push(("postmortem_dir".to_string(), Json::Str(dir.clone())));
        summary.push((
            "postmortem_bundles".to_string(),
            Json::Arr(
                postmortem_bundles
                    .iter()
                    .map(|n| Json::Str(n.clone()))
                    .collect(),
            ),
        ));
    }
    println!("{}", Json::Obj(summary));
    if pass {
        ExitCode::SUCCESS
    } else {
        eprintln!("CHAOS FAILED: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

/// `soak`: time-boxed randomized chaos. Seeded fault plans (kills,
/// drops, duplicates, delays) are generated from a deterministically
/// advancing seed and run until the wall-clock budget (`seconds`)
/// expires. Every run must terminate cleanly: bit-identical recovery
/// when no column fully died, or a survivor-consistent shrink when one
/// did (single-shrink runs are additionally checked against a
/// recomposed clean run on the survivor set). Failing runs dump
/// flight-recorder postmortems into `--postmortem=DIR` — the CI
/// chaos-soak job uploads that directory on failure.
fn soak_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let n: usize = get(opts, "n", 96);
    let p: usize = get(opts, "p", 8);
    let c: usize = get(opts, "c", 2);
    let steps: usize = get(opts, "steps", 2);
    let seed: u64 = get(opts, "seed", 42);
    let seconds: f64 = get(opts, "seconds", 30.0);
    let events: usize = get(opts, "events", 3);
    let timeout_ms: u64 = get(opts, "fault-timeout-ms", 250);
    let r_c: f64 = get(opts, "cutoff", 0.25);
    let method_name = opts.get("method").map(String::as_str).unwrap_or("ca");

    let domain = Domain::unit();
    let base_law = RepulsiveInverseSquare {
        strength: 1e-3,
        softening: 1e-3,
    };
    let (method, law, pipeline_steps) = match method_name {
        "ca" => {
            let grid = match ProcGrid::new_all_pairs(p, c) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("soak: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (
                Method::CaAllPairs { c },
                AnyLaw::Repulsive(base_law),
                grid.all_pairs_steps(),
            )
        }
        "ca-cutoff-1d" => {
            let grid = match ProcGrid::new(p, c) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("soak: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let window = Window1d::from_cutoff(&domain, grid.teams(), r_c);
            if let Err(e) = validate_cutoff(&window, grid.teams(), c) {
                eprintln!("soak: {e}");
                return ExitCode::FAILURE;
            }
            (
                Method::Ca1dCutoff { c },
                AnyLaw::RepulsiveCutoff(Cutoff::new(base_law, r_c)),
                ca_nbody::cutoff::row_steps(window.len(), c, 0),
            )
        }
        other => {
            eprintln!("soak: unsupported method '{other}' (use ca or ca-cutoff-1d)");
            return ExitCode::FAILURE;
        }
    };
    let cfg = SimConfig {
        law,
        integrator: SemiImplicitEuler,
        domain,
        boundary: Boundary::Reflective,
        dt: 0.005,
        steps,
    };
    let initial = init::uniform(n, &cfg.domain, seed);
    // Unlike the deterministic `chaos` sweep, the soak exercises the
    // adaptive policy: exponential backoff with seeded jitter.
    let policy = RetryPolicy {
        base_timeout: std::time::Duration::from_millis(timeout_ms),
        peer_dead_timeout: std::time::Duration::from_millis(timeout_ms),
        backoff: 2.0,
        jitter: 0.1,
        max_retries: 3,
        budget: std::time::Duration::from_secs(30),
        seed,
    };
    let want = run_distributed(&cfg, method, p, &initial).particles;
    let postmortem_dir = opts.get("postmortem").cloned();
    println!(
        "chaos soak: {method_name} n={n} p={p} c={c} steps={steps}, \
         {seconds:.0}s budget, {events} events/plan, base seed {seed}"
    );

    let start = std::time::Instant::now();
    let mut runs = 0usize;
    let mut shrinks = 0usize;
    let mut recoveries = 0usize;
    let mut failures: Vec<String> = Vec::new();
    let mut postmortem_bundles: Vec<String> = Vec::new();
    loop {
        let plan_seed = seed.wrapping_add(runs as u64);
        let plan = FaultPlan::seeded(
            plan_seed,
            p,
            pipeline_steps,
            events,
            &[
                FaultKind::Kill,
                FaultKind::Drop,
                FaultKind::Duplicate,
                FaultKind::Delay,
            ],
        );
        runs += 1;
        let (res, tl) = run_distributed_chaos_recorded(&cfg, method, p, &plan, &policy, &initial);
        match res {
            Ok(res) => {
                if res.recovered {
                    recoveries += 1;
                }
                shrinks += res.shrinks;
                if res.shrinks == 0 {
                    if res.particles != want {
                        failures.push(format!(
                            "seed {plan_seed} [{}]: diverged from fault-free run without a shrink",
                            plan.spec()
                        ));
                    }
                } else if res.shrinks == 1 {
                    check_shrunk(
                        &format!("seed {plan_seed} [{}]", plan.spec()),
                        &res,
                        &cfg,
                        method,
                        &initial,
                        n,
                        res.final_ranks,
                        r_c,
                        &mut failures,
                    );
                } else if res.particles.len() + res.lost_particles != n {
                    failures.push(format!(
                        "seed {plan_seed} [{}]: survivors + lost do not cover all particles",
                        plan.spec()
                    ));
                }
            }
            Err(e) => {
                failures.push(format!("seed {plan_seed} [{}]: {e}", plan.spec()));
                if let Some(dir) = &postmortem_dir {
                    let name = format!("soak_seed_{plan_seed}");
                    let write = std::fs::create_dir_all(dir).and_then(|()| {
                        let path = format!("{dir}/{name}.json");
                        std::fs::write(&path, tl.with_failure(&e.to_string()).to_json())
                            .map(|()| path)
                    });
                    match write {
                        Ok(path) => {
                            println!("  postmortem bundle written to {path}");
                            postmortem_bundles.push(name);
                        }
                        Err(we) => eprintln!("  cannot write postmortem {name} to {dir}: {we}"),
                    }
                }
            }
        }
        // Enough evidence to diagnose — don't burn the rest of the budget.
        if failures.len() >= 5 || start.elapsed().as_secs_f64() >= seconds {
            break;
        }
    }

    let elapsed = start.elapsed();
    let pass = failures.is_empty();
    println!(
        "  {runs} seeded runs in {elapsed:.2?}: {recoveries} recoveries, {shrinks} shrinks, \
         {} failure(s)",
        failures.len()
    );
    for f in &failures {
        eprintln!("  SOAK FAILURE: {f}");
    }
    let mut summary = vec![
        ("cmd".to_string(), Json::Str("soak".into())),
        ("method".to_string(), Json::Str(method_name.into())),
        ("n".to_string(), Json::Num(n as f64)),
        ("p".to_string(), Json::Num(p as f64)),
        ("c".to_string(), Json::Num(c as f64)),
        ("steps".to_string(), Json::Num(steps as f64)),
        ("seed".to_string(), Json::Num(seed as f64)),
        ("runs".to_string(), Json::Num(runs as f64)),
        ("recoveries".to_string(), Json::Num(recoveries as f64)),
        ("shrinks".to_string(), Json::Num(shrinks as f64)),
        ("elapsed_secs".to_string(), Json::Num(elapsed.as_secs_f64())),
        ("failures".to_string(), Json::Num(failures.len() as f64)),
        ("pass".to_string(), Json::Bool(pass)),
    ];
    if let Some(dir) = &postmortem_dir {
        summary.push(("postmortem_dir".to_string(), Json::Str(dir.clone())));
        summary.push((
            "postmortem_bundles".to_string(),
            Json::Arr(
                postmortem_bundles
                    .iter()
                    .map(|b| Json::Str(b.clone()))
                    .collect(),
            ),
        ));
    }
    println!("{}", Json::Obj(summary));
    if pass {
        ExitCode::SUCCESS
    } else {
        eprintln!("SOAK FAILED: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

fn machine_by_name(opts: &HashMap<String, String>) -> Machine {
    match opts.get("machine").map(String::as_str) {
        Some("intrepid") => intrepid(),
        _ => hopper(),
    }
}

fn scale_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let machine = machine_by_name(opts);
    let n: usize = get(opts, "n", 32_768);
    println!("strong scaling of {n} particles on {} (simulated)", machine.name);
    let cs = [1usize, 2, 4, 8, 16];
    print!("{:>8}", "cores");
    for c in cs {
        print!(" {:>9}", format!("c={c}"));
    }
    println!();
    let mut rows = Vec::new();
    for p in [256usize, 512, 1024, 2048, 4096] {
        print!("{:>8}", p);
        let mut effs = Vec::new();
        let mut msgs = Vec::new();
        let mut words = Vec::new();
        let mut imbs = Vec::new();
        let mut crit_comm = Vec::new();
        for c in cs {
            if c * c <= p && p % (c * c) == 0 {
                let params = AllPairsParams::new(p, c, n);
                let rep = simulate(&machine, p, |r| params.program(r));
                let compute: f64 = rep.per_rank.iter().map(|b| b.compute).sum();
                let eff = compute / (p as f64 * rep.makespan);
                print!(" {:>9.3}", eff);
                effs.push(Json::Num(eff));
                // Load imbalance (critical rank total vs mean total) and
                // the critical rank's communication share of its time.
                let mean = rep.mean();
                let crit = rep.critical();
                imbs.push(Json::Num(if mean.total() > 0.0 {
                    crit.total() / mean.total()
                } else {
                    1.0
                }));
                crit_comm.push(Json::Num(if crit.total() > 0.0 {
                    crit.comm_total() / crit.total()
                } else {
                    0.0
                }));
                // Per-rank traffic totals (max over ranks): messages count
                // point-to-point sends plus collectives, words count
                // particles at the paper's 52-byte wire size.
                let (mut max_msgs, mut max_words) = (0u64, 0u64);
                for r in 0..p {
                    let k = count_ops(params.program(r));
                    let m = k.sends.iter().sum::<u64>() + k.collectives.iter().sum::<u64>();
                    let w = k.send_bytes.iter().sum::<u64>() / PARTICLE_WIRE_BYTES as u64;
                    max_msgs = max_msgs.max(m);
                    max_words = max_words.max(w);
                }
                msgs.push(Json::Num(max_msgs as f64));
                words.push(Json::Num(max_words as f64));
            } else {
                print!(" {:>9}", "-");
                effs.push(Json::Null);
                msgs.push(Json::Null);
                words.push(Json::Null);
                imbs.push(Json::Null);
                crit_comm.push(Json::Null);
            }
        }
        println!();
        rows.push(Json::Obj(vec![
            ("p".to_string(), Json::Num(p as f64)),
            ("efficiency".to_string(), Json::Arr(effs)),
            ("messages_per_rank".to_string(), Json::Arr(msgs)),
            ("words_per_rank".to_string(), Json::Arr(words)),
            ("imbalance".to_string(), Json::Arr(imbs)),
            ("critical_comm_frac".to_string(), Json::Arr(crit_comm)),
        ]));
    }
    // With --metrics, one simulated configuration is distilled into a real
    // MetricsSnapshot (comm counters from the schedule's operation counts,
    // compute counters from the DES compute times), so the downstream
    // lenses — audit, roofline, analyze — work on predicted executions too.
    let metrics_path = opts.get("metrics").cloned();
    let mut metrics_info: Option<(usize, usize)> = None;
    if let Some(path) = &metrics_path {
        let mp: usize = get(opts, "metrics-p", 256);
        let Some(c) = cs
            .iter()
            .rev()
            .copied()
            .find(|&c| c * c <= mp && mp.is_multiple_of(c * c))
        else {
            eprintln!("scale: no usable replication factor for metrics-p={mp}");
            return ExitCode::FAILURE;
        };
        let params = AllPairsParams::new(mp, c, n);
        let rep = simulate(&machine, mp, |r| params.program(r));
        // One kernel call touches its own block (read + write) and a
        // visiting block (read): interactions * 3*block_bytes / block^2.
        let block = (n * c / mp).max(1) as u64;
        let particle_bytes = std::mem::size_of::<Particle>() as u64;
        // The synthesized kernel is the default repulsive law.
        let flops_per_interaction = RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        }
        .flops_per_interaction();
        let shards = (0..mp)
            .map(|r| {
                let rec = nbody_metrics::MetricsRecorder::for_rank(r);
                let k = count_ops(params.program(r));
                for (i, ph) in ALL_PHASES.iter().enumerate() {
                    if k.sends[i] > 0 {
                        rec.counter("comm_send_messages", Some(*ph)).add(k.sends[i]);
                        rec.counter("comm_send_bytes", Some(*ph)).add(k.send_bytes[i]);
                        rec.counter("comm_send_elements", Some(*ph))
                            .add(k.send_bytes[i] / PARTICLE_WIRE_BYTES as u64);
                    }
                    if k.collectives[i] > 0 {
                        rec.counter("comm_collective_messages", Some(*ph))
                            .add(k.collectives[i]);
                    }
                }
                rec.counter("compute_interactions", None).add(k.interactions);
                rec.counter("compute_flops", None)
                    .add(k.interactions.saturating_mul(flops_per_interaction));
                rec.counter("compute_bytes", None)
                    .add(k.interactions.saturating_mul(3 * particle_bytes) / block);
                let nanos = (rep.per_rank[r].compute * 1e9) as u64;
                rec.counter("compute_nanos", None).add(nanos.max(1));
                rec.finish()
            })
            .collect();
        let snap = MetricsSnapshot::from_shards(shards);
        let body = if path.ends_with(".prom") {
            snap.to_prometheus()
        } else {
            snap.to_json().to_string()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("simulated metrics for p={mp} c={c} written to {path}");
        metrics_info = Some((mp, c));
    }

    let mut summary = vec![
        ("cmd".to_string(), Json::Str("scale".into())),
        ("machine".to_string(), Json::Str(machine.name.to_string())),
        ("n".to_string(), Json::Num(n as f64)),
        (
            "c_values".to_string(),
            Json::Arr(cs.iter().map(|&c| Json::Num(c as f64)).collect()),
        ),
        ("rows".to_string(), Json::Arr(rows)),
    ];
    if let (Some(path), Some((mp, c))) = (&metrics_path, metrics_info) {
        summary.push(("metrics_path".to_string(), Json::Str(path.clone())));
        summary.push(("metrics_p".to_string(), Json::Num(mp as f64)));
        summary.push(("metrics_c".to_string(), Json::Num(c as f64)));
    }
    println!("{}", Json::Obj(summary));
    ExitCode::SUCCESS
}

fn autotune_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let machine = machine_by_name(opts);
    let p: usize = get(opts, "p", 1536);
    let n: usize = get(opts, "n", 12_288);
    let cutoff: f64 = get(opts, "cutoff", 0.0);
    let tune = if cutoff > 0.0 {
        autotune_cutoff_1d(&machine, p, n, cutoff)
    } else {
        autotune_all_pairs(&machine, p, n)
    };
    println!(
        "autotune on {} (p={p}, n={n}{}):",
        machine.name,
        if cutoff > 0.0 {
            format!(", rc={cutoff}l")
        } else {
            String::new()
        }
    );
    for k in &tune.candidates {
        let marker = if k.c == tune.best_c { "  <-- best" } else { "" };
        println!("  c={:<4} {:.3} ms{marker}", k.c, k.predicted_secs * 1e3);
    }
    ExitCode::SUCCESS
}

fn load_trace(path: &str) -> Result<ExecutionTrace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    ExecutionTrace::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn load_metrics(path: &str) -> Result<MetricsSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".prom") {
        MetricsSnapshot::parse_prometheus(&text)
    } else {
        Json::parse(&text).and_then(|doc| MetricsSnapshot::from_json(&doc))
    }
    .map_err(|e| format!("cannot parse {path}: {e}"))
}

fn load_timeline(path: &str) -> Result<RunTimeline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    RunTimeline::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn load_wire(path: &str) -> Result<WireLog, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    WireLog::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// The revision recorded into history entries: `NBODY_GIT_REV` when set
/// (CI passes it explicitly), else `git rev-parse`, else `unknown`.
fn git_rev() -> String {
    if let Ok(rev) = std::env::var("NBODY_GIT_REV") {
        if !rev.trim().is_empty() {
            return rev.trim().to_string();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// `analyze`: post-run diagnosis of a recorded trace — per-step critical
/// path, per-phase imbalance, straggler rankings, grid heat-maps.
fn analyze_cmd(opts: &HashMap<String, String>, positional: &[String]) -> ExitCode {
    let timeline = match opts.get("timeline") {
        Some(tp) => match load_timeline(tp) {
            Ok(tl) => Some(tl),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let wire = match opts.get("wire") {
        Some(wp) => match load_wire(wp) {
            Ok(log) => Some(log),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // The defaults (16-sample window, 6 sigma) are alarm-tuned: they fire
    // on step functions and stay quiet otherwise. Exploratory analysis of
    // slow ramps (e.g. a gravitational collapse) wants a wider window and
    // a tighter threshold.
    let drift_cfg = DriftConfig {
        window: get(opts, "drift-window", DriftConfig::default().window),
        nsigma: get(opts, "drift-nsigma", DriftConfig::default().nsigma),
        ..DriftConfig::default()
    };
    let Some(path) = positional.first() else {
        // Timeline- or wire-only invocation: a recorded bundle or probe
        // log is diagnosable on its own (neither needs a trace).
        if timeline.is_some() || wire.is_some() {
            if let Some(tl) = &timeline {
                print!("{}", render_drift(tl, &drift_cfg));
                println!();
                print!("{}", render_health(tl));
            }
            if let Some(log) = &wire {
                if timeline.is_some() {
                    println!();
                }
                print!("{}", render_wire(&match_events(log)));
            }
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "usage: ca-nbody analyze <trace.json|trace.jsonl> [--metrics=F] [--timeline=F] \
             [--wire=F] [--drift-window=16] [--drift-nsigma=6] [c=1] [--csv=F] [--json=F]"
        );
        return ExitCode::FAILURE;
    };
    let trace = match load_trace(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = match opts.get("metrics") {
        Some(mp) => match load_metrics(mp) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let c: usize = get(opts, "c", 1);
    let a = analyze(&trace, metrics.as_ref(), c);
    print!("{}", render_table(&a));
    if let Some(tl) = &timeline {
        println!();
        print!("{}", render_drift(tl, &drift_cfg));
        println!();
        print!("{}", render_health(tl));
    }
    if let Some(log) = &wire {
        println!();
        print!("{}", render_wire(&match_events(log)));
    }
    if let Some(out) = opts.get("csv") {
        if let Err(e) = std::fs::write(out, render_csv(&a)) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("critical-path CSV written to {out}");
    }
    if let Some(out) = opts.get("json") {
        if let Err(e) = std::fs::write(out, render_json(&a).to_string()) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("analysis JSON written to {out}");
    }
    ExitCode::SUCCESS
}

/// `health`: render the numerical-health section of a recorded timeline
/// bundle (energy drift, momentum, sentinel and fingerprint-mismatch
/// events with blame) and exit non-zero when the bundle is unhealthy —
/// the scriptable end of the health lens.
fn health_cmd(positional: &[String]) -> ExitCode {
    let Some(path) = positional.first() else {
        eprintln!("usage: ca-nbody health <timeline.json>");
        return ExitCode::FAILURE;
    };
    let tl = match load_timeline(path) {
        Ok(tl) => tl,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let s = HealthSummary::from_timeline(&tl);
    print!("{}", s.render());
    println!("{}", s.to_json());
    if s.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `conformance`: diff a recorded wire-probe log against the message
/// multiset the CA schedule predicts for the run's parameters, attributing
/// discrepancies to the fault plan (if any) and exiting non-zero on a FAIL
/// verdict — an unexplained discrepancy with intact probe rings.
fn conformance_cmd(opts: &HashMap<String, String>, positional: &[String]) -> ExitCode {
    let Some(path) = positional.first() else {
        eprintln!(
            "usage: ca-nbody conformance <wire-log.json> [n=1024] [p=8] [c=2] [steps=20] \
             [method=ca] [law=repulsive] [cutoff=0.25] [boundary=reflective] [--faults=SPEC]"
        );
        return ExitCode::FAILURE;
    };
    let log = match load_wire(path) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // The same parameter grammar and defaults as `run`, so the flags that
    // produced the log reproduce its schedule.
    let n: usize = get(opts, "n", 1024);
    let p: usize = get(opts, "p", 8);
    let c: usize = get(opts, "c", 2);
    let steps: usize = get(opts, "steps", 20);
    let law_name = opts.get("law").map(String::as_str).unwrap_or("repulsive");
    let default_cutoff = if law_name == "lj" { 2.5 } else { 0.25 };
    let cutoff: f64 = get(opts, "cutoff", default_cutoff);
    let method = match opts.get("method").map(String::as_str).unwrap_or("ca") {
        "ca" => Method::CaAllPairs { c },
        "ca-cutoff-1d" => Method::Ca1dCutoff { c },
        "ca-cutoff-2d" => Method::Ca2dCutoff { c },
        other => {
            eprintln!(
                "conformance: method '{other}' has no communication-schedule twin \
                 (supported: ca, ca-cutoff-1d, ca-cutoff-2d)"
            );
            return ExitCode::FAILURE;
        }
    };
    let boundary = match opts.get("boundary").map(String::as_str) {
        Some("periodic") => Boundary::Periodic,
        Some("open") => Boundary::Open,
        _ => Boundary::Reflective,
    };
    let domain = if law_name == "lj" {
        Domain::square((n as f64).sqrt() * 1.2)
    } else {
        Domain::unit()
    };
    let spec = WireScheduleSpec {
        method,
        n,
        p,
        steps,
        domain,
        boundary,
        cutoff: method.needs_cutoff().then_some(cutoff),
    };
    let expected = match expected_schedule(&spec) {
        Ok(exp) => exp,
        Err(e) => {
            eprintln!("conformance: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Faults to attribute discrepancies to: the events the chaos backend
    // recorded into the log itself, plus the plan the caller passed (kept
    // separate in case the log predates fault probes or rings overflowed).
    let mut faults = FaultNote::from_log(&log);
    if let Some(spec_str) = opts.get("faults") {
        match FaultPlan::parse(spec_str) {
            Ok(plan) => {
                for note in plan.probe_notes() {
                    if !faults.contains(&note) {
                        faults.push(note);
                    }
                }
            }
            Err(e) => {
                eprintln!("invalid --faults spec: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = check_conformance(&expected, &log, &faults);
    print!("{}", render_conformance(&report));

    let summary = Json::Obj(vec![
        ("cmd".to_string(), Json::Str("conformance".into())),
        ("wire_log".to_string(), Json::Str(path.clone())),
        ("detail".to_string(), Json::Str(report.detail.clone())),
        (
            "expected_msgs".to_string(),
            Json::Num(report.expected_msgs as f64),
        ),
        (
            "observed_msgs".to_string(),
            Json::Num(report.observed_msgs as f64),
        ),
        ("channels".to_string(), Json::Num(report.channels as f64)),
        (
            "violations".to_string(),
            Json::Num(report.violations.len() as f64),
        ),
        ("explained".to_string(), Json::Num(report.explained() as f64)),
        (
            "unexplained".to_string(),
            Json::Num(report.unexplained() as f64),
        ),
        ("saturated".to_string(), Json::Bool(report.saturated)),
        ("verdict".to_string(), Json::Str(report.verdict().into())),
    ]);
    println!("{summary}");
    if report.verdict() == "FAIL" {
        eprintln!("CONFORMANCE FAILED: observed traffic deviates from the CA schedule");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `postmortem`: render a flight-recorder dump (a failed run's timeline
/// bundle) as a human-readable per-rank account of what happened.
fn postmortem_cmd(positional: &[String]) -> ExitCode {
    let Some(path) = positional.first() else {
        eprintln!("usage: ca-nbody postmortem <bundle.json>");
        return ExitCode::FAILURE;
    };
    let tl = match load_timeline(path) {
        Ok(tl) => tl,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match &tl.failure {
        Some(reason) => println!("{path}: FAILED — {reason}"),
        None => println!("{path}: healthy run (no failure recorded)"),
    }
    println!("{} ranks recorded\n", tl.ranks.len());
    for r in &tl.ranks {
        let steps = match (r.samples.first(), r.samples.last()) {
            (Some(a), Some(b)) => format!(
                "{} samples over steps {}..={} (stride {})",
                r.samples.len(),
                a.step,
                b.step,
                r.stride
            ),
            _ => "no step samples".to_string(),
        };
        println!("rank {:<4} {steps}", r.rank);
        if let Some(last) = r.samples.last() {
            println!(
                "          last sample: {} particles, {} send bytes, {:.6} s blocked",
                last.particles, last.send_bytes, last.blocked_secs
            );
        }
        if let Some(f) = &r.failure {
            println!("          failure: {f}");
        }
        if r.dropped_events > 0 {
            println!(
                "          ({} earlier events evicted from the flight ring)",
                r.dropped_events
            );
        }
        for e in &r.events {
            let step = e.step.map_or(String::new(), |s| format!(" step {s}"));
            println!(
                "  {:>10.4}s  {:<16}{step}  {}",
                e.t_secs,
                e.kind.label(),
                e.detail
            );
        }
    }
    ExitCode::SUCCESS
}

/// `regress`: gate a traced run against the cross-run history store.
fn regress_cmd(opts: &HashMap<String, String>, positional: &[String]) -> ExitCode {
    let Some(path) = positional.first() else {
        eprintln!(
            "usage: ca-nbody regress <trace.json|trace.jsonl> [--metrics=F] [n=0] [c=1] \
             [kernel=allpairs] [tolerance=1.5] [--history=bench_results/history] [--record]"
        );
        return ExitCode::FAILURE;
    };
    let trace = match load_trace(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = match opts.get("metrics") {
        Some(mp) => match load_metrics(mp) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let n: u64 = get(opts, "n", 0);
    let c: u64 = get(opts, "c", 1);
    let kernel = opts
        .get("kernel")
        .cloned()
        .unwrap_or_else(|| "allpairs".to_string());
    let tolerance: f64 = get(opts, "tolerance", 1.5);
    if !(tolerance.is_finite() && tolerance > 0.0) {
        eprintln!("regress: tolerance must be a positive number");
        return ExitCode::FAILURE;
    }
    let history_dir = opts
        .get("history")
        .cloned()
        .unwrap_or_else(|| "bench_results/history".to_string());

    let a = analyze(&trace, metrics.as_ref(), c as usize);
    let live = RunSummary::from_analysis(
        &a,
        n,
        c,
        &kernel,
        &git_rev(),
        a.steps.len() as u64,
        unix_now(),
    );

    let store = format!("{history_dir}/{kernel}.jsonl");
    let history = match std::fs::read_to_string(&store) {
        Ok(text) => match parse_history(&text) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("cannot parse {store}: {e}");
                return ExitCode::FAILURE;
            }
        },
        // A missing store is not an error: the first run seeds it.
        Err(_) => Vec::new(),
    };
    let r = check_regression(&live, &history, tolerance);
    print!("{}", render_regression(&r));

    if opts.get("record").is_some_and(|v| v != "false") {
        let append = std::fs::create_dir_all(&history_dir)
            .map_err(|e| e.to_string())
            .and_then(|()| {
                use std::io::Write;
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&store)
                    .and_then(|mut f| writeln!(f, "{}", live.to_json_line()))
                    .map_err(|e| e.to_string())
            });
        match append {
            Ok(()) => println!("recorded to {store}"),
            Err(e) => {
                eprintln!("cannot record to {store}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let verdict = match r.verdict {
        Verdict::Pass => "pass",
        Verdict::Regression => "regression",
        Verdict::NoHistory => "no-history",
    };
    let summary = Json::Obj(vec![
        ("cmd".to_string(), Json::Str("regress".into())),
        ("kernel".to_string(), Json::Str(kernel)),
        ("n".to_string(), Json::Num(n as f64)),
        ("p".to_string(), Json::Num(live.p as f64)),
        ("c".to_string(), Json::Num(c as f64)),
        ("live_wall_secs".to_string(), Json::Num(r.live_wall_secs)),
        (
            "median_wall_secs".to_string(),
            Json::Num(r.median_wall_secs),
        ),
        ("ratio".to_string(), Json::Num(r.ratio)),
        ("tolerance".to_string(), Json::Num(r.tolerance)),
        ("matched".to_string(), Json::Num(r.matched as f64)),
        ("verdict".to_string(), Json::Str(verdict.into())),
    ]);
    println!("{summary}");
    if r.verdict == Verdict::Regression {
        eprintln!("REGRESSION: wall time exceeded tolerance over history median");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
