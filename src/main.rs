//! `ca-nbody` — command-line front end of the reproduction.
//!
//! ```text
//! ca-nbody run      [n=1024] [p=8] [c=2] [steps=20] [dt=0.005] [method=ca]
//!                   [law=repulsive|gravity|lj] [cutoff=0.25] [boundary=reflective]
//! ca-nbody verify   [same options]            distributed-vs-serial check
//! ca-nbody scale    [machine=hopper] [n=32768] strong-scaling table (simulated)
//! ca-nbody autotune [machine=hopper] [p=1536] [n=12288] [cutoff=0]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use ca_nbody::autotune::{autotune_all_pairs, autotune_cutoff_1d};
use ca_nbody::schedule::AllPairsParams;
use ca_nbody::{run_distributed, run_serial, Method, SimConfig};
use nbody_netsim::{hopper, intrepid, simulate, Machine};
use nbody_physics::{
    diagnostics, init, Boundary, Cutoff, Domain, ForceLaw, Gravity, LennardJones, Particle,
    RepulsiveInverseSquare, SemiImplicitEuler, Vec2,
};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        usage();
        return ExitCode::FAILURE;
    };
    let opts: HashMap<String, String> = args
        .filter_map(|a| {
            a.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect();

    match cmd.as_str() {
        "run" => run_cmd(&opts, false),
        "verify" => run_cmd(&opts, true),
        "scale" => scale_cmd(&opts),
        "autotune" => autotune_cmd(&opts),
        _ => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: ca-nbody <run|verify|scale|autotune> [key=value ...]\n\
         see `src/main.rs` header or README.md for the option list"
    );
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A force law selected at runtime; delegates to the concrete laws.
enum AnyLaw {
    Repulsive(RepulsiveInverseSquare),
    Gravity(Gravity),
    Lj(Cutoff<LennardJones>),
    RepulsiveCutoff(Cutoff<RepulsiveInverseSquare>),
}

impl ForceLaw for AnyLaw {
    fn force(&self, target: &Particle, source: &Particle, disp: Vec2) -> Vec2 {
        match self {
            AnyLaw::Repulsive(l) => l.force(target, source, disp),
            AnyLaw::Gravity(l) => l.force(target, source, disp),
            AnyLaw::Lj(l) => l.force(target, source, disp),
            AnyLaw::RepulsiveCutoff(l) => l.force(target, source, disp),
        }
    }

    fn potential(&self, target: &Particle, source: &Particle, disp: Vec2) -> f64 {
        match self {
            AnyLaw::Repulsive(l) => l.potential(target, source, disp),
            AnyLaw::Gravity(l) => l.potential(target, source, disp),
            AnyLaw::Lj(l) => l.potential(target, source, disp),
            AnyLaw::RepulsiveCutoff(l) => l.potential(target, source, disp),
        }
    }

    fn cutoff(&self) -> Option<f64> {
        match self {
            AnyLaw::Repulsive(_) | AnyLaw::Gravity(_) => None,
            AnyLaw::Lj(l) => l.cutoff(),
            AnyLaw::RepulsiveCutoff(l) => l.cutoff(),
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

fn run_cmd(opts: &HashMap<String, String>, verify: bool) -> ExitCode {
    let n: usize = get(opts, "n", 1024);
    let p: usize = get(opts, "p", 8);
    let c: usize = get(opts, "c", 2);
    let steps: usize = get(opts, "steps", 20);
    let dt: f64 = get(opts, "dt", 0.005);
    let default_cutoff = if opts.get("law").map(String::as_str) == Some("lj") {
        2.5
    } else {
        0.25
    };
    let cutoff: f64 = get(opts, "cutoff", default_cutoff);
    let method_name = opts.get("method").map(String::as_str).unwrap_or("ca");
    let law_name = opts.get("law").map(String::as_str).unwrap_or("repulsive");
    let boundary = match opts.get("boundary").map(String::as_str) {
        Some("periodic") => Boundary::Periodic,
        Some("open") => Boundary::Open,
        _ => Boundary::Reflective,
    };

    let method = match method_name {
        "ca" => Method::CaAllPairs { c },
        "ring" => Method::ParticleRing,
        "ring-symmetric" => Method::ParticleRingSymmetric,
        "allgather" => Method::NaiveAllgather,
        "force-decomp" => Method::ForceDecomposition,
        "ca-cutoff-1d" => Method::Ca1dCutoff { c },
        "ca-cutoff-2d" => Method::Ca2dCutoff { c },
        "halo-1d" => Method::SpatialHalo1d,
        "halo-2d" => Method::SpatialHalo2d,
        "midpoint-1d" => Method::Midpoint1d,
        "midpoint-2d" => Method::Midpoint2d,
        other => {
            eprintln!("unknown method '{other}'");
            return ExitCode::FAILURE;
        }
    };
    let law = match (law_name, method.needs_cutoff()) {
        ("repulsive", false) => AnyLaw::Repulsive(RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        }),
        ("repulsive", true) => AnyLaw::RepulsiveCutoff(Cutoff::new(
            RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 1e-3,
            },
            cutoff,
        )),
        ("gravity", _) => AnyLaw::Gravity(Gravity {
            g: 1e-3,
            softening: 0.02,
        }),
        ("lj", _) => AnyLaw::Lj(Cutoff::new(LennardJones::default(), cutoff)),
        (other, _) => {
            eprintln!("unknown law '{other}'");
            return ExitCode::FAILURE;
        }
    };

    // LJ needs a domain scaled to sigma (lattice spacing ~1.2 sigma) and a
    // lattice start; the other laws use the paper's unit box.
    let domain = if law_name == "lj" {
        Domain::square((n as f64).sqrt() * 1.2)
    } else {
        Domain::unit()
    };
    let cfg = SimConfig {
        law,
        integrator: SemiImplicitEuler,
        domain,
        boundary,
        dt,
        steps,
    };
    let mut initial = if law_name == "lj" {
        init::lattice(n, &cfg.domain)
    } else {
        init::uniform(n, &cfg.domain, get(opts, "seed", 42))
    };
    init::thermalize(&mut initial, get(opts, "temperature", 1e-4), 7);

    println!("{method:?} on {p} ranks: n={n}, steps={steps}, dt={dt}, law={law_name}");
    let start = std::time::Instant::now();
    let result = run_distributed(&cfg, method, p, &initial);
    println!(
        "  done in {:.2?}; kinetic energy {:.4e}; rank-0 messages {}",
        start.elapsed(),
        diagnostics::total_kinetic_energy(&result.particles),
        result.stats[0].total_messages()
    );

    if verify {
        let serial = run_serial(&cfg, &initial);
        let max_err = result
            .particles
            .iter()
            .zip(&serial)
            .map(|(a, b)| (a.pos - b.pos).norm())
            .fold(0.0, f64::max);
        println!("  max deviation vs serial: {max_err:.3e}");
        if max_err > 1e-9 {
            eprintln!("VERIFY FAILED");
            return ExitCode::FAILURE;
        }
        println!("  VERIFY OK");
    }
    ExitCode::SUCCESS
}

fn machine_by_name(opts: &HashMap<String, String>) -> Machine {
    match opts.get("machine").map(String::as_str) {
        Some("intrepid") => intrepid(),
        _ => hopper(),
    }
}

fn scale_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let machine = machine_by_name(opts);
    let n: usize = get(opts, "n", 32_768);
    println!("strong scaling of {n} particles on {} (simulated)", machine.name);
    let cs = [1usize, 2, 4, 8, 16];
    print!("{:>8}", "cores");
    for c in cs {
        print!(" {:>9}", format!("c={c}"));
    }
    println!();
    for p in [256usize, 512, 1024, 2048, 4096] {
        print!("{:>8}", p);
        for c in cs {
            if c * c <= p && p % (c * c) == 0 {
                let params = AllPairsParams::new(p, c, n);
                let rep = simulate(&machine, p, |r| params.program(r));
                let compute: f64 = rep.per_rank.iter().map(|b| b.compute).sum();
                print!(" {:>9.3}", compute / (p as f64 * rep.makespan));
            } else {
                print!(" {:>9}", "-");
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

fn autotune_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let machine = machine_by_name(opts);
    let p: usize = get(opts, "p", 1536);
    let n: usize = get(opts, "n", 12_288);
    let cutoff: f64 = get(opts, "cutoff", 0.0);
    let tune = if cutoff > 0.0 {
        autotune_cutoff_1d(&machine, p, n, cutoff)
    } else {
        autotune_all_pairs(&machine, p, n)
    };
    println!(
        "autotune on {} (p={p}, n={n}{}):",
        machine.name,
        if cutoff > 0.0 {
            format!(", rc={cutoff}l")
        } else {
            String::new()
        }
    );
    for k in &tune.candidates {
        let marker = if k.c == tune.best_c { "  <-- best" } else { "" };
        println!("  c={:<4} {:.3} ms{marker}", k.c, k.predicted_secs * 1e3);
    }
    ExitCode::SUCCESS
}
