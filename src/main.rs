//! `ca-nbody` — command-line front end of the reproduction.
//!
//! ```text
//! ca-nbody run      [n=1024] [p=8] [c=2] [steps=20] [dt=0.005] [method=ca]
//!                   [law=repulsive|gravity|lj] [cutoff=0.25] [boundary=reflective]
//!                   [--trace=out.json] [--metrics=out.json|out.prom] [--profile]
//!                   [--faults=SPEC] [fault-timeout-ms=1000] [max-retries=3]
//! ca-nbody verify   [same options]            distributed-vs-serial check
//! ca-nbody report   <trace-file>              per-phase/per-step breakdown tables
//! ca-nbody audit    [n=4096] [p=16] [steps=1] [c=N] [cutoff=0]
//!                   [--baseline=F] [--out=F.csv|F.json]
//! ca-nbody chaos    [n=192] [p=8] [c=2] [steps=1] [method=ca] [seed=42]
//!                   [fault-timeout-ms=250] [--baseline=F]
//! ca-nbody scale    [machine=hopper] [n=32768] strong-scaling table (simulated)
//! ca-nbody autotune [machine=hopper] [p=1536] [n=12288] [cutoff=0]
//! ```
//!
//! Options take `key=value`, `--key=value`, or `--key value` form.
//!
//! `--trace` records per-rank wall-clock spans and writes them in a format
//! chosen by extension: `.json` Chrome `trace_event` (open in Perfetto or
//! `chrome://tracing`), `.jsonl` JSON-lines, `.csv` the shared event
//! schema. `--metrics` writes the live metrics snapshot (per-rank
//! communication counters, message-size histograms, memory high-water
//! marks) as JSON, or in Prometheus text format for a `.prom` path.
//! `--profile` prints the per-phase breakdown after the run.
//!
//! `audit` runs real instrumented executions across replication factors
//! and compares the measured per-step communication against the paper's
//! lower bounds (Eq. 2/3) and predicted costs (Eq. 5/§IV.B), failing if
//! any constant factor exceeds the ceilings (`--baseline` overrides the
//! defaults from a JSON file).
//!
//! `--faults` injects a deterministic fault schedule (spec grammar
//! `kind:rank@step` with kinds `kill | drop | dup | delay`, comma-
//! separated) and switches `run`/`verify` to the fault-tolerant CA
//! drivers. `chaos` sweeps kill schedules over every rank and pipeline
//! step, asserting recovered forces stay bit-identical to the fault-free
//! run and gating recovery overhead against `--baseline` ceilings.
//!
//! `run`, `scale`, `audit`, and `chaos` end with a single-line JSON
//! summary on stdout for scripted consumption.

use std::collections::HashMap;
use std::process::ExitCode;

use ca_nbody::autotune::{autotune_all_pairs, autotune_cutoff_1d};
use ca_nbody::cutoff::validate_cutoff;
use ca_nbody::schedule::{count_ops, AllPairsParams};
use ca_nbody::recovery::{FaultConfig, FaultError};
use ca_nbody::{
    run_distributed, run_distributed_chaos, run_distributed_traced, run_serial, Method, ProcGrid,
    RunResult, SimConfig, Window, Window1d,
};
use nbody_comm::{FaultKind, FaultPlan};
use nbody_metrics::{
    audit, audit_csv, audit_json, audit_table, ceilings_from_json, AuditAlgorithm, AuditConfig,
    AuditInput, FactorCeilings, MetricsSnapshot,
};
use nbody_netsim::{hopper, intrepid, simulate, Machine};
use nbody_physics::{
    diagnostics, init, Boundary, Cutoff, Domain, ForceLaw, Gravity, LennardJones, Particle,
    RepulsiveInverseSquare, SemiImplicitEuler, Vec2, PARTICLE_WIRE_BYTES,
};
use nbody_trace::{ExecutionTrace, Json, ALL_PHASES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    // `key=value`, `--key=value`, and `--key value` populate the option
    // map; a `--flag` with no value is a boolean switch; anything else is
    // positional.
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let a = &args[i];
        let body = a.strip_prefix("--").unwrap_or(a);
        if let Some((k, v)) = body.split_once('=') {
            opts.insert(k.to_string(), v.to_string());
        } else if a.starts_with("--") {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") && !v.contains('=') => {
                    opts.insert(body.to_string(), v.clone());
                    i += 1;
                }
                _ => {
                    opts.insert(body.to_string(), "true".to_string());
                }
            }
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }

    match cmd.as_str() {
        "run" => run_cmd(&opts, false),
        "verify" => run_cmd(&opts, true),
        "report" => report_cmd(&positional),
        "audit" => audit_cmd(&opts),
        "chaos" => chaos_cmd(&opts),
        "scale" => scale_cmd(&opts),
        "autotune" => autotune_cmd(&opts),
        _ => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: ca-nbody <run|verify|report|audit|chaos|scale|autotune> [key=value ...] \
         [--trace=F] [--metrics=F] [--profile] [--faults=SPEC]\n\
         see `src/main.rs` header or README.md for the option list"
    );
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A force law selected at runtime; delegates to the concrete laws.
enum AnyLaw {
    Repulsive(RepulsiveInverseSquare),
    Gravity(Gravity),
    Lj(Cutoff<LennardJones>),
    RepulsiveCutoff(Cutoff<RepulsiveInverseSquare>),
}

impl ForceLaw for AnyLaw {
    fn force(&self, target: &Particle, source: &Particle, disp: Vec2) -> Vec2 {
        match self {
            AnyLaw::Repulsive(l) => l.force(target, source, disp),
            AnyLaw::Gravity(l) => l.force(target, source, disp),
            AnyLaw::Lj(l) => l.force(target, source, disp),
            AnyLaw::RepulsiveCutoff(l) => l.force(target, source, disp),
        }
    }

    fn potential(&self, target: &Particle, source: &Particle, disp: Vec2) -> f64 {
        match self {
            AnyLaw::Repulsive(l) => l.potential(target, source, disp),
            AnyLaw::Gravity(l) => l.potential(target, source, disp),
            AnyLaw::Lj(l) => l.potential(target, source, disp),
            AnyLaw::RepulsiveCutoff(l) => l.potential(target, source, disp),
        }
    }

    fn cutoff(&self) -> Option<f64> {
        match self {
            AnyLaw::Repulsive(_) | AnyLaw::Gravity(_) => None,
            AnyLaw::Lj(l) => l.cutoff(),
            AnyLaw::RepulsiveCutoff(l) => l.cutoff(),
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

fn run_cmd(opts: &HashMap<String, String>, verify: bool) -> ExitCode {
    let n: usize = get(opts, "n", 1024);
    let p: usize = get(opts, "p", 8);
    let c: usize = get(opts, "c", 2);
    let steps: usize = get(opts, "steps", 20);
    let dt: f64 = get(opts, "dt", 0.005);
    let default_cutoff = if opts.get("law").map(String::as_str) == Some("lj") {
        2.5
    } else {
        0.25
    };
    let cutoff: f64 = get(opts, "cutoff", default_cutoff);
    let method_name = opts.get("method").map(String::as_str).unwrap_or("ca");
    let law_name = opts.get("law").map(String::as_str).unwrap_or("repulsive");
    let boundary = match opts.get("boundary").map(String::as_str) {
        Some("periodic") => Boundary::Periodic,
        Some("open") => Boundary::Open,
        _ => Boundary::Reflective,
    };

    let method = match method_name {
        "ca" => Method::CaAllPairs { c },
        "ring" => Method::ParticleRing,
        "ring-symmetric" => Method::ParticleRingSymmetric,
        "allgather" => Method::NaiveAllgather,
        "force-decomp" => Method::ForceDecomposition,
        "ca-cutoff-1d" => Method::Ca1dCutoff { c },
        "ca-cutoff-2d" => Method::Ca2dCutoff { c },
        "halo-1d" => Method::SpatialHalo1d,
        "halo-2d" => Method::SpatialHalo2d,
        "midpoint-1d" => Method::Midpoint1d,
        "midpoint-2d" => Method::Midpoint2d,
        other => {
            eprintln!("unknown method '{other}'");
            return ExitCode::FAILURE;
        }
    };
    let law = match (law_name, method.needs_cutoff()) {
        ("repulsive", false) => AnyLaw::Repulsive(RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        }),
        ("repulsive", true) => AnyLaw::RepulsiveCutoff(Cutoff::new(
            RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 1e-3,
            },
            cutoff,
        )),
        ("gravity", _) => AnyLaw::Gravity(Gravity {
            g: 1e-3,
            softening: 0.02,
        }),
        ("lj", _) => AnyLaw::Lj(Cutoff::new(LennardJones::default(), cutoff)),
        (other, _) => {
            eprintln!("unknown law '{other}'");
            return ExitCode::FAILURE;
        }
    };

    // LJ needs a domain scaled to sigma (lattice spacing ~1.2 sigma) and a
    // lattice start; the other laws use the paper's unit box.
    let domain = if law_name == "lj" {
        Domain::square((n as f64).sqrt() * 1.2)
    } else {
        Domain::unit()
    };
    let cfg = SimConfig {
        law,
        integrator: SemiImplicitEuler,
        domain,
        boundary,
        dt,
        steps,
    };
    let mut initial = if law_name == "lj" {
        init::lattice(n, &cfg.domain)
    } else {
        init::uniform(n, &cfg.domain, get(opts, "seed", 42))
    };
    init::thermalize(&mut initial, get(opts, "temperature", 1e-4), 7);

    let trace_path = opts.get("trace").cloned();
    let metrics_path = opts.get("metrics").cloned();
    let profile = opts.get("profile").is_some_and(|v| v != "false");
    let tracing = trace_path.is_some() || profile || metrics_path.is_some();

    let faults = match opts.get("faults") {
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("invalid --faults spec: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    println!("{method:?} on {p} ranks: n={n}, steps={steps}, dt={dt}, law={law_name}");
    let start = std::time::Instant::now();
    let (result, trace, metrics, chaos_info) = if let Some(plan) = &faults {
        if !matches!(
            method,
            Method::CaAllPairs { .. } | Method::Ca1dCutoff { .. } | Method::Ca2dCutoff { .. }
        ) {
            eprintln!("--faults requires a CA method (ca, ca-cutoff-1d, ca-cutoff-2d)");
            return ExitCode::FAILURE;
        }
        let fc = FaultConfig {
            recv_timeout: std::time::Duration::from_millis(get(opts, "fault-timeout-ms", 1000)),
            max_retries: get(opts, "max-retries", 3),
        };
        match run_distributed_chaos(&cfg, method, p, plan, &fc, &initial) {
            Ok(res) => {
                println!(
                    "  faults [{}]: max attempts {}, recovered: {}",
                    plan.spec(),
                    res.max_attempts,
                    res.recovered
                );
                (
                    RunResult {
                        particles: res.particles,
                        stats: res.stats,
                    },
                    Some(res.trace),
                    res.metrics,
                    Some((res.max_attempts, res.recovered)),
                )
            }
            Err(e) => {
                eprintln!("fault-injected run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if tracing {
        let (result, trace, metrics) = run_distributed_traced(&cfg, method, p, &initial);
        (result, Some(trace), metrics, None)
    } else {
        (
            run_distributed(&cfg, method, p, &initial),
            None,
            MetricsSnapshot::empty(),
            None,
        )
    };
    let elapsed = start.elapsed();
    let kinetic = diagnostics::total_kinetic_energy(&result.particles);
    println!(
        "  done in {elapsed:.2?}; kinetic energy {kinetic:.4e}; rank-0 messages {}",
        result.stats[0].total_messages()
    );

    if let (Some(path), Some(trace)) = (&trace_path, &trace) {
        let body = if path.ends_with(".jsonl") {
            trace.to_jsonl()
        } else if path.ends_with(".csv") {
            trace.to_events_csv()
        } else {
            trace.to_chrome_json()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  trace written to {path} ({} spans)", trace.spans.len());
    }
    if let Some(path) = &metrics_path {
        let body = if path.ends_with(".prom") {
            metrics.to_prometheus()
        } else {
            metrics.to_json().to_string()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  metrics written to {path} ({} ranks)", metrics.ranks.len());
    }
    if profile {
        if let Some(trace) = &trace {
            print_breakdown(trace);
        }
    }

    let mut max_err = None;
    if verify {
        let serial = run_serial(&cfg, &initial);
        let err = result
            .particles
            .iter()
            .zip(&serial)
            .map(|(a, b)| (a.pos - b.pos).norm())
            .fold(0.0, f64::max);
        max_err = Some(err);
        println!("  max deviation vs serial: {err:.3e}");
        if err > 1e-9 {
            eprintln!("VERIFY FAILED");
            return ExitCode::FAILURE;
        }
        println!("  VERIFY OK");
    }

    // Machine-readable one-line summary, always the last stdout line.
    let mut summary = vec![
        ("cmd".to_string(), Json::Str(if verify { "verify" } else { "run" }.into())),
        ("method".to_string(), Json::Str(method_name.into())),
        ("law".to_string(), Json::Str(law_name.into())),
        ("n".to_string(), Json::Num(n as f64)),
        ("p".to_string(), Json::Num(p as f64)),
        ("c".to_string(), Json::Num(method.replication() as f64)),
        ("steps".to_string(), Json::Num(steps as f64)),
        ("elapsed_secs".to_string(), Json::Num(elapsed.as_secs_f64())),
        ("kinetic_energy".to_string(), Json::Num(kinetic)),
        (
            "rank0_messages".to_string(),
            Json::Num(result.stats[0].total_messages() as f64),
        ),
    ];
    if let Some(trace) = &trace {
        summary.push(("trace_spans".to_string(), Json::Num(trace.spans.len() as f64)));
        summary.push((
            "trace_wall_secs".to_string(),
            Json::Num(trace.wall_secs()),
        ));
    }
    if let Some(path) = &trace_path {
        summary.push(("trace_path".to_string(), Json::Str(path.clone())));
    }
    if let Some(path) = &metrics_path {
        summary.push(("metrics_path".to_string(), Json::Str(path.clone())));
        let total_sends: u64 = ALL_PHASES
            .iter()
            .map(|ph| metrics.sum_counter("comm_send_messages", Some(*ph)))
            .sum();
        summary.push((
            "total_send_messages".to_string(),
            Json::Num(total_sends as f64),
        ));
    }
    if let Some(err) = max_err {
        summary.push(("max_deviation".to_string(), Json::Num(err)));
        summary.push(("verify_ok".to_string(), Json::Bool(true)));
    }
    if let (Some(plan), Some((attempts, recovered))) = (&faults, chaos_info) {
        summary.push(("faults".to_string(), Json::Str(plan.spec())));
        summary.push(("max_attempts".to_string(), Json::Num(attempts as f64)));
        summary.push(("recovered".to_string(), Json::Bool(recovered)));
        for key in [
            "fault_injected_total",
            "fault_detected_total",
            "fault_retries_total",
            "recovery_bytes_total",
        ] {
            summary.push((
                key.to_string(),
                Json::Num(metrics.sum_counter(key, None) as f64),
            ));
        }
    }
    println!("{}", Json::Obj(summary));
    ExitCode::SUCCESS
}

/// Print the paper-style per-phase table and the per-step driver-section
/// table of a trace (`--profile` and the `report` subcommand).
fn print_breakdown(trace: &ExecutionTrace) {
    let b = trace.phase_breakdown();
    println!(
        "per-phase wall-clock across {} ranks (seconds per rank):",
        b.ranks
    );
    println!(
        "  {:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "phase", "mean", "p50", "p95", "max", "blocked", "share"
    );
    for (phase, d) in &b.phases {
        if d.max == 0.0 {
            continue;
        }
        let blocked = b
            .blocked
            .iter()
            .find(|(p, _)| p == phase)
            .map_or(0.0, |(_, s)| *s);
        println!(
            "  {:<10} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>6.1}%",
            phase.label(),
            d.mean,
            d.p50,
            d.p95,
            d.max,
            blocked,
            100.0 * d.mean / b.wall_secs.max(f64::MIN_POSITIVE),
        );
    }
    println!(
        "  phase sum {:.6} s of {:.6} s wall ({:.1}%)",
        b.phase_sum_secs(),
        b.wall_secs,
        100.0 * b.phase_sum_secs() / b.wall_secs.max(f64::MIN_POSITIVE),
    );

    let reports = trace.step_reports();
    if reports.is_empty() {
        return;
    }
    println!("per-step driver sections (seconds, mean / max across ranks):");
    for r in &reports {
        print!("  step {:>3}:", r.step);
        for (name, d) in &r.parts {
            print!(" {name} {:.6}/{:.6}", d.mean, d.max);
        }
        println!();
    }
}

fn report_cmd(positional: &[String]) -> ExitCode {
    let Some(path) = positional.first() else {
        eprintln!("usage: ca-nbody report <trace.json|trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match ExecutionTrace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{path}: {} spans over {} ranks, {:.6} s wall",
        trace.spans.len(),
        trace.ranks,
        trace.wall_secs()
    );
    print_breakdown(&trace);
    ExitCode::SUCCESS
}

/// Run real instrumented executions across replication factors and audit
/// the measured communication against the paper's bounds and predictions.
fn audit_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let n: usize = get(opts, "n", 4096);
    let p: usize = get(opts, "p", 16);
    let steps: usize = get(opts, "steps", 1);
    let seed: u64 = get(opts, "seed", 42);
    let cutoff_frac: f64 = get(opts, "cutoff", 0.0);
    if n == 0 || p == 0 || steps == 0 {
        eprintln!("audit: n, p, and steps must be positive");
        return ExitCode::FAILURE;
    }

    let mut ceilings = FactorCeilings::default();
    if let Some(path) = opts.get("baseline") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        ceilings = match ceilings_from_json(&doc) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
    }

    let domain = Domain::unit();
    // A c is auditable if its processor grid is valid (and, with a cutoff,
    // the replication fits inside the interaction window).
    let usable = |c: usize| -> Result<(), String> {
        if cutoff_frac > 0.0 {
            let grid = ProcGrid::new(p, c).map_err(|e| e.to_string())?;
            let window = Window1d::from_cutoff(&domain, grid.teams(), cutoff_frac);
            validate_cutoff(&window, grid.teams(), c).map_err(|e| e.to_string())
        } else {
            ProcGrid::new_all_pairs(p, c)
                .map(|_| ())
                .map_err(|e| e.to_string())
        }
    };
    let cs: Vec<usize> = match opts.get("c") {
        Some(v) => {
            let Ok(c) = v.parse::<usize>() else {
                eprintln!("audit: invalid replication factor '{v}'");
                return ExitCode::FAILURE;
            };
            if let Err(e) = usable(c) {
                eprintln!("audit: c={c} is not usable with p={p}: {e}");
                return ExitCode::FAILURE;
            }
            vec![c]
        }
        // Default sweep: every c = 1..√p the grid supports.
        None => ProcGrid::valid_all_pairs_factors(p)
            .into_iter()
            .filter(|&c| usable(c).is_ok())
            .collect(),
    };
    if cs.is_empty() {
        eprintln!("audit: no usable replication factors for p={p}");
        return ExitCode::FAILURE;
    }

    let (algorithm, algo_name) = if cutoff_frac > 0.0 {
        (
            AuditAlgorithm::Cutoff1d {
                rc_over_l: cutoff_frac,
            },
            "cutoff-1d",
        )
    } else {
        (AuditAlgorithm::AllPairs, "all-pairs")
    };
    println!(
        "optimality audit: {algo_name} n={n} p={p} steps={steps}, c in {cs:?} \
         (ceilings: latency {:.1}, bandwidth {:.1})",
        ceilings.latency, ceilings.bandwidth
    );

    let mut reports = Vec::new();
    for &c in &cs {
        let base_law = RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        };
        let (law, method) = if cutoff_frac > 0.0 {
            (
                AnyLaw::RepulsiveCutoff(Cutoff::new(base_law, cutoff_frac)),
                Method::Ca1dCutoff { c },
            )
        } else {
            (AnyLaw::Repulsive(base_law), Method::CaAllPairs { c })
        };
        let cfg = SimConfig {
            law,
            integrator: SemiImplicitEuler,
            domain,
            boundary: Boundary::Reflective,
            dt: 0.001,
            steps,
        };
        let initial = init::uniform(n, &cfg.domain, seed);
        let (_, _, metrics) = run_distributed_traced(&cfg, method, p, &initial);
        let input = AuditInput::from_snapshot(&metrics);
        let acfg = AuditConfig {
            n: n as u64,
            p: p as u64,
            c: c as u64,
            steps: steps as u64,
            algorithm,
            ceilings,
        };
        reports.push(audit(&acfg, &input));
    }
    print!("{}", audit_table(&reports));

    if let Some(path) = opts.get("out") {
        let body = if path.ends_with(".csv") {
            audit_csv(&reports)
        } else {
            audit_json(&reports).to_string()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write audit report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("audit report written to {path}");
    }

    let rows = reports
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("c".to_string(), Json::Num(r.config.c as f64)),
                ("s_factor".to_string(), Json::Num(r.s_factor)),
                ("w_factor".to_string(), Json::Num(r.w_factor)),
                (
                    "shift_words".to_string(),
                    Json::Num(r.shift_words() as f64),
                ),
                ("pass".to_string(), Json::Bool(r.pass)),
            ])
        })
        .collect();
    let summary = Json::Obj(vec![
        ("cmd".to_string(), Json::Str("audit".into())),
        ("algorithm".to_string(), Json::Str(algo_name.into())),
        ("n".to_string(), Json::Num(n as f64)),
        ("p".to_string(), Json::Num(p as f64)),
        ("steps".to_string(), Json::Num(steps as f64)),
        ("rows".to_string(), Json::Arr(rows)),
        (
            "pass".to_string(),
            Json::Bool(reports.iter().all(|r| r.pass)),
        ),
    ]);
    println!("{summary}");
    if reports.iter().all(|r| r.pass) {
        ExitCode::SUCCESS
    } else {
        eprintln!("AUDIT FAILED: a constant factor exceeded its ceiling");
        ExitCode::FAILURE
    }
}

/// `chaos`: sweep deterministic fault schedules over a small execution.
///
/// Three passes, all against the same fault-free baseline trajectory:
/// benign seeded schedules (delays + duplicates) that must not even
/// trigger recovery; a kill of every rank at every pipeline step, which
/// must recover **bit-identically** whenever `c >= 2`; and a `c = 1` kill
/// that must fail with the documented `Unrecoverable` error instead of
/// deadlocking. Recovery overhead (worst attempt count, resync bytes per
/// kill relative to one replicated block) is gated against ceilings, by
/// default or from `--baseline=<json>`.
fn chaos_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let n: usize = get(opts, "n", 192);
    let p: usize = get(opts, "p", 8);
    let c: usize = get(opts, "c", 2);
    let steps: usize = get(opts, "steps", 1);
    let seed: u64 = get(opts, "seed", 42);
    let timeout_ms: u64 = get(opts, "fault-timeout-ms", 250);
    let method_name = opts.get("method").map(String::as_str).unwrap_or("ca");
    if c < 2 {
        eprintln!("chaos: the kill sweep needs a surviving replica; pass c >= 2");
        return ExitCode::FAILURE;
    }

    let mut attempts_ceiling = 2.0f64;
    let mut bytes_factor_ceiling = 2.5f64;
    if let Some(path) = opts.get("baseline") {
        let parsed = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()));
        let doc = match parsed {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite() && *v > 0.0)
                .ok_or_else(|| format!("missing or invalid {key:?}"))
        };
        match (field("max_attempts_ceiling"), field("recovery_bytes_factor_ceiling")) {
            (Ok(a), Ok(b)) => {
                attempts_ceiling = a;
                bytes_factor_ceiling = b;
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("cannot parse baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let domain = Domain::unit();
    let base_law = RepulsiveInverseSquare {
        strength: 1e-3,
        softening: 1e-3,
    };
    let (method, law, pipeline_steps) = match method_name {
        "ca" => {
            let grid = match ProcGrid::new_all_pairs(p, c) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("chaos: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (
                Method::CaAllPairs { c },
                AnyLaw::Repulsive(base_law),
                grid.all_pairs_steps(),
            )
        }
        "ca-cutoff-1d" => {
            let grid = match ProcGrid::new(p, c) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("chaos: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cutoff: f64 = get(opts, "cutoff", 0.25);
            let window = Window1d::from_cutoff(&domain, grid.teams(), cutoff);
            if let Err(e) = validate_cutoff(&window, grid.teams(), c) {
                eprintln!("chaos: {e}");
                return ExitCode::FAILURE;
            }
            (
                Method::Ca1dCutoff { c },
                AnyLaw::RepulsiveCutoff(Cutoff::new(base_law, cutoff)),
                ca_nbody::cutoff::row_steps(window.len(), c, 0),
            )
        }
        other => {
            eprintln!("chaos: unsupported method '{other}' (use ca or ca-cutoff-1d)");
            return ExitCode::FAILURE;
        }
    };

    let cfg = SimConfig {
        law,
        integrator: SemiImplicitEuler,
        domain,
        boundary: Boundary::Reflective,
        dt: 0.005,
        steps,
    };
    let initial = init::uniform(n, &cfg.domain, seed);
    let fc = FaultConfig {
        recv_timeout: std::time::Duration::from_millis(timeout_ms),
        max_retries: 3,
    };
    println!(
        "chaos sweep: {method_name} n={n} p={p} c={c} steps={steps}, \
         kill schedule 0..={pipeline_steps} x {p} ranks, timeout {timeout_ms} ms"
    );
    let start = std::time::Instant::now();
    let want = run_distributed(&cfg, method, p, &initial).particles;

    let mut failures: Vec<String> = Vec::new();
    let mut runs = 0usize;

    // Benign schedules: delays and duplicates must be absorbed without
    // even triggering recovery.
    for salt in 0..2u64 {
        let plan = FaultPlan::seeded(
            seed.wrapping_add(salt),
            p,
            pipeline_steps,
            4,
            &[FaultKind::Delay, FaultKind::Duplicate],
        );
        runs += 1;
        match run_distributed_chaos(&cfg, method, p, &plan, &fc, &initial) {
            Ok(res) => {
                if res.particles != want {
                    failures.push(format!("benign [{}]: forces diverged", plan.spec()));
                }
                if res.recovered {
                    failures.push(format!("benign [{}]: spurious recovery", plan.spec()));
                }
            }
            Err(e) => failures.push(format!("benign [{}]: {e}", plan.spec())),
        }
    }

    // The kill sweep: every rank, every pipeline step (0 = skew).
    let nominal_block_bytes = ((n * c / p) * std::mem::size_of::<Particle>()) as f64;
    let mut kills_fired = 0usize;
    let mut worst_attempts = 1usize;
    let mut worst_bytes_factor = 0.0f64;
    for step in 0..=pipeline_steps {
        for rank in 0..p {
            let plan = FaultPlan::kill(rank, step);
            runs += 1;
            match run_distributed_chaos(&cfg, method, p, &plan, &fc, &initial) {
                Ok(res) => {
                    if res.particles != want {
                        failures.push(format!(
                            "kill:{rank}@{step}: forces diverged from fault-free run"
                        ));
                    }
                    // In the cutoff pipeline short rows never reach high
                    // steps, so some scheduled kills legitimately don't fire.
                    if res.metrics.sum_counter("fault_injected_kill", None) > 0 {
                        kills_fired += 1;
                        if !res.recovered {
                            failures.push(format!("kill:{rank}@{step}: fired but not recovered"));
                        }
                        worst_attempts = worst_attempts.max(res.max_attempts);
                        let bytes = res.metrics.sum_counter("recovery_bytes_total", None) as f64;
                        worst_bytes_factor = worst_bytes_factor.max(bytes / nominal_block_bytes);
                    }
                }
                Err(e) => failures.push(format!("kill:{rank}@{step}: {e}")),
            }
        }
    }
    if kills_fired == 0 {
        failures.push("no scheduled kill ever fired".to_string());
    }

    // Without replication the same kill must end in a clean, agreed
    // failure — not a hang and not a bogus result.
    let m1 = match method {
        Method::CaAllPairs { .. } => Method::CaAllPairs { c: 1 },
        Method::Ca1dCutoff { .. } => Method::Ca1dCutoff { c: 1 },
        _ => unreachable!("chaos supports only CA methods"),
    };
    runs += 1;
    match run_distributed_chaos(&cfg, m1, p, &FaultPlan::kill(p / 2, 1), &fc, &initial) {
        Err(FaultError::Unrecoverable { .. }) => {}
        Ok(_) => failures.push("c=1 kill unexpectedly produced a result".to_string()),
        Err(e) => failures.push(format!("c=1 kill: wrong terminal error: {e}")),
    }

    let elapsed = start.elapsed();
    let attempts_ok = (worst_attempts as f64) <= attempts_ceiling;
    let bytes_ok = worst_bytes_factor <= bytes_factor_ceiling;
    if !attempts_ok {
        failures.push(format!(
            "worst attempt count {worst_attempts} exceeds ceiling {attempts_ceiling}"
        ));
    }
    if !bytes_ok {
        failures.push(format!(
            "recovery bytes factor {worst_bytes_factor:.2} exceeds ceiling {bytes_factor_ceiling}"
        ));
    }
    println!(
        "  {runs} runs in {elapsed:.2?}: {kills_fired} kills fired, worst attempts \
         {worst_attempts} (ceiling {attempts_ceiling}), resync bytes/kill \
         {worst_bytes_factor:.2}x block (ceiling {bytes_factor_ceiling})"
    );
    for f in &failures {
        eprintln!("  CHAOS FAILURE: {f}");
    }

    let pass = failures.is_empty();
    let summary = Json::Obj(vec![
        ("cmd".to_string(), Json::Str("chaos".into())),
        ("method".to_string(), Json::Str(method_name.into())),
        ("n".to_string(), Json::Num(n as f64)),
        ("p".to_string(), Json::Num(p as f64)),
        ("c".to_string(), Json::Num(c as f64)),
        ("steps".to_string(), Json::Num(steps as f64)),
        ("runs".to_string(), Json::Num(runs as f64)),
        ("kills_fired".to_string(), Json::Num(kills_fired as f64)),
        ("max_attempts".to_string(), Json::Num(worst_attempts as f64)),
        (
            "recovery_bytes_factor".to_string(),
            Json::Num(worst_bytes_factor),
        ),
        ("elapsed_secs".to_string(), Json::Num(elapsed.as_secs_f64())),
        ("failures".to_string(), Json::Num(failures.len() as f64)),
        ("pass".to_string(), Json::Bool(pass)),
    ]);
    println!("{summary}");
    if pass {
        ExitCode::SUCCESS
    } else {
        eprintln!("CHAOS FAILED: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

fn machine_by_name(opts: &HashMap<String, String>) -> Machine {
    match opts.get("machine").map(String::as_str) {
        Some("intrepid") => intrepid(),
        _ => hopper(),
    }
}

fn scale_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let machine = machine_by_name(opts);
    let n: usize = get(opts, "n", 32_768);
    println!("strong scaling of {n} particles on {} (simulated)", machine.name);
    let cs = [1usize, 2, 4, 8, 16];
    print!("{:>8}", "cores");
    for c in cs {
        print!(" {:>9}", format!("c={c}"));
    }
    println!();
    let mut rows = Vec::new();
    for p in [256usize, 512, 1024, 2048, 4096] {
        print!("{:>8}", p);
        let mut effs = Vec::new();
        let mut msgs = Vec::new();
        let mut words = Vec::new();
        for c in cs {
            if c * c <= p && p % (c * c) == 0 {
                let params = AllPairsParams::new(p, c, n);
                let rep = simulate(&machine, p, |r| params.program(r));
                let compute: f64 = rep.per_rank.iter().map(|b| b.compute).sum();
                let eff = compute / (p as f64 * rep.makespan);
                print!(" {:>9.3}", eff);
                effs.push(Json::Num(eff));
                // Per-rank traffic totals (max over ranks): messages count
                // point-to-point sends plus collectives, words count
                // particles at the paper's 52-byte wire size.
                let (mut max_msgs, mut max_words) = (0u64, 0u64);
                for r in 0..p {
                    let k = count_ops(params.program(r));
                    let m = k.sends.iter().sum::<u64>() + k.collectives.iter().sum::<u64>();
                    let w = k.send_bytes.iter().sum::<u64>() / PARTICLE_WIRE_BYTES as u64;
                    max_msgs = max_msgs.max(m);
                    max_words = max_words.max(w);
                }
                msgs.push(Json::Num(max_msgs as f64));
                words.push(Json::Num(max_words as f64));
            } else {
                print!(" {:>9}", "-");
                effs.push(Json::Null);
                msgs.push(Json::Null);
                words.push(Json::Null);
            }
        }
        println!();
        rows.push(Json::Obj(vec![
            ("p".to_string(), Json::Num(p as f64)),
            ("efficiency".to_string(), Json::Arr(effs)),
            ("messages_per_rank".to_string(), Json::Arr(msgs)),
            ("words_per_rank".to_string(), Json::Arr(words)),
        ]));
    }
    let summary = Json::Obj(vec![
        ("cmd".to_string(), Json::Str("scale".into())),
        ("machine".to_string(), Json::Str(machine.name.to_string())),
        ("n".to_string(), Json::Num(n as f64)),
        (
            "c_values".to_string(),
            Json::Arr(cs.iter().map(|&c| Json::Num(c as f64)).collect()),
        ),
        ("rows".to_string(), Json::Arr(rows)),
    ]);
    println!("{summary}");
    ExitCode::SUCCESS
}

fn autotune_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let machine = machine_by_name(opts);
    let p: usize = get(opts, "p", 1536);
    let n: usize = get(opts, "n", 12_288);
    let cutoff: f64 = get(opts, "cutoff", 0.0);
    let tune = if cutoff > 0.0 {
        autotune_cutoff_1d(&machine, p, n, cutoff)
    } else {
        autotune_all_pairs(&machine, p, n)
    };
    println!(
        "autotune on {} (p={p}, n={n}{}):",
        machine.name,
        if cutoff > 0.0 {
            format!(", rc={cutoff}l")
        } else {
            String::new()
        }
    );
    for k in &tune.candidates {
        let marker = if k.c == tune.best_c { "  <-- best" } else { "" };
        println!("  c={:<4} {:.3} ms{marker}", k.c, k.predicted_secs * 1e3);
    }
    ExitCode::SUCCESS
}
