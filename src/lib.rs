//! Reproduction workspace root; see README.
