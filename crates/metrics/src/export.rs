//! Snapshot serialization: JSON and Prometheus text exposition.
//!
//! Both formats round-trip losslessly: `to_json` → [`Json::parse`] →
//! `from_json` and `to_prometheus` → `parse_prometheus` reconstruct the
//! original [`MetricsSnapshot`] exactly. The Prometheus exposition follows
//! the text format conventions (one `# TYPE` line per metric family,
//! `rank`/`phase` labels, histograms as cumulative `_bucket` series plus
//! `_sum`/`_count`), so the files can also be scraped by stock tooling.

use nbody_trace::{Json, Phase};

use crate::registry::{Histogram, RankMetrics, Sample, BUCKET_BOUNDS, NUM_BUCKETS};
use crate::snapshot::MetricsSnapshot;

fn phase_to_json(phase: Option<Phase>) -> Json {
    match phase {
        Some(p) => Json::Str(p.label().to_string()),
        None => Json::Null,
    }
}

fn phase_from_json(v: Option<&Json>) -> Result<Option<Phase>, String> {
    match v {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Phase::from_label(s)
            .map(Some)
            .ok_or_else(|| format!("unknown phase label {s:?}")),
        Some(other) => Err(format!("phase must be a string or null, got {other}")),
    }
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

impl MetricsSnapshot {
    /// Serialize to a JSON document.
    pub fn to_json(&self) -> Json {
        let ranks = self
            .ranks
            .iter()
            .map(|r| {
                let scalar = |s: &Sample<u64>| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(s.name.clone())),
                        ("phase".into(), phase_to_json(s.phase)),
                        ("value".into(), Json::Num(s.value as f64)),
                    ])
                };
                let hist = |s: &Sample<Histogram>| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(s.name.clone())),
                        ("phase".into(), phase_to_json(s.phase)),
                        (
                            "counts".into(),
                            Json::Arr(
                                s.value
                                    .counts
                                    .iter()
                                    .map(|&c| Json::Num(c as f64))
                                    .collect(),
                            ),
                        ),
                        ("sum".into(), Json::Num(s.value.sum as f64)),
                    ])
                };
                Json::Obj(vec![
                    ("rank".into(), Json::Num(r.rank as f64)),
                    (
                        "counters".into(),
                        Json::Arr(r.counters.iter().map(scalar).collect()),
                    ),
                    (
                        "gauges".into(),
                        Json::Arr(r.gauges.iter().map(scalar).collect()),
                    ),
                    (
                        "histograms".into(),
                        Json::Arr(r.histograms.iter().map(hist).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![("ranks".into(), Json::Arr(ranks))])
    }

    /// Reconstruct a snapshot from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(doc: &Json) -> Result<MetricsSnapshot, String> {
        let ranks = doc
            .get("ranks")
            .and_then(Json::as_array)
            .ok_or("missing \"ranks\" array")?;
        let mut out = Vec::with_capacity(ranks.len());
        for entry in ranks {
            let mut rm = RankMetrics {
                rank: u64_field(entry, "rank")? as u32,
                ..RankMetrics::default()
            };
            for (key, dst) in [("counters", &mut rm.counters), ("gauges", &mut rm.gauges)] {
                let arr = entry
                    .get(key)
                    .and_then(Json::as_array)
                    .ok_or_else(|| format!("missing {key:?} array"))?;
                for s in arr {
                    dst.push(Sample {
                        name: s
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or("sample missing \"name\"")?
                            .to_string(),
                        phase: phase_from_json(s.get("phase"))?,
                        value: u64_field(s, "value")?,
                    });
                }
            }
            let hists = entry
                .get("histograms")
                .and_then(Json::as_array)
                .ok_or("missing \"histograms\" array")?;
            for s in hists {
                let counts_json = s
                    .get("counts")
                    .and_then(Json::as_array)
                    .ok_or("histogram missing \"counts\"")?;
                if counts_json.len() != NUM_BUCKETS {
                    return Err(format!(
                        "histogram has {} buckets, expected {NUM_BUCKETS}",
                        counts_json.len()
                    ));
                }
                let mut value = Histogram {
                    sum: u64_field(s, "sum")?,
                    ..Histogram::default()
                };
                for (i, c) in counts_json.iter().enumerate() {
                    value.counts[i] =
                        c.as_f64().ok_or("non-numeric bucket count")? as u64;
                }
                rm.histograms.push(Sample {
                    name: s
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("histogram missing \"name\"")?
                        .to_string(),
                    phase: phase_from_json(s.get("phase"))?,
                    value,
                });
            }
            rm.normalize();
            out.push(rm);
        }
        Ok(MetricsSnapshot { ranks: out })
    }

    /// Serialize to the Prometheus text exposition format. The synthetic
    /// `nbody_ranks` gauge records the rank count so sparse snapshots
    /// (ranks with nothing to report) survive the round-trip.
    pub fn to_prometheus(&self) -> String {
        use std::collections::BTreeMap;
        let mut kinds: BTreeMap<&str, &str> = BTreeMap::new();
        for r in &self.ranks {
            for s in &r.counters {
                kinds.insert(&s.name, "counter");
            }
            for s in &r.gauges {
                kinds.insert(&s.name, "gauge");
            }
            for s in &r.histograms {
                kinds.insert(&s.name, "histogram");
            }
        }
        let labels = |rank: u32, phase: Option<Phase>, extra: Option<(&str, String)>| {
            let mut parts = vec![format!("rank=\"{rank}\"")];
            if let Some(p) = phase {
                parts.push(format!("phase=\"{}\"", p.label()));
            }
            if let Some((k, v)) = extra {
                parts.push(format!("{k}=\"{v}\""));
            }
            format!("{{{}}}", parts.join(","))
        };
        let mut out = String::new();
        out.push_str("# TYPE nbody_ranks gauge\n");
        out.push_str(&format!("nbody_ranks {}\n", self.ranks.len()));
        for (name, kind) in &kinds {
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for r in &self.ranks {
                match *kind {
                    "counter" => {
                        for s in r.counters.iter().filter(|s| s.name == *name) {
                            out.push_str(&format!(
                                "{name}{} {}\n",
                                labels(r.rank, s.phase, None),
                                s.value
                            ));
                        }
                    }
                    "gauge" => {
                        for s in r.gauges.iter().filter(|s| s.name == *name) {
                            out.push_str(&format!(
                                "{name}{} {}\n",
                                labels(r.rank, s.phase, None),
                                s.value
                            ));
                        }
                    }
                    _ => {
                        for s in r.histograms.iter().filter(|s| s.name == *name) {
                            let mut cum = 0u64;
                            for (i, &c) in s.value.counts.iter().enumerate() {
                                cum += c;
                                let le = if i < BUCKET_BOUNDS.len() {
                                    BUCKET_BOUNDS[i].to_string()
                                } else {
                                    "+Inf".to_string()
                                };
                                out.push_str(&format!(
                                    "{name}_bucket{} {cum}\n",
                                    labels(r.rank, s.phase, Some(("le", le)))
                                ));
                            }
                            out.push_str(&format!(
                                "{name}_sum{} {}\n",
                                labels(r.rank, s.phase, None),
                                s.value.sum
                            ));
                            out.push_str(&format!(
                                "{name}_count{} {}\n",
                                labels(r.rank, s.phase, None),
                                s.value.count()
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    /// Reconstruct a snapshot from [`MetricsSnapshot::to_prometheus`]
    /// output.
    pub fn parse_prometheus(text: &str) -> Result<MetricsSnapshot, String> {
        use std::collections::BTreeMap;
        let mut kinds: BTreeMap<String, String> = BTreeMap::new();
        let mut declared_ranks: Option<usize> = None;
        // (rank, name, phase) -> cumulative bucket counts / sum.
        let mut ranks: Vec<RankMetrics> = Vec::new();
        let mut hist_cum: BTreeMap<(u32, String, usize), ([u64; NUM_BUCKETS], u64)> =
            BTreeMap::new();

        let ensure_rank = |ranks: &mut Vec<RankMetrics>, rank: u32| {
            while ranks.len() <= rank as usize {
                let r = ranks.len() as u32;
                ranks.push(RankMetrics {
                    rank: r,
                    ..RankMetrics::default()
                });
            }
        };

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or_else(|| err("bare # TYPE"))?;
                let kind = it.next().ok_or_else(|| err("# TYPE without a kind"))?;
                kinds.insert(name.to_string(), kind.to_string());
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            // Sample line: name[{labels}] value
            let (head, value_str) = match line.find('}') {
                Some(close) => (&line[..=close], line[close + 1..].trim()),
                None => {
                    let (h, v) = line
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| err("sample line without a value"))?;
                    (h, v.trim())
                }
            };
            let value = value_str
                .parse::<f64>()
                .map_err(|_| err("non-numeric sample value"))? as u64;
            let (name, mut rank, mut phase, mut le) = match head.split_once('{') {
                Some((n, labels)) => {
                    let labels = labels.trim_end_matches('}');
                    let (mut rank, mut phase, mut le) = (None, None, None);
                    for pair in labels.split(',').filter(|p| !p.is_empty()) {
                        let (k, v) = pair
                            .split_once('=')
                            .ok_or_else(|| err("malformed label"))?;
                        let v = v.trim_matches('"');
                        match k.trim() {
                            "rank" => {
                                rank = Some(v.parse::<u32>().map_err(|_| {
                                    err("non-numeric rank label")
                                })?)
                            }
                            "phase" => {
                                phase = Some(Phase::from_label(v).ok_or_else(|| {
                                    err(&format!("unknown phase label {v:?}"))
                                })?)
                            }
                            "le" => le = Some(v.to_string()),
                            _ => {} // foreign labels are ignored
                        }
                    }
                    (n.to_string(), rank, phase, le)
                }
                None => (head.to_string(), None, None, None),
            };
            if name == "nbody_ranks" {
                declared_ranks = Some(value as usize);
                continue;
            }
            let rank = rank.take().ok_or_else(|| err("sample without a rank label"))?;
            ensure_rank(&mut ranks, rank);
            let phase = phase.take();

            // Histogram component?
            let base_of = |suffix: &str| -> Option<String> {
                name.strip_suffix(suffix)
                    .filter(|b| kinds.get(*b).map(String::as_str) == Some("histogram"))
                    .map(str::to_string)
            };
            if let Some(base) = base_of("_bucket") {
                let le = le.take().ok_or_else(|| err("bucket without le label"))?;
                let idx = if le == "+Inf" {
                    NUM_BUCKETS - 1
                } else {
                    let bound = le
                        .parse::<u64>()
                        .map_err(|_| err("non-numeric le label"))?;
                    BUCKET_BOUNDS
                        .iter()
                        .position(|&b| b == bound)
                        .ok_or_else(|| err(&format!("unknown bucket bound {bound}")))?
                };
                let key = (rank, base, phase.map_or(usize::MAX, |p| p.index()));
                hist_cum.entry(key).or_default().0[idx] = value;
            } else if let Some(base) = base_of("_sum") {
                let key = (rank, base, phase.map_or(usize::MAX, |p| p.index()));
                hist_cum.entry(key).or_default().1 = value;
            } else if base_of("_count").is_some() {
                // Redundant with the +Inf bucket; validated implicitly.
            } else {
                let sample = Sample {
                    name: name.clone(),
                    phase,
                    value,
                };
                match kinds.get(&name).map(String::as_str) {
                    Some("counter") => ranks[rank as usize].counters.push(sample),
                    Some("gauge") => ranks[rank as usize].gauges.push(sample),
                    Some(other) => {
                        return Err(err(&format!("unexpected sample of {other} {name}")))
                    }
                    None => return Err(err(&format!("sample {name} has no # TYPE"))),
                }
            }
        }

        for ((rank, name, phase_idx), (cum, sum)) in hist_cum {
            let mut value = Histogram {
                sum,
                ..Histogram::default()
            };
            let mut prev = 0;
            for (i, &c) in cum.iter().enumerate() {
                if c < prev {
                    return Err(format!(
                        "histogram {name} rank {rank}: non-monotone buckets"
                    ));
                }
                value.counts[i] = c - prev;
                prev = c;
            }
            let phase = if phase_idx == usize::MAX {
                None
            } else {
                Some(nbody_trace::ALL_PHASES[phase_idx])
            };
            ranks[rank as usize].histograms.push(Sample { name, phase, value });
        }

        if let Some(n) = declared_ranks {
            while ranks.len() < n {
                let r = ranks.len() as u32;
                ranks.push(RankMetrics {
                    rank: r,
                    ..RankMetrics::default()
                });
            }
        }
        for r in &mut ranks {
            r.normalize();
        }
        Ok(MetricsSnapshot { ranks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> MetricsSnapshot {
        let mut h = Histogram::default();
        h.record(52);
        h.record(5200);
        h.record(5200);
        let mut r0 = RankMetrics {
            rank: 0,
            counters: vec![
                Sample {
                    name: "comm_send_messages".into(),
                    phase: Some(Phase::Shift),
                    value: 3,
                },
                Sample {
                    name: "comm_send_bytes".into(),
                    phase: Some(Phase::Shift),
                    value: 10452,
                },
            ],
            gauges: vec![Sample {
                name: "mem_particles_hwm".into(),
                phase: None,
                value: 2048,
            }],
            histograms: vec![Sample {
                name: "comm_message_size_bytes".into(),
                phase: Some(Phase::Shift),
                value: h,
            }],
        };
        r0.normalize();
        // Rank 1 recorded nothing: exercises sparse round-tripping.
        let r1 = RankMetrics {
            rank: 1,
            ..RankMetrics::default()
        };
        MetricsSnapshot { ranks: vec![r0, r1] }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = example();
        let text = snap.to_json().to_string();
        let back = MetricsSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_round_trip_is_exact() {
        let snap = example();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE comm_send_messages counter"));
        assert!(text.contains("comm_message_size_bytes_bucket"));
        assert!(text.contains("le=\"+Inf\""));
        let back = MetricsSnapshot::parse_prometheus(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MetricsSnapshot::parse_prometheus("what even is this").is_err());
        assert!(MetricsSnapshot::from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(MetricsSnapshot::parse_prometheus("mystery{rank=\"0\"} 3").is_err());
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let snap = example();
        let text = snap.to_prometheus();
        // The +Inf bucket must equal the count series.
        let inf: u64 = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        let count: u64 = text
            .lines()
            .find(|l| l.starts_with("comm_message_size_bytes_count"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert_eq!(inf, count);
        assert_eq!(inf, 3);
    }
}
