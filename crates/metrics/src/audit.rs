//! The communication-optimality audit.
//!
//! Connects what an execution *measured* (per-rank, per-phase message and
//! word counts plus the memory high-water mark `M`) to what the paper
//! *proves* and *predicts*:
//!
//! * the lower bounds of Eq. 2 (all-pairs) / Eq. 3 (cutoff), evaluated at
//!   the **measured** `M` rather than the nominal `cn/p`;
//! * the algorithm costs of Eq. 5 (CA all-pairs) / §IV.B (CA 1D cutoff).
//!
//! The audit reports the resulting constant factors — measured over bound
//! — and passes or fails them against configurable ceilings, turning the
//! paper's headline claim ("communication-optimal up to constant
//! factors") into a regression check.
//!
//! Accounting conventions: a rank's latency cost `S` counts every message
//! it *sent* (point-to-point sends plus the constituent messages of tree
//! collectives); its bandwidth cost `W` counts every word (particle) it
//! sent, with collective payloads attributed per participant. Setup and
//! teardown traffic ([`Phase::Other`]: initial scatter, final gather,
//! verification) is reported but excluded from the audited totals, which
//! cover the algorithm phases the paper analyzes. Totals are divided by
//! the step count, then maximized over ranks — a per-step critical-path
//! proxy matching the per-timestep bounds.

use nbody_model::{
    k_cutoff_1d, memory_per_proc, s_cutoff, s_direct, w_cutoff, w_direct,
    ca_all_pairs, ca_cutoff_1d, CommCost,
};
use nbody_trace::{Json, Phase, ALL_PHASES, PHASE_COUNT};

use crate::snapshot::MetricsSnapshot;

/// Which algorithm's cost model and bound family to audit against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AuditAlgorithm {
    /// CA all-pairs (Algorithm 1): Eq. 5 vs. Eq. 2.
    AllPairs,
    /// CA 1D cutoff (Algorithm 2): §IV.B vs. Eq. 3.
    Cutoff1d {
        /// Cutoff radius as a fraction of the domain length (`r_c / l`).
        rc_over_l: f64,
    },
}

impl AuditAlgorithm {
    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AuditAlgorithm::AllPairs => "all-pairs",
            AuditAlgorithm::Cutoff1d { .. } => "cutoff-1d",
        }
    }
}

/// Maximum allowed measured/bound constant factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorCeilings {
    /// Ceiling on the latency (message-count) factor.
    pub latency: f64,
    /// Ceiling on the bandwidth (word-count) factor.
    pub bandwidth: f64,
}

impl Default for FactorCeilings {
    /// Defaults with headroom over the measured constants of this
    /// implementation (≈16 latency, ≈8 bandwidth at `c = √p`): loose
    /// enough to tolerate schedule jitter, tight enough to catch a lost
    /// factor of `c`.
    fn default() -> Self {
        FactorCeilings {
            latency: 32.0,
            bandwidth: 12.0,
        }
    }
}

/// Parse ceilings from the committed baseline JSON
/// (`bench_results/audit_baseline.json`):
/// `{"latency_factor_ceiling": 32.0, "bandwidth_factor_ceiling": 12.0}`.
pub fn ceilings_from_json(doc: &Json) -> Result<FactorCeilings, String> {
    let field = |key: &str| {
        doc.get(key)
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("missing or invalid {key:?}"))
    };
    Ok(FactorCeilings {
        latency: field("latency_factor_ceiling")?,
        bandwidth: field("bandwidth_factor_ceiling")?,
    })
}

/// The run configuration an audit is performed against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// Total particles.
    pub n: u64,
    /// Ranks.
    pub p: u64,
    /// Replication factor.
    pub c: u64,
    /// Timesteps the measured traffic covers.
    pub steps: u64,
    /// Algorithm under audit.
    pub algorithm: AuditAlgorithm,
    /// PASS/FAIL ceilings.
    pub ceilings: FactorCeilings,
}

/// Measured traffic of one phase on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseFlow {
    /// Messages sent (point-to-point plus collective constituents).
    pub messages: u64,
    /// Words (particles) sent, collective payloads included.
    pub words: u64,
    /// Bytes on the wire.
    pub bytes: u64,
}

/// Measured inputs to an audit: per-rank per-phase flows plus the
/// memory high-water mark.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditInput {
    /// `flows[rank][phase.index()]`.
    pub flows: Vec<[PhaseFlow; PHASE_COUNT]>,
    /// Max particles simultaneously resident on any rank (the measured
    /// `M`); 0 means "not measured" and falls back to the nominal `cn/p`.
    pub memory_particles: u64,
}

impl AuditInput {
    /// Build the audit input from a live execution's metrics snapshot,
    /// reading the counters the instrumented communicators record
    /// (`comm_send_*`, `comm_collective_*`) and the `mem_particles_hwm`
    /// gauge.
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> AuditInput {
        let flows = snapshot
            .ranks
            .iter()
            .map(|r| {
                let mut f = [PhaseFlow::default(); PHASE_COUNT];
                for phase in ALL_PHASES {
                    f[phase.index()] = PhaseFlow {
                        messages: r.counter("comm_send_messages", Some(phase))
                            + r.counter("comm_collective_messages", Some(phase)),
                        words: r.counter("comm_send_elements", Some(phase))
                            + r.counter("comm_collective_elements", Some(phase)),
                        bytes: r.counter("comm_send_bytes", Some(phase))
                            + r.counter("comm_collective_bytes", Some(phase)),
                    };
                }
                f
            })
            .collect();
        AuditInput {
            flows,
            memory_particles: snapshot.max_gauge("mem_particles_hwm", None),
        }
    }
}

/// Per-phase maxima over ranks, for the report table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRow {
    /// The phase.
    pub phase: Phase,
    /// Max messages any rank sent in this phase.
    pub messages: u64,
    /// Max words any rank sent in this phase.
    pub words: u64,
    /// Max bytes any rank sent in this phase.
    pub bytes: u64,
}

/// The audit verdict for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Echo of the audited configuration.
    pub config: AuditConfig,
    /// The `M` the bounds were evaluated at (particles).
    pub memory_particles: f64,
    /// Non-empty phases, max over ranks (un-normalized by steps).
    pub phases: Vec<PhaseRow>,
    /// Measured per-step critical-path messages (max over ranks).
    pub measured_s: f64,
    /// Measured per-step critical-path words (max over ranks).
    pub measured_w: f64,
    /// Eq. 2/3 latency lower bound at the measured `M`.
    pub s_bound: f64,
    /// Eq. 2/3 bandwidth lower bound at the measured `M`.
    pub w_bound: f64,
    /// Eq. 5 / §IV.B predicted cost.
    pub predicted: CommCost,
    /// `measured_s / s_bound`.
    pub s_factor: f64,
    /// `measured_w / w_bound`.
    pub w_factor: f64,
    /// Whether both factors are finite and under the ceilings.
    pub pass: bool,
}

impl AuditReport {
    /// Measured shift-phase words, max over ranks (the paper's headline
    /// `n/c` quantity).
    pub fn shift_words(&self) -> u64 {
        self.phases
            .iter()
            .find(|r| r.phase == Phase::Shift)
            .map_or(0, |r| r.words)
    }
}

/// Run the audit: compare measured flows against bounds and predictions.
pub fn audit(cfg: &AuditConfig, input: &AuditInput) -> AuditReport {
    let steps = cfg.steps.max(1) as f64;

    let mut phases = Vec::new();
    for phase in ALL_PHASES {
        let i = phase.index();
        let row = PhaseRow {
            phase,
            messages: input.flows.iter().map(|f| f[i].messages).max().unwrap_or(0),
            words: input.flows.iter().map(|f| f[i].words).max().unwrap_or(0),
            bytes: input.flows.iter().map(|f| f[i].bytes).max().unwrap_or(0),
        };
        if row.messages > 0 || row.words > 0 {
            phases.push(row);
        }
    }

    // Critical path: per-rank totals over the audited phases, then max.
    let audited = |f: &[PhaseFlow; PHASE_COUNT]| {
        ALL_PHASES
            .iter()
            .filter(|p| **p != Phase::Other)
            .map(|p| f[p.index()])
            .fold((0u64, 0u64), |(s, w), flow| {
                (s + flow.messages, w + flow.words)
            })
    };
    let measured_s = input
        .flows
        .iter()
        .map(|f| audited(f).0)
        .max()
        .unwrap_or(0) as f64
        / steps;
    let measured_w = input
        .flows
        .iter()
        .map(|f| audited(f).1)
        .max()
        .unwrap_or(0) as f64
        / steps;

    let memory_particles = if input.memory_particles > 0 {
        input.memory_particles as f64
    } else {
        memory_per_proc(cfg.n, cfg.p, cfg.c)
    };

    let (s_bound, w_bound, predicted) = match cfg.algorithm {
        AuditAlgorithm::AllPairs => (
            s_direct(cfg.n, cfg.p, memory_particles),
            w_direct(cfg.n, cfg.p, memory_particles),
            ca_all_pairs(cfg.n, cfg.p, cfg.c),
        ),
        AuditAlgorithm::Cutoff1d { rc_over_l } => {
            let k = k_cutoff_1d(cfg.n, rc_over_l);
            let teams = cfg.p / cfg.c;
            // Processor span of the cutoff: teams within r_c of a team.
            let m = ((rc_over_l * teams as f64).ceil() as u64).max(1);
            (
                s_cutoff(cfg.n, k, cfg.p, memory_particles),
                w_cutoff(cfg.n, k, cfg.p, memory_particles),
                ca_cutoff_1d(cfg.n, cfg.p, cfg.c, m),
            )
        }
    };

    let s_factor = measured_s / s_bound.max(1e-300);
    let w_factor = measured_w / w_bound.max(1e-300);
    let pass = s_factor.is_finite()
        && w_factor.is_finite()
        && s_factor <= cfg.ceilings.latency
        && w_factor <= cfg.ceilings.bandwidth;

    AuditReport {
        config: *cfg,
        memory_particles,
        phases,
        measured_s,
        measured_w,
        s_bound,
        w_bound,
        predicted,
        s_factor,
        w_factor,
        pass,
    }
}

/// One row of the wire-level observed-vs-predicted section: how many
/// point-to-point messages the CA schedule predicts for a phase across
/// the whole run versus how many a probed execution actually put on the
/// wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePhaseRow {
    /// The phase.
    pub phase: Phase,
    /// Messages the schedule predicts (all ranks, all steps).
    pub predicted: u64,
    /// Protocol send events observed in the wire log.
    pub observed: u64,
}

/// Tally per-phase message counts from the expected schedule against the
/// send events of a probed run's wire log. Phases with no traffic on
/// either side are omitted; fault events are not sends and do not count.
pub fn wire_phase_counts(
    expected: &nbody_wireprobe::ExpectedSchedule,
    log: &nbody_wireprobe::WireLog,
) -> Vec<WirePhaseRow> {
    let mut predicted = [0u64; PHASE_COUNT];
    for m in &expected.msgs {
        predicted[m.phase.index()] += 1;
    }
    let mut observed = [0u64; PHASE_COUNT];
    for r in &log.ranks {
        for e in &r.events {
            if e.kind == nbody_wireprobe::ProbeKind::Send {
                observed[e.phase.index()] += 1;
            }
        }
    }
    ALL_PHASES
        .iter()
        .filter_map(|&phase| {
            let row = WirePhaseRow {
                phase,
                predicted: predicted[phase.index()],
                observed: observed[phase.index()],
            };
            (row.predicted > 0 || row.observed > 0).then_some(row)
        })
        .collect()
}

/// Render the wire section appended to the audit table by
/// `ca-nbody audit … --wire-probe=…`.
pub fn wire_phase_table(rows: &[WirePhaseRow]) -> String {
    let mut out = String::from("  wire messages (observed vs predicted, whole run)\n");
    out.push_str(&format!(
        "  {:<11} {:>12} {:>12} {:>8}\n",
        "phase", "predicted", "observed", "delta"
    ));
    for row in rows {
        out.push_str(&format!(
            "  {:<11} {:>12} {:>12} {:>+8}\n",
            row.phase.label(),
            row.predicted,
            row.observed,
            row.observed as i64 - row.predicted as i64
        ));
    }
    out
}

/// Render reports as the human-readable verdict table.
pub fn audit_table(reports: &[AuditReport]) -> String {
    let mut out = String::new();
    for r in reports {
        let cfg = &r.config;
        out.push_str(&format!(
            "audit: {} n={} p={} c={} steps={}  M={} particles\n",
            cfg.algorithm.label(),
            cfg.n,
            cfg.p,
            cfg.c,
            cfg.steps,
            r.memory_particles,
        ));
        out.push_str(&format!(
            "  {:<11} {:>12} {:>12} {:>14}\n",
            "phase", "msgs/rank", "words/rank", "bytes/rank"
        ));
        for row in &r.phases {
            out.push_str(&format!(
                "  {:<11} {:>12} {:>12} {:>14}\n",
                row.phase.label(),
                row.messages,
                row.words,
                row.bytes
            ));
        }
        out.push_str(&format!(
            "  latency   S: measured {:>10.2}  bound {:>10.2}  predicted {:>10.2}  factor {:>7.2}\n",
            r.measured_s, r.s_bound, r.predicted.messages, r.s_factor
        ));
        out.push_str(&format!(
            "  bandwidth W: measured {:>10.2}  bound {:>10.2}  predicted {:>10.2}  factor {:>7.2}\n",
            r.measured_w, r.w_bound, r.predicted.words, r.w_factor
        ));
        out.push_str(&format!(
            "  verdict: {} (latency {:.2} vs ceiling {:.2}, bandwidth {:.2} vs ceiling {:.2})\n",
            if r.pass { "PASS" } else { "FAIL" },
            r.s_factor,
            cfg.ceilings.latency,
            r.w_factor,
            cfg.ceilings.bandwidth,
        ));
    }
    out
}

/// Render reports as a JSON document (`{"reports": [...]}`).
pub fn audit_json(reports: &[AuditReport]) -> Json {
    let arr = reports
        .iter()
        .map(|r| {
            let phases = r
                .phases
                .iter()
                .map(|row| {
                    Json::Obj(vec![
                        ("phase".into(), Json::Str(row.phase.label().into())),
                        ("messages".into(), Json::Num(row.messages as f64)),
                        ("words".into(), Json::Num(row.words as f64)),
                        ("bytes".into(), Json::Num(row.bytes as f64)),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("algorithm".into(), Json::Str(r.config.algorithm.label().into())),
                ("n".into(), Json::Num(r.config.n as f64)),
                ("p".into(), Json::Num(r.config.p as f64)),
                ("c".into(), Json::Num(r.config.c as f64)),
                ("steps".into(), Json::Num(r.config.steps as f64)),
                ("memory_particles".into(), Json::Num(r.memory_particles)),
                ("measured_s".into(), Json::Num(r.measured_s)),
                ("measured_w".into(), Json::Num(r.measured_w)),
                ("s_bound".into(), Json::Num(r.s_bound)),
                ("w_bound".into(), Json::Num(r.w_bound)),
                ("s_predicted".into(), Json::Num(r.predicted.messages)),
                ("w_predicted".into(), Json::Num(r.predicted.words)),
                ("s_factor".into(), Json::Num(r.s_factor)),
                ("w_factor".into(), Json::Num(r.w_factor)),
                ("shift_words".into(), Json::Num(r.shift_words() as f64)),
                ("pass".into(), Json::Bool(r.pass)),
                ("phases".into(), Json::Arr(phases)),
            ])
        })
        .collect();
    Json::Obj(vec![("reports".into(), Json::Arr(arr))])
}

/// Render reports as CSV, one row per configuration.
pub fn audit_csv(reports: &[AuditReport]) -> String {
    let mut out = String::from(
        "algorithm,n,p,c,steps,memory_particles,measured_s,s_bound,s_predicted,s_factor,\
         measured_w,w_bound,w_predicted,w_factor,shift_words,pass\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.config.algorithm.label(),
            r.config.n,
            r.config.p,
            r.config.c,
            r.config.steps,
            r.memory_particles,
            r.measured_s,
            r.s_bound,
            r.predicted.messages,
            r.s_factor,
            r.measured_w,
            r.w_bound,
            r.predicted.words,
            r.w_factor,
            r.shift_words(),
            r.pass,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flows matching a hand-computed CA all-pairs run: n=64, p=4, c=2
    /// (teams=2, one shift step of 32 particles per rank).
    fn synthetic_input() -> AuditInput {
        let mk = |bcast: u64, skew: u64, shift: u64, reduce: u64| {
            let mut f = [PhaseFlow::default(); PHASE_COUNT];
            f[Phase::Broadcast.index()] = PhaseFlow {
                messages: bcast,
                words: 32,
                bytes: 32 * 56,
            };
            f[Phase::Skew.index()] = PhaseFlow {
                messages: skew,
                words: skew * 32,
                bytes: skew * 32 * 56,
            };
            f[Phase::Shift.index()] = PhaseFlow {
                messages: shift,
                words: shift * 32,
                bytes: shift * 32 * 56,
            };
            f[Phase::Reduce.index()] = PhaseFlow {
                messages: reduce,
                words: 32,
                bytes: 32 * 56,
            };
            // Setup traffic lands in Other and must be excluded.
            f[Phase::Other.index()] = PhaseFlow {
                messages: 100,
                words: 10_000,
                bytes: 560_000,
            };
            f
        };
        AuditInput {
            flows: vec![mk(1, 0, 1, 0), mk(0, 1, 1, 1), mk(1, 0, 1, 0), mk(0, 1, 1, 1)],
            memory_particles: 64, // 2cn/p
        }
    }

    fn config() -> AuditConfig {
        AuditConfig {
            n: 64,
            p: 4,
            c: 2,
            steps: 1,
            algorithm: AuditAlgorithm::AllPairs,
            ceilings: FactorCeilings::default(),
        }
    }

    #[test]
    fn audit_excludes_setup_traffic_and_maximizes_over_ranks() {
        let r = audit(&config(), &synthetic_input());
        // Rank 1/3 critical path: skew 1 + shift 1 + reduce 1 = 3 msgs.
        assert_eq!(r.measured_s, 3.0);
        assert_eq!(r.measured_w, (32 + 32 + 32 + 32) as f64);
        // Bound at measured M=64: S = 64²/(4·64²)=0.25, W = 64²/(4·64)=16.
        assert_eq!(r.s_bound, 0.25);
        assert_eq!(r.w_bound, 16.0);
        assert_eq!(r.s_factor, 12.0);
        assert_eq!(r.w_factor, 8.0);
        assert!(r.pass);
        assert_eq!(r.shift_words(), 32);
        // The Other row is still *reported*.
        assert!(r.phases.iter().any(|p| p.phase == Phase::Other));
    }

    #[test]
    fn audit_fails_above_ceiling() {
        let mut cfg = config();
        cfg.ceilings = FactorCeilings {
            latency: 4.0,
            bandwidth: 12.0,
        };
        assert!(!audit(&cfg, &synthetic_input()).pass);
    }

    #[test]
    fn zero_memory_falls_back_to_nominal() {
        let mut input = synthetic_input();
        input.memory_particles = 0;
        let r = audit(&config(), &input);
        assert_eq!(r.memory_particles, 32.0); // cn/p
    }

    #[test]
    fn steps_normalize_the_totals() {
        let mut cfg = config();
        cfg.steps = 3;
        let r = audit(&cfg, &synthetic_input());
        assert_eq!(r.measured_s, 1.0);
    }

    #[test]
    fn cutoff_uses_eq3_bounds() {
        let cfg = AuditConfig {
            n: 256,
            p: 8,
            c: 2,
            steps: 1,
            algorithm: AuditAlgorithm::Cutoff1d { rc_over_l: 0.25 },
            ceilings: FactorCeilings::default(),
        };
        let r = audit(&cfg, &AuditInput {
            flows: vec![[PhaseFlow::default(); PHASE_COUNT]; 8],
            memory_particles: 64,
        });
        // k = 2·0.25·256 = 128; S = 256·128/(8·64²) = 1, W = 256·128/(8·64) = 64.
        assert_eq!(r.s_bound, 1.0);
        assert_eq!(r.w_bound, 64.0);
        assert!(r.predicted.messages > 0.0);
    }

    #[test]
    fn renderers_cover_every_field() {
        let r = audit(&config(), &synthetic_input());
        let table = audit_table(std::slice::from_ref(&r));
        assert!(table.contains("PASS"));
        assert!(table.contains("shift"));
        assert!(table.contains("bound"));
        let json = audit_json(std::slice::from_ref(&r));
        let first = &json.get("reports").unwrap().as_array().unwrap()[0];
        assert_eq!(first.get("s_factor").unwrap().as_f64(), Some(12.0));
        assert_eq!(first.get("pass").unwrap(), &Json::Bool(true));
        let csv = audit_csv(&[r]);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("algorithm,"));
    }

    #[test]
    fn wire_section_tallies_per_phase_counts() {
        use nbody_wireprobe::{
            ExpectedMsg, ExpectedSchedule, MsgEvent, ProbeKind, RankWireLog, WireLog,
        };
        let exp = ExpectedSchedule {
            msgs: vec![
                ExpectedMsg { src: 0, dst: 1, phase: Phase::Skew, count: 4 },
                ExpectedMsg { src: 0, dst: 1, phase: Phase::Shift, count: 4 },
                ExpectedMsg { src: 1, dst: 0, phase: Phase::Shift, count: 4 },
            ],
            size_checked: true,
            detail: "test".into(),
        };
        let ev = |kind, phase, t| MsgEvent {
            kind,
            src: 0,
            dst: 1,
            comm: 0,
            tag: 1,
            phase,
            count: 4,
            bytes: 224,
            t_secs: t,
            step: None,
        };
        let log = WireLog::from_ranks(vec![RankWireLog {
            rank: 0,
            events: vec![
                ev(ProbeKind::Send, Phase::Shift, 0.1),
                // Recvs and faults are not sends: excluded from the tally.
                ev(ProbeKind::Recv, Phase::Shift, 0.2),
                ev(ProbeKind::FaultDrop, Phase::Skew, 0.3),
            ],
            dropped_events: 0,
        }]);
        let rows = wire_phase_counts(&exp, &log);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], WirePhaseRow { phase: Phase::Skew, predicted: 1, observed: 0 });
        assert_eq!(rows[1], WirePhaseRow { phase: Phase::Shift, predicted: 2, observed: 1 });
        let table = wire_phase_table(&rows);
        assert!(table.contains("observed vs predicted"), "{table}");
        assert!(table.contains("skew"), "{table}");
        assert!(table.contains("-1"), "delta column: {table}");
    }

    #[test]
    fn ceilings_parse_and_reject() {
        let doc = Json::parse(
            "{\"latency_factor_ceiling\": 32.0, \"bandwidth_factor_ceiling\": 12.0}",
        )
        .unwrap();
        assert_eq!(ceilings_from_json(&doc).unwrap(), FactorCeilings::default());
        assert!(ceilings_from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(ceilings_from_json(
            &Json::parse("{\"latency_factor_ceiling\": -1}").unwrap()
        )
        .is_err());
    }
}
