//! The live metrics registry: typed counters, gauges and histograms.
//!
//! A [`MetricsRecorder`] is the per-rank write handle. It mirrors the
//! tracer's enable model: `disabled()` handles make every operation a
//! single-branch no-op, `for_rank()` handles own a shard that the rank's
//! thread drains with [`MetricsRecorder::finish`] when it joins. Shards
//! are strictly rank-local (`Rc`, not `Arc`), so the hot path — bumping a
//! counter on every message — is an unsynchronized `Cell` update; the
//! merge across ranks happens once, in plain data, after the join.
//!
//! Metric handles ([`Counter`], [`Gauge`], [`HistogramHandle`]) are
//! find-or-registered by `(name, phase)` and can be cached by callers so
//! steady-state recording never touches the registry again.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use nbody_trace::Phase;

/// Upper bucket bounds (inclusive) of every [`Histogram`], in bytes.
///
/// Powers of four from 64 B to 64 MiB — wide enough to separate the
/// paper's regimes (single-particle trickles vs. whole-replica shifts)
/// while keeping the array small enough to merge and export cheaply.
pub const BUCKET_BOUNDS: [u64; 11] = [
    64,
    256,
    1024,
    4096,
    16384,
    65536,
    262144,
    1048576,
    4194304,
    16777216,
    67108864,
];

/// Bucket count of every [`Histogram`]: the bounds plus the +Inf bucket.
pub const NUM_BUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// A fixed-bucket histogram of `u64` observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Per-bucket observation counts; the last bucket is unbounded.
    pub counts: [u64; NUM_BUCKETS],
    /// Sum of all observed values.
    pub sum: u64,
}

impl Histogram {
    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observation, or 0 if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Add another histogram's observations into this one. Saturating,
    /// like the counter merge: long accumulation sweeps pin at `u64::MAX`
    /// instead of wrapping.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// One exported metric value: `(name, optional phase, value)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample<T> {
    /// Metric name (e.g. `comm_send_bytes`).
    pub name: String,
    /// Phase label, if the metric is phase-bucketed.
    pub phase: Option<Phase>,
    /// The recorded value.
    pub value: T,
}

/// The drained, plain-data metrics of one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankMetrics {
    /// The rank the shard belonged to.
    pub rank: u32,
    /// Monotone counters (sum-aggregated across ranks).
    pub counters: Vec<Sample<u64>>,
    /// High-water-mark gauges (max-aggregated across ranks).
    pub gauges: Vec<Sample<u64>>,
    /// Fixed-bucket histograms (bucket-wise merged across ranks).
    pub histograms: Vec<Sample<Histogram>>,
}

fn sort_key(name: &str, phase: Option<Phase>) -> (String, usize) {
    (name.to_string(), phase.map_or(usize::MAX, |p| p.index()))
}

impl RankMetrics {
    /// Sort all samples by `(name, phase)` so exports are deterministic.
    pub fn normalize(&mut self) {
        self.counters.sort_by_key(|s| sort_key(&s.name, s.phase));
        self.gauges.sort_by_key(|s| sort_key(&s.name, s.phase));
        self.histograms.sort_by_key(|s| sort_key(&s.name, s.phase));
    }

    /// Value of a counter, 0 if never recorded.
    pub fn counter(&self, name: &str, phase: Option<Phase>) -> u64 {
        self.counters
            .iter()
            .find(|s| s.name == name && s.phase == phase)
            .map_or(0, |s| s.value)
    }

    /// Value of a gauge, 0 if never recorded.
    pub fn gauge(&self, name: &str, phase: Option<Phase>) -> u64 {
        self.gauges
            .iter()
            .find(|s| s.name == name && s.phase == phase)
            .map_or(0, |s| s.value)
    }

    /// A histogram, if it recorded anything.
    pub fn histogram(&self, name: &str, phase: Option<Phase>) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|s| s.name == name && s.phase == phase)
            .map(|s| &s.value)
    }
}

enum Slot {
    Counter(Rc<Cell<u64>>),
    Gauge(Rc<Cell<u64>>),
    Histogram(Rc<RefCell<Histogram>>),
}

struct Entry {
    name: &'static str,
    phase: Option<Phase>,
    slot: Slot,
}

struct Shard {
    rank: u32,
    entries: Vec<Entry>,
}

/// The per-rank metrics write handle. See the module docs.
#[derive(Clone)]
pub struct MetricsRecorder {
    inner: Option<Rc<RefCell<Shard>>>,
}

impl MetricsRecorder {
    /// The no-op handle used when metrics are off.
    pub fn disabled() -> MetricsRecorder {
        MetricsRecorder { inner: None }
    }

    /// An enabled handle owning a fresh shard for `rank`.
    pub fn for_rank(rank: usize) -> MetricsRecorder {
        MetricsRecorder {
            inner: Some(Rc::new(RefCell::new(Shard {
                rank: rank as u32,
                entries: Vec::new(),
            }))),
        }
    }

    /// Whether values are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn find_or_insert(&self, name: &'static str, phase: Option<Phase>, make: fn() -> Slot) -> Option<Slot> {
        let inner = self.inner.as_ref()?;
        let mut shard = inner.borrow_mut();
        if let Some(e) = shard
            .entries
            .iter()
            .find(|e| e.name == name && e.phase == phase)
        {
            return Some(match &e.slot {
                Slot::Counter(c) => Slot::Counter(Rc::clone(c)),
                Slot::Gauge(g) => Slot::Gauge(Rc::clone(g)),
                Slot::Histogram(h) => Slot::Histogram(Rc::clone(h)),
            });
        }
        let slot = make();
        let clone = match &slot {
            Slot::Counter(c) => Slot::Counter(Rc::clone(c)),
            Slot::Gauge(g) => Slot::Gauge(Rc::clone(g)),
            Slot::Histogram(h) => Slot::Histogram(Rc::clone(h)),
        };
        shard.entries.push(Entry { name, phase, slot });
        Some(clone)
    }

    /// Find or register a counter and return its handle.
    pub fn counter(&self, name: &'static str, phase: Option<Phase>) -> Counter {
        let slot = self.find_or_insert(name, phase, || Slot::Counter(Rc::new(Cell::new(0))));
        match slot {
            Some(Slot::Counter(c)) => Counter { cell: Some(c) },
            Some(_) => panic!("metric {name} already registered with a different type"),
            None => Counter { cell: None },
        }
    }

    /// Find or register a gauge and return its handle.
    pub fn gauge(&self, name: &'static str, phase: Option<Phase>) -> Gauge {
        let slot = self.find_or_insert(name, phase, || Slot::Gauge(Rc::new(Cell::new(0))));
        match slot {
            Some(Slot::Gauge(g)) => Gauge { cell: Some(g) },
            Some(_) => panic!("metric {name} already registered with a different type"),
            None => Gauge { cell: None },
        }
    }

    /// Find or register a histogram and return its handle.
    pub fn histogram(&self, name: &'static str, phase: Option<Phase>) -> HistogramHandle {
        let slot = self.find_or_insert(name, phase, || {
            Slot::Histogram(Rc::new(RefCell::new(Histogram::default())))
        });
        match slot {
            Some(Slot::Histogram(h)) => HistogramHandle { hist: Some(h) },
            Some(_) => panic!("metric {name} already registered with a different type"),
            None => HistogramHandle { hist: None },
        }
    }

    /// One-shot convenience: raise the high-water-mark gauge `name` to at
    /// least `value`. No-op when disabled.
    pub fn gauge_max(&self, name: &'static str, value: u64) {
        if self.is_enabled() {
            self.gauge(name, None).record_max(value);
        }
    }

    /// Drain the shard into plain data (`None` when disabled). Samples
    /// that never moved off zero are dropped; the recorder stays usable.
    pub fn finish(&self) -> Option<RankMetrics> {
        let inner = self.inner.as_ref()?;
        let shard = inner.borrow();
        let mut out = RankMetrics {
            rank: shard.rank,
            ..RankMetrics::default()
        };
        for e in &shard.entries {
            let name = e.name.to_string();
            match &e.slot {
                Slot::Counter(c) if c.get() > 0 => out.counters.push(Sample {
                    name,
                    phase: e.phase,
                    value: c.get(),
                }),
                Slot::Gauge(g) if g.get() > 0 => out.gauges.push(Sample {
                    name,
                    phase: e.phase,
                    value: g.get(),
                }),
                Slot::Histogram(h) if h.borrow().count() > 0 => out.histograms.push(Sample {
                    name,
                    phase: e.phase,
                    value: h.borrow().clone(),
                }),
                _ => {}
            }
        }
        out.normalize();
        Some(out)
    }
}

/// A monotone counter handle. Cheap to clone; no-op when disabled.
#[derive(Clone)]
pub struct Counter {
    cell: Option<Rc<Cell<u64>>>,
}

impl Counter {
    /// Add `v` to the counter.
    #[inline]
    pub fn add(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.set(c.get() + v);
        }
    }

    /// Add 1 to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled). Handles to the same registered
    /// name share storage, so this reads everything recorded so far —
    /// the step-timeline probe uses it to take per-step deltas.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.get())
    }
}

/// A high-water-mark gauge handle. Cheap to clone; no-op when disabled.
#[derive(Clone)]
pub struct Gauge {
    cell: Option<Rc<Cell<u64>>>,
}

impl Gauge {
    /// Raise the gauge to at least `v`.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if let Some(c) = &self.cell {
            if v > c.get() {
                c.set(v);
            }
        }
    }
}

/// A histogram handle. Cheap to clone; no-op when disabled.
#[derive(Clone)]
pub struct HistogramHandle {
    hist: Option<Rc<RefCell<Histogram>>>,
}

impl HistogramHandle {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.hist {
            h.borrow_mut().record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let rec = MetricsRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.counter("x", None).add(5);
        rec.gauge("y", None).record_max(7);
        rec.histogram("z", Some(Phase::Shift)).observe(100);
        rec.gauge_max("w", 3);
        assert!(rec.finish().is_none());
    }

    #[test]
    fn counters_accumulate_and_zero_samples_are_dropped() {
        let rec = MetricsRecorder::for_rank(3);
        let c = rec.counter("msgs", Some(Phase::Shift));
        c.add(2);
        c.inc();
        // Registered but never bumped: must not appear in the drain.
        let _idle = rec.counter("idle", Some(Phase::Reduce));
        let m = rec.finish().unwrap();
        assert_eq!(m.rank, 3);
        assert_eq!(m.counter("msgs", Some(Phase::Shift)), 3);
        assert_eq!(m.counters.len(), 1);
        assert_eq!(m.counter("idle", Some(Phase::Reduce)), 0);
    }

    #[test]
    fn handles_alias_the_same_slot() {
        let rec = MetricsRecorder::for_rank(0);
        let a = rec.counter("n", None);
        let b = rec.counter("n", None);
        a.add(1);
        b.add(1);
        assert_eq!(rec.finish().unwrap().counter("n", None), 2);
    }

    #[test]
    fn gauge_keeps_the_maximum() {
        let rec = MetricsRecorder::for_rank(0);
        let g = rec.gauge("hwm", None);
        g.record_max(10);
        g.record_max(4);
        g.record_max(12);
        rec.gauge_max("hwm", 11);
        assert_eq!(rec.finish().unwrap().gauge("hwm", None), 12);
    }

    #[test]
    fn histogram_buckets_and_merges() {
        let mut h = Histogram::default();
        h.record(64); // first bucket is inclusive
        h.record(65);
        h.record(u64::MAX / 2); // overflow bucket
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[NUM_BUCKETS - 1], 1);
        assert_eq!(h.count(), 3);

        let mut other = Histogram::default();
        other.record(64);
        h.merge(&other);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum, 64 + 65 + u64::MAX / 2 + 64);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        h.record(10);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn finish_output_is_sorted() {
        let rec = MetricsRecorder::for_rank(0);
        rec.counter("b", Some(Phase::Shift)).inc();
        rec.counter("a", Some(Phase::Reduce)).inc();
        rec.counter("a", Some(Phase::Broadcast)).inc();
        let m = rec.finish().unwrap();
        let order: Vec<(String, Option<Phase>)> = m
            .counters
            .iter()
            .map(|s| (s.name.clone(), s.phase))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a".to_string(), Some(Phase::Broadcast)),
                ("a".to_string(), Some(Phase::Reduce)),
                ("b".to_string(), Some(Phase::Shift)),
            ]
        );
    }
}
