//! # nbody-metrics
//!
//! The quantitative half of the observability stack for the reproduction
//! of *“A Communication-Optimal N-Body Algorithm for Direct
//! Interactions”* (IPDPS 2013).
//!
//! Where `nbody-trace` records *when* things happened (wall-clock spans),
//! this crate records *how much* happened — bytes on the wire,
//! message-size distributions, per-rank memory high-water marks — and
//! connects those measurements to the paper's analytic machinery in
//! `nbody-model`:
//!
//! * [`registry`] — a lightweight registry of typed [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket [`Histogram`]s. Like the tracer, a
//!   [`MetricsRecorder`] is either enabled (one shard per rank, merged at
//!   thread join, so the hot path is a plain `Cell` bump with no locks)
//!   or disabled (every method is a single-branch no-op).
//! * [`snapshot`] — the plain-data [`MetricsSnapshot`] an execution
//!   returns: one [`RankMetrics`] per rank plus cross-rank aggregation.
//! * [`export`] — Prometheus text exposition and JSON round-trips.
//! * [`audit`] — the optimality audit: measured per-rank latency (S) and
//!   bandwidth (W) costs per phase against the Eq. 2/3 lower bounds
//!   evaluated at the *measured* memory M, and against the Eq. 5 / §IV
//!   predicted costs, with PASS/FAIL verdicts at configurable
//!   constant-factor ceilings.

#![warn(missing_docs)]

pub mod audit;
pub mod export;
pub mod registry;
pub mod snapshot;

pub use audit::{
    audit, audit_csv, audit_json, audit_table, ceilings_from_json, wire_phase_counts,
    wire_phase_table, AuditAlgorithm, AuditConfig, AuditInput, AuditReport, FactorCeilings,
    PhaseFlow, WirePhaseRow,
};
pub use registry::{
    Counter, Gauge, Histogram, HistogramHandle, MetricsRecorder, RankMetrics, Sample,
    BUCKET_BOUNDS, NUM_BUCKETS,
};
pub use snapshot::MetricsSnapshot;
