//! The plain-data result of a metered execution.

use nbody_trace::Phase;

use crate::registry::RankMetrics;
#[cfg(test)]
use crate::registry::Sample;

/// All ranks' drained metrics for one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// One entry per rank, indexed by rank.
    pub ranks: Vec<RankMetrics>,
}

impl MetricsSnapshot {
    /// A snapshot with no ranks (metrics were disabled).
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Assemble a snapshot from per-rank shard drains; a `None` shard
    /// (rank ran with metrics disabled) becomes an empty entry.
    pub fn from_shards(shards: Vec<Option<RankMetrics>>) -> MetricsSnapshot {
        let ranks = shards
            .into_iter()
            .enumerate()
            .map(|(r, m)| {
                m.unwrap_or(RankMetrics {
                    rank: r as u32,
                    ..RankMetrics::default()
                })
            })
            .collect();
        MetricsSnapshot { ranks }
    }

    /// Whether any rank recorded anything.
    pub fn is_empty(&self) -> bool {
        self.ranks.iter().all(|r| {
            r.counters.is_empty() && r.gauges.is_empty() && r.histograms.is_empty()
        })
    }

    /// Aggregate across ranks: counters sum, gauges take the max,
    /// histograms merge bucket-wise. The result's `rank` field is 0.
    pub fn merged(&self) -> RankMetrics {
        let mut out = RankMetrics::default();
        for rank in &self.ranks {
            merge_rank(&mut out, rank);
        }
        out.normalize();
        out
    }

    /// Fold another snapshot into this one rank-wise — rank `r`'s samples
    /// merge into rank `r` here (counters add, gauges max, histograms
    /// merge), and extra ranks are appended. This accumulates metrics
    /// across a *sweep of runs* of the same configuration (the chaos kill
    /// sweep, an audit's repeats) where per-rank attribution should
    /// survive, unlike [`MetricsSnapshot::merged`] which collapses ranks.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        while self.ranks.len() < other.ranks.len() {
            self.ranks.push(RankMetrics {
                rank: self.ranks.len() as u32,
                ..RankMetrics::default()
            });
        }
        for (dst, src) in self.ranks.iter_mut().zip(&other.ranks) {
            merge_rank(dst, src);
            dst.normalize();
        }
    }

    /// Max over ranks of one counter.
    pub fn max_counter(&self, name: &str, phase: Option<Phase>) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.counter(name, phase))
            .max()
            .unwrap_or(0)
    }

    /// Sum over ranks of one counter.
    pub fn sum_counter(&self, name: &str, phase: Option<Phase>) -> u64 {
        self.ranks.iter().map(|r| r.counter(name, phase)).sum()
    }

    /// Max over ranks of one gauge.
    pub fn max_gauge(&self, name: &str, phase: Option<Phase>) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.gauge(name, phase))
            .max()
            .unwrap_or(0)
    }
}

/// Merge `src`'s samples into `dst`: counters add (saturating — an
/// accumulator absorbing many sweeps pins at `u64::MAX` rather than
/// wrapping back to small, plausible-looking values), gauges take the
/// max, histograms merge bucket-wise. Does not normalize.
fn merge_rank(dst: &mut RankMetrics, src: &RankMetrics) {
    for s in &src.counters {
        match dst
            .counters
            .iter_mut()
            .find(|o| o.name == s.name && o.phase == s.phase)
        {
            Some(o) => o.value = o.value.saturating_add(s.value),
            None => dst.counters.push(s.clone()),
        }
    }
    for s in &src.gauges {
        match dst
            .gauges
            .iter_mut()
            .find(|o| o.name == s.name && o.phase == s.phase)
        {
            Some(o) => o.value = o.value.max(s.value),
            None => dst.gauges.push(s.clone()),
        }
    }
    for s in &src.histograms {
        match dst
            .histograms
            .iter_mut()
            .find(|o| o.name == s.name && o.phase == s.phase)
        {
            Some(o) => o.value.merge(&s.value),
            None => dst.histograms.push(s.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Histogram;

    fn sample(name: &str, phase: Option<Phase>, value: u64) -> Sample<u64> {
        Sample {
            name: name.to_string(),
            phase,
            value,
        }
    }

    fn snap() -> MetricsSnapshot {
        let mut h0 = Histogram::default();
        h0.record(100);
        let mut h1 = Histogram::default();
        h1.record(5000);
        h1.record(5000);
        MetricsSnapshot {
            ranks: vec![
                RankMetrics {
                    rank: 0,
                    counters: vec![sample("msgs", Some(Phase::Shift), 4)],
                    gauges: vec![sample("hwm", None, 100)],
                    histograms: vec![Sample {
                        name: "sz".to_string(),
                        phase: Some(Phase::Shift),
                        value: h0,
                    }],
                },
                RankMetrics {
                    rank: 1,
                    counters: vec![sample("msgs", Some(Phase::Shift), 6)],
                    gauges: vec![sample("hwm", None, 80)],
                    histograms: vec![Sample {
                        name: "sz".to_string(),
                        phase: Some(Phase::Shift),
                        value: h1,
                    }],
                },
            ],
        }
    }

    #[test]
    fn merged_sums_counters_maxes_gauges_merges_histograms() {
        let m = snap().merged();
        assert_eq!(m.counter("msgs", Some(Phase::Shift)), 10);
        assert_eq!(m.gauge("hwm", None), 100);
        let h = m.histogram("sz", Some(Phase::Shift)).unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum, 10100);
    }

    #[test]
    fn cross_rank_reductions() {
        let s = snap();
        assert_eq!(s.max_counter("msgs", Some(Phase::Shift)), 6);
        assert_eq!(s.sum_counter("msgs", Some(Phase::Shift)), 10);
        assert_eq!(s.max_gauge("hwm", None), 100);
        assert_eq!(s.max_counter("absent", None), 0);
    }

    #[test]
    fn absorb_accumulates_rank_wise() {
        let mut acc = MetricsSnapshot::empty();
        acc.absorb(&snap());
        acc.absorb(&snap());
        assert_eq!(acc.ranks.len(), 2);
        // Counters add per rank, not across ranks.
        assert_eq!(acc.ranks[0].counter("msgs", Some(Phase::Shift)), 8);
        assert_eq!(acc.ranks[1].counter("msgs", Some(Phase::Shift)), 12);
        // Gauges keep the per-rank max.
        assert_eq!(acc.ranks[0].gauge("hwm", None), 100);
        assert_eq!(acc.ranks[1].gauge("hwm", None), 80);
        // Histograms merge bucket-wise.
        let h = acc.ranks[1].histogram("sz", Some(Phase::Shift)).unwrap();
        assert_eq!(h.count(), 4);
        // Absorbing into a populated snapshot grows it when needed.
        let mut one = MetricsSnapshot {
            ranks: vec![RankMetrics {
                rank: 0,
                counters: vec![sample("msgs", Some(Phase::Shift), 1)],
                ..RankMetrics::default()
            }],
        };
        one.absorb(&snap());
        assert_eq!(one.ranks.len(), 2);
        assert_eq!(one.ranks[0].counter("msgs", Some(Phase::Shift)), 5);
    }

    #[test]
    fn absorb_saturates_at_u64_boundaries() {
        let near_max = |v: u64| MetricsSnapshot {
            ranks: vec![RankMetrics {
                rank: 0,
                counters: vec![sample("total", None, v)],
                gauges: vec![sample("hwm", None, v)],
                ..RankMetrics::default()
            }],
        };
        // MAX + 1 pins at MAX instead of wrapping to 0.
        let mut acc = near_max(u64::MAX);
        acc.absorb(&near_max(1));
        assert_eq!(acc.ranks[0].counter("total", None), u64::MAX);
        // (MAX - 1) + 1 lands exactly on the boundary.
        let mut acc = near_max(u64::MAX - 1);
        acc.absorb(&near_max(1));
        assert_eq!(acc.ranks[0].counter("total", None), u64::MAX);
        // MAX + MAX stays pinned; the gauge max is unaffected by repeats.
        acc.absorb(&near_max(u64::MAX));
        assert_eq!(acc.ranks[0].counter("total", None), u64::MAX);
        assert_eq!(acc.ranks[0].gauge("hwm", None), u64::MAX);
        // merged() across ranks saturates the same way.
        let both = MetricsSnapshot {
            ranks: vec![
                RankMetrics {
                    rank: 0,
                    counters: vec![sample("total", None, u64::MAX)],
                    ..RankMetrics::default()
                },
                RankMetrics {
                    rank: 1,
                    counters: vec![sample("total", None, 7)],
                    ..RankMetrics::default()
                },
            ],
        };
        assert_eq!(both.merged().counter("total", None), u64::MAX);
    }

    #[test]
    fn from_shards_fills_gaps() {
        let s = MetricsSnapshot::from_shards(vec![
            None,
            Some(RankMetrics {
                rank: 1,
                counters: vec![sample("x", None, 1)],
                ..RankMetrics::default()
            }),
        ]);
        assert_eq!(s.ranks.len(), 2);
        assert_eq!(s.ranks[0].rank, 0);
        assert!(s.ranks[0].counters.is_empty());
        assert_eq!(s.ranks[1].counter("x", None), 1);
        assert!(!s.is_empty());
        assert!(MetricsSnapshot::empty().is_empty());
    }
}
