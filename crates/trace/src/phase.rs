//! The execution phases of the paper's algorithms.
//!
//! The paper's figures break execution time into *computation*,
//! *communication (shift)*, *communication (reduce)*, and — for the cutoff
//! algorithms — *communication (re-assign)* (Figs. 2 and 6). Algorithms tag
//! the current phase on their communicator; statistics, simulated
//! schedules, and measured wall-clock spans are all attributed to these
//! buckets, so the three views can be compared phase-by-phase.

use std::fmt;

/// Execution phase of the current operation, mirroring the stacked-bar
/// categories of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Initial team broadcast of the local subset (Algorithm 1/2, line 2).
    Broadcast,
    /// Row-wise skew by the row index (line 4).
    Skew,
    /// The main shift-and-update loop (lines 5–8).
    Shift,
    /// Final sum-reduction of force updates within each team (line 9).
    Reduce,
    /// Spatial-decomposition maintenance between timesteps (§IV.D).
    Reassign,
    /// Fault detection, agreement, and replica-resync traffic. Not part of
    /// the paper's cost model — kept separate so `audit` can price recovery
    /// overhead independently of the optimality-bound phases.
    Recovery,
    /// Anything else (setup, local compute, verification, ...).
    Other,
}

/// Number of phases; the length of every per-phase array.
pub const PHASE_COUNT: usize = 7;

/// All phases, in figure order.
pub const ALL_PHASES: [Phase; PHASE_COUNT] = [
    Phase::Broadcast,
    Phase::Skew,
    Phase::Shift,
    Phase::Reduce,
    Phase::Reassign,
    Phase::Recovery,
    Phase::Other,
];

impl Phase {
    /// Index into per-phase arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Phase::Broadcast => 0,
            Phase::Skew => 1,
            Phase::Shift => 2,
            Phase::Reduce => 3,
            Phase::Reassign => 4,
            Phase::Recovery => 5,
            Phase::Other => 6,
        }
    }

    /// Human-readable label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Broadcast => "broadcast",
            Phase::Skew => "skew",
            Phase::Shift => "shift",
            Phase::Reduce => "reduce",
            Phase::Reassign => "re-assign",
            Phase::Recovery => "recovery",
            Phase::Other => "other",
        }
    }

    /// Inverse of [`Phase::label`], used when parsing exported traces.
    pub fn from_label(label: &str) -> Option<Phase> {
        ALL_PHASES.into_iter().find(|p| p.label() == label)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_match_paper_legends() {
        assert_eq!(Phase::Shift.label(), "shift");
        assert_eq!(Phase::Reassign.label(), "re-assign");
        assert_eq!(format!("{}", Phase::Reduce), "reduce");
        // index() is a bijection onto 0..PHASE_COUNT
        let mut seen = [false; PHASE_COUNT];
        for p in ALL_PHASES {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
    }

    #[test]
    fn from_label_roundtrips() {
        for p in ALL_PHASES {
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert_eq!(Phase::from_label("nonsense"), None);
    }
}
