//! The recorded span: one interval of one rank's wall-clock timeline.

use crate::phase::Phase;

/// What a [`Span`] measured.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanKind {
    /// A contiguous window during which the rank's communicator was set to
    /// this phase. Phase windows tile the rank's timeline, so their
    /// durations sum to the rank's total traced wall time.
    Phase(Phase),
    /// Time spent blocked inside a receive, attributed to the phase in
    /// effect when the wait began. Blocked intervals overlap the enclosing
    /// phase window (they are a *refinement*, not an additional tile).
    Blocked {
        /// Phase in effect when the wait began.
        phase: Phase,
        /// Global rank of the sender whose message was waited for — the
        /// straggler the wait is attributed to. `None` when the transport
        /// does not know the source (e.g. synthetic traces).
        peer: Option<u32>,
        /// Pipeline step of the force evaluation during which the wait
        /// happened (0 = skew, `s` = shift step `s`), as announced by the
        /// CA drivers via [`Tracer::set_step`](crate::Tracer::set_step).
        /// `None` outside the skew/shift pipeline.
        step: Option<u32>,
    },
    /// A section emitted by the simulation driver (`integrate`, `force`,
    /// `reassign`, or the whole `step`), tagged with the timestep index.
    Driver {
        /// Section name.
        name: String,
        /// Zero-based timestep index.
        step: u32,
    },
}

impl SpanKind {
    /// Short label for CSV/JSON export (`phase`, `blocked`, or the driver
    /// section name).
    pub fn label(&self) -> &str {
        match self {
            SpanKind::Phase(_) => "phase",
            SpanKind::Blocked { .. } => "blocked",
            SpanKind::Driver { name, .. } => name,
        }
    }

    /// The phase this span is attributed to, if any.
    pub fn phase(&self) -> Option<Phase> {
        match self {
            SpanKind::Phase(p) => Some(*p),
            SpanKind::Blocked { phase, .. } => Some(*phase),
            SpanKind::Driver { .. } => None,
        }
    }

    /// A blocked interval attributed to `phase`, with no peer or pipeline
    /// step recorded. Shorthand for tests and synthetic traces.
    pub fn blocked(phase: Phase) -> SpanKind {
        SpanKind::Blocked {
            phase,
            peer: None,
            step: None,
        }
    }
}

/// One recorded interval of one rank's timeline. Times are seconds since
/// the execution's shared monotonic epoch (taken just before rank threads
/// spawn).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// World rank that recorded the span.
    pub rank: u32,
    /// What was measured.
    pub kind: SpanKind,
    /// Seconds since the epoch at which the interval began.
    pub start: f64,
    /// Seconds since the epoch at which the interval ended.
    pub end: f64,
}

impl Span {
    /// Interval length in seconds.
    #[inline]
    pub fn secs(&self) -> f64 {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_and_phases() {
        assert_eq!(SpanKind::Phase(Phase::Shift).label(), "phase");
        assert_eq!(SpanKind::blocked(Phase::Reduce).label(), "blocked");
        let d = SpanKind::Driver {
            name: "force".into(),
            step: 3,
        };
        assert_eq!(d.label(), "force");
        assert_eq!(d.phase(), None);
        assert_eq!(SpanKind::Phase(Phase::Shift).phase(), Some(Phase::Shift));
        assert_eq!(SpanKind::blocked(Phase::Reduce).phase(), Some(Phase::Reduce));
        let full = SpanKind::Blocked {
            phase: Phase::Shift,
            peer: Some(5),
            step: Some(2),
        };
        assert_eq!(full.phase(), Some(Phase::Shift));
        assert_eq!(full.label(), "blocked");
    }

    #[test]
    fn span_duration() {
        let s = Span {
            rank: 0,
            kind: SpanKind::Phase(Phase::Other),
            start: 1.5,
            end: 2.25,
        };
        assert!((s.secs() - 0.75).abs() < 1e-12);
    }
}
