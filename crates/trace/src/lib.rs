//! # nbody-trace
//!
//! Per-rank wall-clock tracing for *real* (threaded) executions of the
//! reproduction of *“A Communication-Optimal N-Body Algorithm for Direct
//! Interactions”* (IPDPS 2013).
//!
//! The discrete-event simulator (`nbody-netsim`) has always produced
//! per-phase virtual timelines; this crate provides the measured
//! counterpart. Each rank thread records [`Span`]s against a shared
//! monotonic epoch:
//!
//! * **phase windows** — contiguous intervals tiling the rank's timeline,
//!   one per [`Phase`] transition (driven by `Communicator::set_phase`),
//!   so per-phase wall times sum to the rank's total wall time;
//! * **blocked intervals** — time spent waiting inside a receive,
//!   attributed to the phase in effect;
//! * **driver spans** — per-timestep `integrate` / `force` / `reassign`
//!   sections emitted by the simulation driver, tagged with the step index.
//!
//! Recording is *zero-cost when disabled*: a [`Tracer`] is an `Option`
//! internally, and every recording method is a no-op branch on the
//! disabled handle (verified by the `allpairs_step` bench).
//!
//! Per-rank buffers are merged at join into an [`ExecutionTrace`], which
//! exports three formats:
//!
//! * Chrome `trace_event` JSON ([`ExecutionTrace::to_chrome_json`]) —
//!   loadable in Perfetto / `chrome://tracing`;
//! * JSON-lines ([`ExecutionTrace::to_jsonl`]) — one span per line for
//!   ad-hoc scripting;
//! * the event CSV schema shared with `nbody-netsim`
//!   ([`ExecutionTrace::to_events_csv`]) and the stacked-bar breakdown CSV
//!   schema used by `bench_results/fig*.csv`
//!   ([`ExecutionTrace::to_breakdown_csv`]).
//!
//! The [`schema`] module is the single definition of both CSV schemas, and
//! [`json`] is a dependency-free JSON parser/printer used by the exporters
//! and the `ca-nbody report` subcommand.

#![warn(missing_docs)]

pub mod exec;
pub mod json;
pub mod phase;
pub mod schema;
pub mod span;
pub mod tracer;

pub use exec::{DistStat, ExecutionTrace, PhaseBreakdown, StepReport};
pub use json::Json;
pub use phase::{Phase, ALL_PHASES, PHASE_COUNT};
pub use span::{Span, SpanKind};
pub use tracer::{SpanGuard, Tracer};
