//! A dependency-free JSON value, parser, and printer.
//!
//! The build environment has no serialization crates, so the trace
//! exporters and the `ca-nbody report` subcommand share this minimal
//! implementation. It covers the full JSON grammar except for
//! pathological nesting depth (the parser is recursive), which traces
//! never produce.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on objects (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // exporters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

/// Append `s` to `out` with JSON string escaping (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Append a JSON number to `out` (`0` for non-finite values, which JSON
/// cannot represent).
pub fn num_into(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
    } else {
        out.push('0');
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    f.write_str("0")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                write!(f, "\"{buf}\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len());
                    escape_into(&mut buf, k);
                    write!(f, "\"{buf}\":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":"x"}],"c":{}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap(), &Json::Obj(vec![]));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn display_roundtrips() {
        let src = r#"{"name":"sh\"ift","ts":12.5,"ok":true,"xs":[1,2,3],"n":null}"#;
        let v = Json::parse(src).unwrap();
        let printed = v.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), v);
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = Json::parse(r#""Aµ☃""#).unwrap();
        assert_eq!(v.as_str(), Some("Aµ☃"));
        let printed = Json::Str("tab\there".into()).to_string();
        assert_eq!(printed, "\"tab\\there\"");
    }

    #[test]
    fn non_finite_numbers_serialize_as_zero() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "0");
        let mut s = String::new();
        num_into(&mut s, f64::INFINITY);
        assert_eq!(s, "0");
    }
}
