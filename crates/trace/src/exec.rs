//! Merged whole-execution traces and their exporters.
//!
//! An [`ExecutionTrace`] holds every rank's spans against the shared
//! epoch. It exports Chrome `trace_event` JSON (Perfetto-loadable),
//! JSON-lines, and the two shared CSV schemas, and computes the
//! per-phase/per-step statistical summaries printed by `ca-nbody report`.

use std::collections::BTreeMap;

use crate::json::{escape_into, num_into, Json};
use crate::phase::{Phase, ALL_PHASES, PHASE_COUNT};
use crate::schema;
use crate::span::{Span, SpanKind};

/// Distribution summary of one quantity across ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistStat {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl DistStat {
    /// Summarize `samples` (sorted in place). Zeroes for an empty slice.
    pub fn from_samples(samples: &mut [f64]) -> DistStat {
        if samples.is_empty() {
            return DistStat {
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let rank = |q: f64| samples[(((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)];
        DistStat {
            mean,
            p50: rank(0.50),
            p95: rank(0.95),
            max: samples[n - 1],
        }
    }
}

/// Per-phase summary of one execution: the distribution across ranks of
/// each rank's total seconds inside that phase's windows, plus mean
/// blocked seconds attributed to the phase.
#[derive(Debug, Clone)]
pub struct PhaseBreakdown {
    /// Ranks in the execution.
    pub ranks: usize,
    /// Total traced wall time (latest span end), seconds.
    pub wall_secs: f64,
    /// One `(phase, across-rank distribution of per-rank seconds)` entry
    /// per phase, in figure order.
    pub phases: Vec<(Phase, DistStat)>,
    /// Mean per-rank blocked seconds attributed to each phase, in figure
    /// order.
    pub blocked: Vec<(Phase, f64)>,
}

impl PhaseBreakdown {
    /// Sum of per-phase mean seconds. Because phase windows tile each
    /// rank's timeline, this is within scheduler noise of [`wall_secs`]
    /// (`PhaseBreakdown::wall_secs`).
    pub fn phase_sum_secs(&self) -> f64 {
        self.phases.iter().map(|(_, d)| d.mean).sum()
    }
}

/// Per-timestep summary: for each driver section (`integrate`, `force`,
/// `reassign`, `step`), the distribution across ranks of that rank's total
/// seconds in the section during this step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Zero-based timestep index.
    pub step: u32,
    /// `(section name, across-rank distribution)` pairs, sorted by name.
    pub parts: Vec<(String, DistStat)>,
}

/// All ranks' spans for one execution, merged at join.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// Number of ranks.
    pub ranks: usize,
    /// Every recorded span, grouped by rank in rank order.
    pub spans: Vec<Span>,
}

impl ExecutionTrace {
    /// Merge per-rank buffers (index = rank) into one trace.
    pub fn from_rank_buffers(buffers: Vec<Vec<Span>>) -> ExecutionTrace {
        let ranks = buffers.len();
        let spans = buffers.into_iter().flatten().collect();
        ExecutionTrace { ranks, spans }
    }

    /// Latest span end, in seconds since the epoch — the execution's
    /// traced wall time.
    pub fn wall_secs(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Per-rank total seconds inside each phase's windows:
    /// `result[rank][phase.index()]`.
    pub fn phase_secs_per_rank(&self) -> Vec<[f64; PHASE_COUNT]> {
        let mut acc = vec![[0.0f64; PHASE_COUNT]; self.ranks];
        for s in &self.spans {
            if let SpanKind::Phase(p) = s.kind {
                acc[s.rank as usize][p.index()] += s.secs();
            }
        }
        acc
    }

    /// The per-phase breakdown across ranks (the `ca-nbody report` table).
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        let per_rank = self.phase_secs_per_rank();
        let mut blocked_acc = [0.0f64; PHASE_COUNT];
        for s in &self.spans {
            if let SpanKind::Blocked { phase, .. } = s.kind {
                blocked_acc[phase.index()] += s.secs();
            }
        }
        let ranks = self.ranks.max(1);
        let phases = ALL_PHASES
            .into_iter()
            .map(|p| {
                let mut samples: Vec<f64> =
                    per_rank.iter().map(|row| row[p.index()]).collect();
                (p, DistStat::from_samples(&mut samples))
            })
            .collect();
        let blocked = ALL_PHASES
            .into_iter()
            .map(|p| (p, blocked_acc[p.index()] / ranks as f64))
            .collect();
        PhaseBreakdown {
            ranks: self.ranks,
            wall_secs: self.wall_secs(),
            phases,
            blocked,
        }
    }

    /// Per-timestep driver-section summaries, in step order.
    pub fn step_reports(&self) -> Vec<StepReport> {
        // (step, name) -> rank -> seconds
        let mut acc: BTreeMap<(u32, &str), BTreeMap<u32, f64>> = BTreeMap::new();
        for s in &self.spans {
            if let SpanKind::Driver { name, step } = &s.kind {
                *acc.entry((*step, name.as_str()))
                    .or_default()
                    .entry(s.rank)
                    .or_insert(0.0) += s.secs();
            }
        }
        let mut by_step: BTreeMap<u32, Vec<(String, DistStat)>> = BTreeMap::new();
        for ((step, name), per_rank) in acc {
            let mut samples: Vec<f64> = per_rank.into_values().collect();
            by_step
                .entry(step)
                .or_default()
                .push((name.to_string(), DistStat::from_samples(&mut samples)));
        }
        by_step
            .into_iter()
            .map(|(step, parts)| StepReport { step, parts })
            .collect()
    }

    /// The phases that actually have a window in the trace.
    pub fn phases_present(&self) -> Vec<Phase> {
        ALL_PHASES
            .into_iter()
            .filter(|p| {
                self.spans
                    .iter()
                    .any(|s| s.kind == SpanKind::Phase(*p))
            })
            .collect()
    }

    /// This execution as one stacked bar in the breakdown schema:
    /// `compute` = mean [`Phase::Other`] seconds (real executions compute
    /// under `Other`), `shift` folds in skew, `makespan` = traced wall.
    pub fn breakdown_row(&self, label: &str) -> schema::BreakdownRow {
        let b = self.phase_breakdown();
        let secs = |p: Phase| b.phases[p.index()].1.mean;
        schema::BreakdownRow {
            label: label.to_string(),
            compute: secs(Phase::Other),
            shift: secs(Phase::Shift) + secs(Phase::Skew),
            reduce: secs(Phase::Reduce),
            reassign: secs(Phase::Reassign),
            broadcast: secs(Phase::Broadcast),
            makespan: b.wall_secs,
        }
    }

    /// Single-row breakdown-schema CSV (see `bench_results/fig*.csv`).
    pub fn to_breakdown_csv(&self, label: &str) -> String {
        schema::breakdown_csv(&[self.breakdown_row(label)])
    }

    /// Event-schema CSV shared with the simulator's traces. Driver rows
    /// put the section name in `kind` and the step index in `peer`;
    /// blocked rows put the late sender's global rank in `peer`.
    pub fn to_events_csv(&self) -> String {
        let mut out = String::from(schema::EVENT_CSV_HEADER);
        out.push('\n');
        for s in &self.spans {
            match &s.kind {
                SpanKind::Phase(p) => {
                    schema::push_event_row(&mut out, s.rank, "phase", s.start, s.end, "", p.label())
                }
                SpanKind::Blocked { phase, peer, .. } => schema::push_event_row(
                    &mut out,
                    s.rank,
                    "blocked",
                    s.start,
                    s.end,
                    &peer.map(|r| r.to_string()).unwrap_or_default(),
                    phase.label(),
                ),
                SpanKind::Driver { name, step } => schema::push_event_row(
                    &mut out,
                    s.rank,
                    name,
                    s.start,
                    s.end,
                    &step.to_string(),
                    "",
                ),
            }
        }
        out
    }

    /// Chrome `trace_event` JSON, loadable in Perfetto or
    /// `chrome://tracing`. Spans are complete (`"ph":"X"`) events with
    /// microsecond timestamps; each category gets its own pid (process
    /// track) so phase windows, blocked intervals, and driver sections
    /// render as three parallel lanes with one thread per rank.
    pub fn to_chrome_json(&self) -> String {
        const PID_DRIVER: u32 = 0;
        const PID_PHASE: u32 = 1;
        const PID_BLOCKED: u32 = 2;
        let mut out = String::with_capacity(128 * self.spans.len() + 1024);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut push_event =
            |out: &mut String, name: &str, pid: u32, tid: u32, ts: f64, dur: f64, args: &str| {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("{\"name\":\"");
                escape_into(out, name);
                out.push_str("\",\"ph\":\"X\",\"pid\":");
                num_into(out, pid as f64);
                out.push_str(",\"tid\":");
                num_into(out, tid as f64);
                out.push_str(",\"ts\":");
                num_into(out, ts);
                out.push_str(",\"dur\":");
                num_into(out, dur);
                out.push_str(",\"cat\":\"");
                out.push_str(match pid {
                    PID_PHASE => "comm-phase",
                    PID_BLOCKED => "blocked",
                    _ => "driver",
                });
                out.push_str("\",\"args\":");
                out.push_str(args);
                out.push('}');
            };
        for s in &self.spans {
            let ts = s.start * 1e6;
            let dur = s.secs() * 1e6;
            match &s.kind {
                SpanKind::Phase(p) => {
                    let args = format!("{{\"phase\":\"{}\"}}", p.label());
                    push_event(&mut out, p.label(), PID_PHASE, s.rank, ts, dur, &args);
                }
                SpanKind::Blocked { phase, peer, step } => {
                    let mut args = format!("{{\"phase\":\"{}\"", phase.label());
                    if let Some(peer) = peer {
                        args.push_str(&format!(",\"peer\":{peer}"));
                    }
                    if let Some(step) = step {
                        args.push_str(&format!(",\"pstep\":{step}"));
                    }
                    args.push('}');
                    push_event(&mut out, "blocked", PID_BLOCKED, s.rank, ts, dur, &args);
                }
                SpanKind::Driver { name, step } => {
                    let args = format!("{{\"step\":{step}}}");
                    push_event(&mut out, name, PID_DRIVER, s.rank, ts, dur, &args);
                }
            }
        }
        // Metadata: name the three process tracks and each rank thread.
        for (pid, pname) in [
            (PID_DRIVER, "driver"),
            (PID_PHASE, "comm phases"),
            (PID_BLOCKED, "blocked"),
        ] {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{pname}\"}}}}"
            ));
            for rank in 0..self.ranks {
                out.push_str(&format!(
                    ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{rank},\
                     \"args\":{{\"name\":\"rank {rank}\"}}}}"
                ));
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// JSON-lines export: one flat object per span, times in seconds.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96 * self.spans.len());
        for s in &self.spans {
            out.push_str("{\"rank\":");
            num_into(&mut out, s.rank as f64);
            match &s.kind {
                SpanKind::Phase(p) => {
                    out.push_str(",\"kind\":\"phase\",\"phase\":\"");
                    out.push_str(p.label());
                    out.push('"');
                }
                SpanKind::Blocked { phase, peer, step } => {
                    out.push_str(",\"kind\":\"blocked\",\"phase\":\"");
                    out.push_str(phase.label());
                    out.push('"');
                    if let Some(peer) = peer {
                        out.push_str(",\"peer\":");
                        num_into(&mut out, *peer as f64);
                    }
                    if let Some(step) = step {
                        out.push_str(",\"pstep\":");
                        num_into(&mut out, *step as f64);
                    }
                }
                SpanKind::Driver { name, step } => {
                    out.push_str(",\"kind\":\"driver\",\"name\":\"");
                    escape_into(&mut out, name);
                    out.push_str("\",\"step\":");
                    num_into(&mut out, *step as f64);
                }
            }
            out.push_str(",\"start\":");
            num_into(&mut out, s.start);
            out.push_str(",\"end\":");
            num_into(&mut out, s.end);
            out.push_str("}\n");
        }
        out
    }

    /// Parse a trace previously exported by [`to_chrome_json`]
    /// (`ExecutionTrace::to_chrome_json`) or [`to_jsonl`]
    /// (`ExecutionTrace::to_jsonl`), sniffing the format.
    pub fn parse(text: &str) -> Result<ExecutionTrace, String> {
        let trimmed = text.trim_start();
        if trimmed.starts_with('{') && trimmed.contains("\"traceEvents\"") {
            Self::from_chrome_json(text)
        } else {
            Self::from_jsonl(text)
        }
    }

    /// Parse a Chrome `trace_event` JSON document produced by
    /// [`to_chrome_json`] (`ExecutionTrace::to_chrome_json`).
    pub fn from_chrome_json(text: &str) -> Result<ExecutionTrace, String> {
        let doc = Json::parse(text)?;
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .ok_or("missing traceEvents array")?;
        let mut spans = Vec::new();
        let mut max_rank = 0u32;
        for ev in events {
            let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
            if ph != "X" {
                continue;
            }
            let rank = ev
                .get("tid")
                .and_then(Json::as_f64)
                .ok_or("span without tid")? as u32;
            let ts = ev.get("ts").and_then(Json::as_f64).ok_or("span without ts")?;
            let dur = ev
                .get("dur")
                .and_then(Json::as_f64)
                .ok_or("span without dur")?;
            let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
            let cat = ev.get("cat").and_then(Json::as_str).unwrap_or("");
            let kind = match cat {
                "comm-phase" => SpanKind::Phase(
                    Phase::from_label(name).ok_or_else(|| format!("unknown phase '{name}'"))?,
                ),
                "blocked" => {
                    let args = ev.get("args");
                    let label = args
                        .and_then(|a| a.get("phase"))
                        .and_then(Json::as_str)
                        .unwrap_or("other");
                    let field = |key: &str| {
                        args.and_then(|a| a.get(key))
                            .and_then(Json::as_f64)
                            .map(|v| v as u32)
                    };
                    SpanKind::Blocked {
                        phase: Phase::from_label(label).unwrap_or(Phase::Other),
                        peer: field("peer"),
                        step: field("pstep"),
                    }
                }
                _ => {
                    let step = ev
                        .get("args")
                        .and_then(|a| a.get("step"))
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0) as u32;
                    SpanKind::Driver {
                        name: name.to_string(),
                        step,
                    }
                }
            };
            max_rank = max_rank.max(rank);
            spans.push(Span {
                rank,
                kind,
                start: ts / 1e6,
                end: (ts + dur) / 1e6,
            });
        }
        if spans.is_empty() {
            return Err("trace contains no spans".into());
        }
        Ok(ExecutionTrace {
            ranks: max_rank as usize + 1,
            spans,
        })
    }

    /// Parse a JSON-lines document produced by [`to_jsonl`]
    /// (`ExecutionTrace::to_jsonl`).
    pub fn from_jsonl(text: &str) -> Result<ExecutionTrace, String> {
        let mut spans = Vec::new();
        let mut max_rank = 0u32;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let rank = v
                .get("rank")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {}: missing rank", i + 1))? as u32;
            let start = v
                .get("start")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {}: missing start", i + 1))?;
            let end = v
                .get("end")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {}: missing end", i + 1))?;
            let phase = || {
                v.get("phase")
                    .and_then(Json::as_str)
                    .and_then(Phase::from_label)
                    .unwrap_or(Phase::Other)
            };
            let kind = match v.get("kind").and_then(Json::as_str) {
                Some("phase") => SpanKind::Phase(phase()),
                Some("blocked") => SpanKind::Blocked {
                    phase: phase(),
                    peer: v.get("peer").and_then(Json::as_f64).map(|x| x as u32),
                    step: v.get("pstep").and_then(Json::as_f64).map(|x| x as u32),
                },
                Some("driver") => SpanKind::Driver {
                    name: v
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    step: v.get("step").and_then(Json::as_f64).unwrap_or(0.0) as u32,
                },
                other => return Err(format!("line {}: bad kind {other:?}", i + 1)),
            };
            max_rank = max_rank.max(rank);
            spans.push(Span {
                rank,
                kind,
                start,
                end,
            });
        }
        if spans.is_empty() {
            return Err("trace contains no spans".into());
        }
        Ok(ExecutionTrace {
            ranks: max_rank as usize + 1,
            spans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ExecutionTrace {
        // Two ranks; phase windows tile [0, 1.0] on each.
        let mk = |rank, kind, start, end| Span {
            rank,
            kind,
            start,
            end,
        };
        ExecutionTrace::from_rank_buffers(vec![
            vec![
                mk(0, SpanKind::Phase(Phase::Other), 0.0, 0.4),
                mk(0, SpanKind::Phase(Phase::Shift), 0.4, 0.9),
                mk(0, SpanKind::Phase(Phase::Reduce), 0.9, 1.0),
                mk(
                    0,
                    SpanKind::Blocked {
                        phase: Phase::Shift,
                        peer: Some(3),
                        step: Some(2),
                    },
                    0.5,
                    0.6,
                ),
                mk(
                    0,
                    SpanKind::Driver {
                        name: "force".into(),
                        step: 0,
                    },
                    0.1,
                    0.9,
                ),
            ],
            vec![
                mk(1, SpanKind::Phase(Phase::Other), 0.0, 0.5),
                mk(1, SpanKind::Phase(Phase::Shift), 0.5, 0.8),
                mk(1, SpanKind::Phase(Phase::Reduce), 0.8, 1.0),
                mk(
                    1,
                    SpanKind::Driver {
                        name: "force".into(),
                        step: 0,
                    },
                    0.1,
                    0.8,
                ),
            ],
        ])
    }

    #[test]
    fn dist_stat_percentiles() {
        let mut xs = vec![4.0, 1.0, 3.0, 2.0];
        let d = DistStat::from_samples(&mut xs);
        assert_eq!(d.p50, 2.0);
        assert_eq!(d.p95, 4.0);
        assert_eq!(d.max, 4.0);
        assert!((d.mean - 2.5).abs() < 1e-12);
        let d0 = DistStat::from_samples(&mut []);
        assert_eq!(d0.max, 0.0);
        let mut one = vec![7.0];
        let d1 = DistStat::from_samples(&mut one);
        assert_eq!((d1.p50, d1.p95, d1.max), (7.0, 7.0, 7.0));
    }

    #[test]
    fn breakdown_sums_to_wall() {
        let t = sample_trace();
        let b = t.phase_breakdown();
        assert_eq!(b.ranks, 2);
        assert!((b.wall_secs - 1.0).abs() < 1e-12);
        // Windows tile [0,1] on both ranks, so mean phase sum == wall.
        assert!((b.phase_sum_secs() - 1.0).abs() < 1e-12);
        let shift = b.phases[Phase::Shift.index()].1;
        assert!((shift.mean - 0.4).abs() < 1e-12);
        assert!((shift.max - 0.5).abs() < 1e-12);
        // Blocked: 0.1 s on rank 0 only, mean 0.05.
        assert!((b.blocked[Phase::Shift.index()].1 - 0.05).abs() < 1e-12);
    }

    #[test]
    fn step_reports_aggregate_by_section() {
        let t = sample_trace();
        let reports = t.step_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].step, 0);
        let (name, d) = &reports[0].parts[0];
        assert_eq!(name, "force");
        assert!((d.max - 0.8).abs() < 1e-12);
        assert!((d.mean - 0.75).abs() < 1e-12);
    }

    #[test]
    fn chrome_json_roundtrips() {
        let t = sample_trace();
        let json = t.to_chrome_json();
        let back = ExecutionTrace::from_chrome_json(&json).unwrap();
        assert_eq!(back.ranks, 2);
        assert_eq!(back.spans.len(), t.spans.len());
        for (a, b) in t.spans.iter().zip(&back.spans) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.kind, b.kind);
            assert!((a.start - b.start).abs() < 1e-9);
            assert!((a.end - b.end).abs() < 1e-9);
        }
        // The sniffing front door takes the same document.
        assert_eq!(ExecutionTrace::parse(&json).unwrap().spans.len(), t.spans.len());
    }

    #[test]
    fn jsonl_roundtrips() {
        let t = sample_trace();
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), t.spans.len());
        let back = ExecutionTrace::from_jsonl(&jsonl).unwrap();
        assert_eq!(back.spans, t.spans);
        assert_eq!(ExecutionTrace::parse(&jsonl).unwrap().spans, t.spans);
    }

    #[test]
    fn events_csv_uses_shared_schema() {
        let t = sample_trace();
        let csv = t.to_events_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(schema::EVENT_CSV_HEADER));
        assert!(csv.contains("0,phase,0.4,0.9,,shift"));
        assert!(csv.contains("0,blocked,0.5,0.6,3,shift"));
        assert!(csv.contains("0,force,0.1,0.9,0,"));
    }

    #[test]
    fn breakdown_row_maps_phases_to_figure_columns() {
        let t = sample_trace();
        let row = t.breakdown_row("measured");
        assert_eq!(row.label, "measured");
        assert!((row.compute - 0.45).abs() < 1e-12); // mean Other
        assert!((row.shift - 0.4).abs() < 1e-12);
        assert!((row.reduce - 0.15).abs() < 1e-12);
        assert_eq!(row.reassign, 0.0);
        assert!((row.makespan - 1.0).abs() < 1e-12);
        let csv = t.to_breakdown_csv("measured");
        assert!(csv.starts_with(schema::BREAKDOWN_CSV_HEADER));
    }

    #[test]
    fn phases_present_lists_only_used_phases() {
        let t = sample_trace();
        assert_eq!(
            t.phases_present(),
            vec![Phase::Shift, Phase::Reduce, Phase::Other]
        );
    }

    #[test]
    fn parse_rejects_empty_or_malformed() {
        assert!(ExecutionTrace::parse("").is_err());
        assert!(ExecutionTrace::parse("{\"traceEvents\":[]}").is_err());
        assert!(ExecutionTrace::from_jsonl("{\"rank\":0}\n").is_err());
    }
}
