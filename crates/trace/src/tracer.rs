//! The per-rank recording handle.
//!
//! A [`Tracer`] is either *enabled* (owns a span buffer and the shared
//! epoch) or *disabled* (`None` inside), in which case every method is a
//! single-branch no-op — the handle can be threaded through the
//! communicator and driver unconditionally without measurable overhead.
//!
//! Handles are `Rc`-shared: cloning a tracer (e.g. when a communicator is
//! `split`) yields another handle onto the *same* rank buffer, so phase
//! changes made through a sub-communicator land on the one true timeline
//! of the rank.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use crate::phase::Phase;
use crate::span::{Span, SpanKind};

struct Inner {
    rank: u32,
    epoch: Instant,
    spans: Vec<Span>,
    cur_phase: Phase,
    phase_start: f64,
    cur_step: Option<u32>,
}

impl Inner {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn close_phase_window(&mut self, now: f64) {
        if now > self.phase_start {
            let span = Span {
                rank: self.rank,
                kind: SpanKind::Phase(self.cur_phase),
                start: self.phase_start,
                end: now,
            };
            self.spans.push(span);
        }
        self.phase_start = now;
    }
}

/// A cloneable per-rank span recorder. See the module docs.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl Tracer {
    /// The no-op handle used when tracing is off. All recording methods
    /// return immediately.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled handle for `rank`, measuring against `epoch` (the same
    /// `Instant` for every rank of the execution). The initial phase
    /// window ([`Phase::Other`]) opens immediately.
    pub fn for_rank(rank: usize, epoch: Instant) -> Tracer {
        let phase_start = epoch.elapsed().as_secs_f64();
        Tracer {
            inner: Some(Rc::new(RefCell::new(Inner {
                rank: rank as u32,
                epoch,
                spans: Vec::new(),
                cur_phase: Phase::Other,
                phase_start,
                cur_step: None,
            }))),
        }
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Close the current phase window and open one for `phase`. No-op if
    /// the phase is unchanged (the window stays open) or tracing is off.
    pub fn phase_change(&self, phase: Phase) {
        let Some(inner) = &self.inner else { return };
        let mut t = inner.borrow_mut();
        if phase == t.cur_phase {
            return;
        }
        let now = t.now();
        t.close_phase_window(now);
        t.cur_phase = phase;
    }

    /// Announce the pipeline step of the force evaluation (0 = skew,
    /// `s` = shift step `s`); subsequent blocked intervals carry it, so an
    /// analyzer can place each wait in the skew/shift schedule. Drivers
    /// clear it with `None` once the pipeline ends. No-op when disabled.
    pub fn set_step(&self, step: Option<u32>) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().cur_step = step;
    }

    /// Record a blocked interval that began at `wait_started` and ends
    /// now, attributed to the current phase, the current pipeline step,
    /// and — when known — the global rank of the late sender. Called by
    /// the transport right after a receive that had to wait.
    pub fn record_blocked(&self, wait_started: Instant, peer: Option<u32>) {
        let Some(inner) = &self.inner else { return };
        let mut t = inner.borrow_mut();
        let start = wait_started.duration_since(t.epoch).as_secs_f64();
        let end = t.now();
        let span = Span {
            rank: t.rank,
            kind: SpanKind::Blocked {
                phase: t.cur_phase,
                peer,
                step: t.cur_step,
            },
            start,
            end,
        };
        t.spans.push(span);
    }

    /// Open a driver section (`integrate`, `force`, `reassign`, `step`)
    /// for timestep `step`; the span is recorded when the guard drops.
    pub fn driver_span(&self, name: &'static str, step: usize) -> SpanGuard {
        let start = match &self.inner {
            Some(inner) => inner.borrow().now(),
            None => 0.0,
        };
        SpanGuard {
            tracer: self.clone(),
            name,
            step: step as u32,
            start,
        }
    }

    /// Close the open phase window and drain the recorded spans. The
    /// tracer stays usable (a fresh window opens at the current time), but
    /// this is normally the rank's last act before its thread joins.
    pub fn finish(&self) -> Vec<Span> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut t = inner.borrow_mut();
        let now = t.now();
        t.close_phase_window(now);
        std::mem::take(&mut t.spans)
    }
}

/// Guard for an open driver section; records the span on drop.
pub struct SpanGuard {
    tracer: Tracer,
    name: &'static str,
    step: u32,
    start: f64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = &self.tracer.inner else {
            return;
        };
        let mut t = inner.borrow_mut();
        let end = t.now();
        let span = Span {
            rank: t.rank,
            kind: SpanKind::Driver {
                name: self.name.to_string(),
                step: self.step,
            },
            start: self.start,
            end,
        };
        t.spans.push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.phase_change(Phase::Shift);
        t.set_step(Some(1));
        t.record_blocked(Instant::now(), Some(0));
        drop(t.driver_span("force", 0));
        assert!(t.finish().is_empty());
    }

    #[test]
    fn phase_windows_tile_the_timeline() {
        let t = Tracer::for_rank(3, Instant::now());
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.phase_change(Phase::Shift);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.phase_change(Phase::Shift); // same phase: window stays open
        t.phase_change(Phase::Reduce);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let spans = t.finish();
        let windows: Vec<&Span> = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Phase(_)))
            .collect();
        assert_eq!(windows.len(), 3, "{windows:?}");
        assert_eq!(windows[0].kind, SpanKind::Phase(Phase::Other));
        assert_eq!(windows[1].kind, SpanKind::Phase(Phase::Shift));
        assert_eq!(windows[2].kind, SpanKind::Phase(Phase::Reduce));
        // Contiguous tiling: each window starts where the previous ended.
        for w in windows.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert!(spans.iter().all(|s| s.rank == 3));
    }

    #[test]
    fn driver_guard_records_on_drop() {
        let t = Tracer::for_rank(0, Instant::now());
        {
            let _g = t.driver_span("integrate", 7);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let spans = t.finish();
        let drv: Vec<&Span> = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Driver { .. }))
            .collect();
        assert_eq!(drv.len(), 1);
        match &drv[0].kind {
            SpanKind::Driver { name, step } => {
                assert_eq!(name, "integrate");
                assert_eq!(*step, 7);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert!(drv[0].secs() >= 0.001);
    }

    #[test]
    fn blocked_is_attributed_to_current_phase() {
        let t = Tracer::for_rank(1, Instant::now());
        t.phase_change(Phase::Shift);
        let wait = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.record_blocked(wait, None);
        let spans = t.finish();
        let blocked: Vec<&Span> = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Blocked { .. }))
            .collect();
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].kind, SpanKind::blocked(Phase::Shift));
        assert!(blocked[0].secs() >= 0.001);
    }

    #[test]
    fn blocked_carries_peer_and_pipeline_step() {
        let t = Tracer::for_rank(1, Instant::now());
        t.phase_change(Phase::Shift);
        t.set_step(Some(3));
        t.record_blocked(Instant::now(), Some(7));
        t.set_step(None);
        t.record_blocked(Instant::now(), Some(2));
        let spans = t.finish();
        let blocked: Vec<&Span> = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Blocked { .. }))
            .collect();
        assert_eq!(blocked.len(), 2);
        assert_eq!(
            blocked[0].kind,
            SpanKind::Blocked {
                phase: Phase::Shift,
                peer: Some(7),
                step: Some(3),
            }
        );
        assert_eq!(
            blocked[1].kind,
            SpanKind::Blocked {
                phase: Phase::Shift,
                peer: Some(2),
                step: None,
            }
        );
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Tracer::for_rank(0, Instant::now());
        let sub = t.clone();
        sub.phase_change(Phase::Reassign);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let spans = t.finish();
        assert!(spans
            .iter()
            .any(|s| s.kind == SpanKind::Phase(Phase::Reassign)));
    }
}
