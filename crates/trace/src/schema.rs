//! The two CSV schemas shared across the workspace.
//!
//! * The **event schema** (`rank,kind,start,end,peer,phase`) is used both
//!   by the discrete-event simulator's traces (`nbody-netsim`) and by the
//!   measured-execution exporter ([`crate::ExecutionTrace::to_events_csv`]),
//!   so one plotting script handles both.
//! * The **breakdown schema**
//!   (`label,compute,shift,reduce,reassign,broadcast,makespan`) is the
//!   stacked-bar format written to `bench_results/fig*.csv` by the figure
//!   binaries and by `ca-nbody run --trace` profiles.

use std::fmt::Write as _;

use crate::json::Json;

/// Header of the event schema.
pub const EVENT_CSV_HEADER: &str = "rank,kind,start,end,peer,phase";

/// Append one event-schema row (no trailing context needed; `peer` and
/// `phase` may be empty).
pub fn push_event_row(
    out: &mut String,
    rank: u32,
    kind: &str,
    start: f64,
    end: f64,
    peer: &str,
    phase: &str,
) {
    let _ = writeln!(out, "{rank},{kind},{start},{end},{peer},{phase}");
}

/// Header of the breakdown schema.
pub const BREAKDOWN_CSV_HEADER: &str = "label,compute,shift,reduce,reassign,broadcast,makespan";

/// One stacked bar of a breakdown figure or profile: mean per-rank seconds
/// per phase plus the makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Bar label (`c=4`, `measured`, …).
    pub label: String,
    /// Compute seconds.
    pub compute: f64,
    /// Shift seconds (skew folded in, as in the paper's "shift").
    pub shift: f64,
    /// Reduce seconds.
    pub reduce: f64,
    /// Re-assignment seconds (cutoff methods only; 0 otherwise).
    pub reassign: f64,
    /// Broadcast seconds (negligible; the paper omits it).
    pub broadcast: f64,
    /// Total wall time (virtual makespan for simulations, measured wall
    /// for executions).
    pub makespan: f64,
}

impl BreakdownRow {
    /// Append this row in the breakdown schema.
    pub fn push_csv(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            self.label, self.compute, self.shift, self.reduce, self.reassign, self.broadcast,
            self.makespan
        );
    }

    /// This row as a JSON object (same field names as the CSV columns).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("compute".into(), Json::Num(self.compute)),
            ("shift".into(), Json::Num(self.shift)),
            ("reduce".into(), Json::Num(self.reduce)),
            ("reassign".into(), Json::Num(self.reassign)),
            ("broadcast".into(), Json::Num(self.broadcast)),
            ("makespan".into(), Json::Num(self.makespan)),
        ])
    }
}

/// Render rows as a complete breakdown-schema CSV document.
pub fn breakdown_csv(rows: &[BreakdownRow]) -> String {
    let mut out = String::from(BREAKDOWN_CSV_HEADER);
    out.push('\n');
    for r in rows {
        r.push_csv(&mut out);
    }
    out
}

/// Render rows as a structured JSON document (`{"rows": [...]}`), the
/// machine-readable companion the figure binaries write next to each CSV.
pub fn breakdown_json(rows: &[BreakdownRow]) -> String {
    let arr = Json::Arr(rows.iter().map(BreakdownRow::to_json).collect());
    Json::Obj(vec![("rows".into(), arr)]).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> BreakdownRow {
        BreakdownRow {
            label: "c=2".into(),
            compute: 1.5,
            shift: 0.25,
            reduce: 0.125,
            reassign: 0.0,
            broadcast: 0.01,
            makespan: 2.0,
        }
    }

    #[test]
    fn event_rows_match_schema() {
        let mut s = String::from(EVENT_CSV_HEADER);
        s.push('\n');
        push_event_row(&mut s, 3, "phase", 0.5, 1.5, "", "shift");
        push_event_row(&mut s, 0, "send", 0.0, 0.1, "2", "reduce");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].split(',').count(), 6);
        assert_eq!(lines[1], "3,phase,0.5,1.5,,shift");
        assert_eq!(lines[2], "0,send,0,0.1,2,reduce");
    }

    #[test]
    fn breakdown_csv_has_header_and_rows() {
        let csv = breakdown_csv(&[sample_row()]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], BREAKDOWN_CSV_HEADER);
        assert_eq!(lines[1], "c=2,1.5,0.25,0.125,0,0.01,2");
    }

    #[test]
    fn breakdown_json_parses_back() {
        let json = breakdown_json(&[sample_row()]);
        let v = Json::parse(&json).unwrap();
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("label").unwrap().as_str(), Some("c=2"));
        assert_eq!(rows[0].get("makespan").unwrap().as_f64(), Some(2.0));
    }
}
