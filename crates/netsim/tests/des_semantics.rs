//! Semantics tests of the discrete-event engine: virtual-time causality,
//! conservation of accounted time, and stability under randomized (but
//! well-formed) schedules.

use nbody_comm::Phase;
use nbody_netsim::{simulate, test_machine, CollNet, Op, TeamSpec};
use proptest::prelude::*;

#[test]
fn makespan_equals_slowest_rank_total() {
    // Every clock advance is attributed to a bucket, so per-rank totals
    // must equal final clocks; the makespan is their max.
    let m = test_machine();
    let p = 6;
    let rep = simulate(&m, p, |r| {
        let mut ops = vec![Op::Compute {
            interactions: (r as u64 + 1) * 5,
        }];
        if r == 0 {
            ops.push(Op::Send {
                to: 1,
                bytes: 100,
                phase: Phase::Shift,
            });
        }
        if r == 1 {
            ops.push(Op::Recv {
                from: 0,
                phase: Phase::Shift,
            });
        }
        ops.into_iter()
    });
    let max_total = rep
        .per_rank
        .iter()
        .map(|b| b.total())
        .fold(0.0, f64::max);
    assert!((rep.makespan - max_total).abs() < 1e-12);
}

#[test]
fn causality_message_cannot_arrive_before_send() {
    let m = test_machine();
    // Rank 0 computes for 100s then sends; rank 1 receives immediately.
    // Rank 1's clock must end past 100s even though it did no work.
    let rep = simulate(&m, 2, |r| {
        let ops: Vec<Op> = match r {
            0 => vec![
                Op::Compute { interactions: 100 },
                Op::Send {
                    to: 1,
                    bytes: 0,
                    phase: Phase::Shift,
                },
            ],
            _ => vec![Op::Recv {
                from: 0,
                phase: Phase::Shift,
            }],
        };
        ops.into_iter()
    });
    assert!(rep.per_rank[1].phase(Phase::Shift) > 100.0);
}

#[test]
fn pipeline_overlaps_compute_with_transfer() {
    // With enough local work, transfer latency hides entirely.
    let m = test_machine();
    let rep = simulate(&m, 2, |r| {
        let ops: Vec<Op> = match r {
            0 => vec![
                Op::Send {
                    to: 1,
                    bytes: 1000,
                    phase: Phase::Shift,
                },
                Op::Compute { interactions: 50 },
            ],
            _ => vec![
                Op::Compute { interactions: 50 },
                Op::Recv {
                    from: 0,
                    phase: Phase::Shift,
                },
            ],
        };
        ops.into_iter()
    });
    // Receiver blocked time ~0: arrival (0.3 + 2) < its compute 50.
    assert!(rep.per_rank[1].phase(Phase::Shift) < 1e-9);
}

#[test]
fn collective_cost_charged_once_per_instance() {
    let m = test_machine();
    let team = TeamSpec::new(0, 1, 4);
    let rounds = 5;
    let rep = simulate(&m, 4, |_| {
        (0..rounds)
            .map(|_| Op::Bcast {
                team,
                bytes: 0,
                phase: Phase::Broadcast,
                net: CollNet::Torus,
            })
            .collect::<Vec<_>>()
            .into_iter()
    });
    // All ranks enter at the same time; each bcast costs 2 stages x 1s.
    for b in &rep.per_rank {
        assert!((b.phase(Phase::Broadcast) - (rounds as f64) * 2.0).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_ring_schedules_never_deadlock(
        p in 1usize..32,
        steps in 0usize..20,
        bytes in 0u64..10_000,
        stride_seed in any::<usize>(),
    ) {
        let stride = 1 + stride_seed % p.max(1);
        let m = test_machine();
        let rep = simulate(&m, p, |r| {
            (0..steps)
                .flat_map(move |s| {
                    [
                        Op::Send {
                            to: (r + stride) % p,
                            bytes,
                            phase: Phase::Shift,
                        },
                        Op::Recv {
                            from: (r + p - stride) % p,
                            phase: Phase::Shift,
                        },
                        Op::Compute {
                            interactions: s as u64,
                        },
                    ]
                })
                .collect::<Vec<_>>()
                .into_iter()
        });
        prop_assert_eq!(rep.per_rank.len(), p);
        prop_assert!(rep.makespan.is_finite());
        // Monotone: more steps can only increase the makespan.
        prop_assert!(rep.makespan >= 0.0);
    }

    #[test]
    fn more_bytes_never_reduce_makespan(
        p in 2usize..16,
        small in 0u64..1000,
        extra in 1u64..100_000,
    ) {
        let m = test_machine();
        let run = |bytes: u64| {
            simulate(&m, p, |r| {
                [
                    Op::Send {
                        to: (r + 1) % p,
                        bytes,
                        phase: Phase::Shift,
                    },
                    Op::Recv {
                        from: (r + p - 1) % p,
                        phase: Phase::Shift,
                    },
                ]
                .into_iter()
            })
            .makespan
        };
        prop_assert!(run(small + extra) >= run(small) - 1e-12);
    }

    #[test]
    fn disjoint_team_collectives_compose(
        teams in 1usize..6,
        size in 1usize..5,
        bytes in 0u64..10_000,
    ) {
        let p = teams * size;
        let m = test_machine();
        let rep = simulate(&m, p, |r| {
            let team = TeamSpec::new((r / size) * size, 1, size);
            vec![Op::Reduce {
                team,
                bytes,
                phase: Phase::Reduce,
                net: CollNet::Torus,
            }]
            .into_iter()
        });
        // Identical teams: all ranks pay the same reduce cost.
        let first = rep.per_rank[0].phase(Phase::Reduce);
        for b in &rep.per_rank {
            prop_assert!((b.phase(Phase::Reduce) - first).abs() < 1e-9);
        }
    }
}
