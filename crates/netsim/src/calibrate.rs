//! Machine-model calibration.
//!
//! The Hopper/Intrepid parameter sets ship with published-spec values; this
//! module provides the procedure a user would run to calibrate the model
//! to *their* machine: measure point-to-point latency/bandwidth and
//! compute speed, then least-squares-fit the α/β/γ scalars. Applied here
//! to the in-process `ThreadComm` transport (the only "network" this
//! reproduction has), but the fitting math is transport-agnostic.

use nbody_comm::{run_ranks, Communicator};

use crate::machine::Machine;

/// Least-squares fit of `t = alpha + beta * x` to `(x, t)` samples.
/// Returns `(alpha, beta)`; degenerate inputs (fewer than two distinct
/// `x`) fit a flat line through the mean.
pub fn fit_affine(samples: &[(f64, f64)]) -> (f64, f64) {
    assert!(!samples.is_empty(), "no samples to fit");
    let n = samples.len() as f64;
    let mean_x: f64 = samples.iter().map(|s| s.0).sum::<f64>() / n;
    let mean_t: f64 = samples.iter().map(|s| s.1).sum::<f64>() / n;
    let var_x: f64 = samples.iter().map(|s| (s.0 - mean_x).powi(2)).sum();
    if var_x == 0.0 {
        return (mean_t, 0.0);
    }
    let cov: f64 = samples
        .iter()
        .map(|s| (s.0 - mean_x) * (s.1 - mean_t))
        .sum();
    let beta = cov / var_x;
    let alpha = mean_t - beta * mean_x;
    (alpha, beta)
}

/// Least-squares fit of `t = gamma * x` (line through the origin).
pub fn fit_linear(samples: &[(f64, f64)]) -> f64 {
    assert!(!samples.is_empty(), "no samples to fit");
    let num: f64 = samples.iter().map(|s| s.0 * s.1).sum();
    let den: f64 = samples.iter().map(|s| s.0 * s.0).sum();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Measure ping-pong halves on the threaded transport: one `(bytes, secs)`
/// sample per message size, each averaged over `reps` round trips.
pub fn measure_p2p(sizes: &[usize], reps: usize) -> Vec<(f64, f64)> {
    assert!(reps > 0);
    sizes
        .iter()
        .map(|&bytes| {
            let secs = run_ranks(2, |comm| {
                let payload = vec![0u8; bytes];
                // Warm-up round.
                if comm.rank() == 0 {
                    comm.send(1, 0, &payload);
                    let _ = comm.recv::<u8>(1, 0);
                } else {
                    let got = comm.recv::<u8>(0, 0);
                    comm.send(0, 0, &got);
                }
                let start = std::time::Instant::now();
                for tag in 1..=reps as u64 {
                    if comm.rank() == 0 {
                        comm.send(1, tag, &payload);
                        let _ = comm.recv::<u8>(1, tag);
                    } else {
                        let got = comm.recv::<u8>(0, tag);
                        comm.send(0, tag, &got);
                    }
                }
                // Half the round trip = one direction.
                start.elapsed().as_secs_f64() / (2 * reps) as f64
            })[0];
            (bytes as f64, secs)
        })
        .collect()
}

/// Calibrate a machine model to the current host: α/β from ping-pong
/// samples, γ from `(interactions, secs)` kernel samples supplied by the
/// caller (the physics crate owns the kernel; pass its timings in). All
/// other knobs are copied from `template`.
pub fn calibrate_host(template: &Machine, gamma_samples: &[(f64, f64)]) -> Machine {
    let p2p = measure_p2p(&[64, 1024, 16 * 1024, 256 * 1024], 50);
    let (alpha, beta) = fit_affine(&p2p);
    let mut m = template.clone();
    m.name = "calibrated host";
    m.alpha = alpha.max(1e-9);
    m.beta = beta.max(0.0);
    if !gamma_samples.is_empty() {
        m.gamma = fit_linear(gamma_samples).max(1e-12);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::hopper;

    #[test]
    fn affine_fit_recovers_exact_line() {
        let samples: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64 * 1000.0;
                (x, 3e-6 + 2.5e-9 * x)
            })
            .collect();
        let (a, b) = fit_affine(&samples);
        assert!((a - 3e-6).abs() < 1e-12, "alpha {a}");
        assert!((b - 2.5e-9).abs() < 1e-15, "beta {b}");
    }

    #[test]
    fn affine_fit_handles_degenerate_input() {
        let (a, b) = fit_affine(&[(5.0, 2.0), (5.0, 4.0)]);
        assert_eq!(a, 3.0);
        assert_eq!(b, 0.0);
    }

    #[test]
    fn linear_fit_recovers_slope() {
        let samples: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 4e-8 * i as f64)).collect();
        assert!((fit_linear(&samples) - 4e-8).abs() < 1e-20);
        assert_eq!(fit_linear(&[(0.0, 0.0)]), 0.0);
    }

    #[test]
    fn p2p_measurement_scales_with_size() {
        let samples = measure_p2p(&[64, 1 << 20], 10);
        assert_eq!(samples.len(), 2);
        assert!(samples.iter().all(|&(_, t)| t > 0.0));
        // A 1 MiB copy through a channel must cost more than 64 B.
        assert!(samples[1].1 > samples[0].1, "{samples:?}");
    }

    #[test]
    fn host_calibration_produces_usable_machine() {
        let gamma_samples = vec![(1e6, 0.02), (2e6, 0.04)];
        let m = calibrate_host(&hopper(), &gamma_samples);
        assert!(m.alpha > 0.0 && m.alpha < 1e-2, "alpha {}", m.alpha);
        assert!(m.beta >= 0.0);
        assert!((m.gamma - 2e-8).abs() < 1e-12);
        // Template knobs preserved.
        assert_eq!(m.cores_per_node, hopper().cores_per_node);
    }
}
