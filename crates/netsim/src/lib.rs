//! # nbody-netsim
//!
//! A discrete-event cluster simulator for the reproduction of
//! *“A Communication-Optimal N-Body Algorithm for Direct Interactions”*
//! (IPDPS 2013).
//!
//! The paper's evaluation ran on 24,576 cores of Hopper (Cray XE-6) and
//! 32,768 cores of Intrepid (IBM BlueGene/P) — hardware this reproduction
//! substitutes with simulation: each algorithm in `ca-nbody` emits its exact
//! per-rank communication schedule (verified against instrumented
//! executions), and this crate replays that schedule against a calibrated
//! machine cost model with a 3D torus topology, software tree collectives
//! with a saturation term, BlueGene/P's hardware collective network, and
//! the DCMF bidirectional broadcast-shift optimization. The result is the
//! per-phase time breakdown the paper's figures plot.

#![warn(missing_docs)]

pub mod calibrate;
pub mod des;
pub mod fasthash;
pub mod machine;
pub mod op;
pub mod report;
pub mod topology;
pub mod trace;

pub use des::{simulate, simulate_with_observer};
pub use trace::{simulate_traced, Trace, TraceEvent, TraceKind};
pub use calibrate::{calibrate_host, fit_affine, fit_linear, measure_p2p};
pub use machine::{hopper, intrepid, test_machine, Machine, TreeNetwork};
pub use op::{CollNet, Op, TeamSpec};
pub use report::{RankBreakdown, SimReport};
pub use topology::Torus;
