//! 3D torus topology: node placement and hop distances.
//!
//! Both experimental machines connect nodes in a 3D torus (Hopper via Cray
//! Gemini, Intrepid via the BlueGene/P torus). Ranks map to nodes
//! contiguously (`cores_per_node` ranks per node, the default MPI
//! placement), nodes map to torus coordinates row-major, and message
//! latency grows with the minimal hop distance.

/// A 3D torus of `dims[0] * dims[1] * dims[2]` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus {
    /// Torus dimensions.
    pub dims: [usize; 3],
}

impl Torus {
    /// A torus with the given dimensions.
    pub fn new(dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "degenerate torus {dims:?}");
        Torus { dims }
    }

    /// Factor `nodes` into a near-cubic torus (largest factor last).
    /// Non-factorable remainders fall back to a elongated shape; the exact
    /// shape only perturbs hop counts by small constants.
    pub fn fit(nodes: usize) -> Self {
        assert!(nodes > 0);
        let mut best = [1, 1, nodes];
        let mut best_score = usize::MAX;
        let mut a = 1;
        while a * a * a <= nodes {
            if nodes.is_multiple_of(a) {
                let rest = nodes / a;
                let mut b = a;
                while b * b <= rest {
                    if rest.is_multiple_of(b) {
                        let c = rest / b;
                        // Prefer balanced shapes: minimize max - min.
                        let score = c - a;
                        if score < best_score {
                            best_score = score;
                            best = [a, b, c];
                        }
                    }
                    b += 1;
                }
            }
            a += 1;
        }
        Torus::new(best)
    }

    /// Total nodes.
    pub fn nodes(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Coordinates of node `id` (row-major).
    pub fn coords(&self, id: usize) -> [usize; 3] {
        debug_assert!(id < self.nodes());
        let [dx, dy, _] = self.dims;
        [id % dx, (id / dx) % dy, id / (dx * dy)]
    }

    /// Minimal hop distance between two nodes (per-axis wrap-around).
    pub fn hops(&self, a: usize, b: usize) -> usize {
        self.hops_coords(self.coords(a), self.coords(b))
    }

    /// Hop distance between two precomputed coordinate triples.
    #[inline]
    pub fn hops_coords(&self, ca: [usize; 3], cb: [usize; 3]) -> usize {
        (0..3)
            .map(|i| {
                let d = ca[i].abs_diff(cb[i]);
                d.min(self.dims[i] - d)
            })
            .sum()
    }

    /// Network diameter (maximum hop distance).
    pub fn diameter(&self) -> usize {
        self.dims.iter().map(|&d| d / 2).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_produces_exact_factorization() {
        for nodes in [1, 2, 8, 64, 100, 1024, 683, 1365] {
            let t = Torus::fit(nodes);
            assert_eq!(t.nodes(), nodes, "{:?}", t.dims);
        }
    }

    #[test]
    fn fit_prefers_cubes() {
        assert_eq!(Torus::fit(64).dims, [4, 4, 4]);
        assert_eq!(Torus::fit(8).dims, [2, 2, 2]);
        assert_eq!(Torus::fit(512).dims, [8, 8, 8]);
    }

    #[test]
    fn coords_roundtrip() {
        let t = Torus::new([3, 4, 5]);
        for id in 0..t.nodes() {
            let [x, y, z] = t.coords(id);
            assert_eq!(x + y * 3 + z * 12, id);
        }
    }

    #[test]
    fn hops_wrap_around() {
        let t = Torus::new([8, 1, 1]);
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(0, 7), 1, "wraps around");
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.hops(2, 2), 0);
    }

    #[test]
    fn hops_symmetric_and_triangle() {
        let t = Torus::new([4, 4, 4]);
        for a in [0, 13, 37, 63] {
            for b in [0, 5, 21, 62] {
                assert_eq!(t.hops(a, b), t.hops(b, a));
                for c in [7, 31] {
                    assert!(t.hops(a, b) <= t.hops(a, c) + t.hops(c, b));
                }
            }
        }
    }

    #[test]
    fn diameter_bounds_hops() {
        let t = Torus::new([4, 6, 8]);
        let d = t.diameter();
        assert_eq!(d, 2 + 3 + 4);
        for a in (0..t.nodes()).step_by(17) {
            for b in (0..t.nodes()).step_by(13) {
                assert!(t.hops(a, b) <= d);
            }
        }
    }
}
