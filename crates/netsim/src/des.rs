//! The discrete-event engine.
//!
//! Executes one lazy [`Op`] program per rank against a [`Machine`] cost
//! model, tracking a virtual clock per rank. Point-to-point messages are
//! eagerly buffered (like the real runtime in `nbody-comm`), receives block
//! until the matching arrival, and collectives synchronize their team at
//! `max(entry clocks) + collective cost`. The engine is a cooperative
//! scheduler: it advances a rank until it blocks, then switches — total
//! work is linear in the number of ops, so full paper-scale schedules
//! (tens of thousands of ranks, ~10⁹ ops) are feasible on one machine.

use std::collections::hash_map::Entry;
use std::collections::VecDeque;

use crate::fasthash::FastMap;

use crate::machine::Machine;
use crate::op::{Op, TeamSpec};
use crate::report::{RankBreakdown, SimReport};
use crate::trace::{TraceEvent, TraceKind};

/// What a rank is currently blocked on.
enum Waiting {
    Msg { from: u32 },
    Collective,
    Done,
}

struct RankState<I> {
    clock: f64,
    breakdown: RankBreakdown,
    prog: I,
    waiting: Option<Waiting>,
    /// Phase of the pending recv (for blocked-time attribution).
    pending_phase: usize,
    /// Clock when the pending recv was posted (for tracing).
    pending_start: f64,
}

struct CollState {
    /// (rank, entry clock) of members that have arrived.
    entries: Vec<(u32, f64)>,
    /// Cost to apply once everyone arrives, computed by the first entrant.
    cost: f64,
    phase: usize,
    expected: usize,
}

/// Simulate `p` rank programs on `machine`. `programs(rank)` must yield the
/// rank's op stream; streams are consumed lazily.
///
/// Panics with a diagnostic if the schedule deadlocks (a rank waits on a
/// message or collective that can never complete).
pub fn simulate<I, G>(machine: &Machine, p: usize, programs: G) -> SimReport
where
    I: Iterator<Item = Op>,
    G: Fn(usize) -> I,
{
    simulate_with_observer(machine, p, programs, &mut |_| {})
}

/// [`simulate`] with an event observer invoked as each activity completes
/// (see [`simulate_traced`](crate::trace::simulate_traced) for the
/// user-facing wrapper). The observer is generic so the no-op case
/// compiles away.
pub fn simulate_with_observer<I, G, O>(
    machine: &Machine,
    p: usize,
    programs: G,
    observe: &mut O,
) -> SimReport
where
    I: Iterator<Item = Op>,
    G: Fn(usize) -> I,
    O: FnMut(TraceEvent),
{
    assert!(p > 0);
    let torus = machine.torus(p);
    // Hot-path cache: node id and torus coordinates per rank.
    let rank_node: Vec<usize> = (0..p).map(|r| machine.node_of(r) % torus.nodes()).collect();
    let rank_coords: Vec<[usize; 3]> = rank_node.iter().map(|&n| torus.coords(n)).collect();
    let mut states: Vec<RankState<I>> = (0..p)
        .map(|r| RankState {
            clock: 0.0,
            breakdown: RankBreakdown::default(),
            prog: programs(r),
            waiting: None,
            pending_phase: 0,
            pending_start: 0.0,
        })
        .collect();

    // In-flight messages: (from, to) -> arrival times in FIFO send order.
    let mut msgs: FastMap<(u32, u32), VecDeque<f64>> = FastMap::default();
    // Ranks blocked on a message from a specific source.
    let mut msg_waiters: FastMap<(u32, u32), u32> = FastMap::default();
    // Open collective instances per team.
    let mut colls: FastMap<TeamSpec, CollState> = FastMap::default();

    let mut runnable: Vec<u32> = (0..p as u32).rev().collect();
    let mut finished = 0usize;

    while let Some(rank) = runnable.pop() {
        let r = rank as usize;
        // If this rank was woken from a blocked receive, complete it now:
        // the message that woke it must be in flight.
        if let Some(Waiting::Msg { from }) = states[r].waiting.take() {
            let arrival = msgs
                .get_mut(&(from, rank))
                .and_then(VecDeque::pop_front)
                .expect("rank woken without a matching message");
            let blocked = (arrival - states[r].clock).max(0.0);
            states[r].clock += blocked;
            let phase = states[r].pending_phase;
            states[r].breakdown.comm[phase] += blocked;
            observe(TraceEvent {
                rank,
                start: states[r].pending_start,
                end: states[r].clock,
                kind: TraceKind::Recv {
                    from,
                    phase: nbody_comm::ALL_PHASES[phase],
                },
            });
        }
        loop {
            let op = match states[r].prog.next() {
                Some(op) => op,
                None => {
                    states[r].waiting = Some(Waiting::Done);
                    finished += 1;
                    break;
                }
            };
            match op {
                Op::Compute { interactions } => {
                    let t = machine.compute_time(interactions);
                    let start = states[r].clock;
                    states[r].clock += t;
                    states[r].breakdown.compute += t;
                    observe(TraceEvent {
                        rank,
                        start,
                        end: states[r].clock,
                        kind: TraceKind::Compute,
                    });
                }
                Op::Send { to, bytes, phase } => {
                    debug_assert!(to < p, "send to invalid rank {to}");
                    let overhead = machine.send_overhead();
                    let start = states[r].clock;
                    states[r].clock += overhead;
                    states[r].breakdown.comm[phase.index()] += overhead;
                    observe(TraceEvent {
                        rank,
                        start,
                        end: states[r].clock,
                        kind: TraceKind::Send {
                            to: to as u32,
                            bytes,
                            phase,
                        },
                    });
                    let arrival = states[r].clock
                        + machine.wire_time_cached(
                            &torus,
                            rank_node[r],
                            rank_coords[r],
                            rank_node[to],
                            rank_coords[to],
                            bytes,
                            phase,
                        );
                    let key = (rank, to as u32);
                    msgs.entry(key).or_default().push_back(arrival);
                    if let Some(waiter) = msg_waiters.remove(&key) {
                        debug_assert_eq!(waiter, to as u32);
                        runnable.push(waiter);
                    }
                }
                Op::Recv { from, phase } => {
                    let key = (from as u32, rank);
                    match msgs.get_mut(&key).and_then(VecDeque::pop_front) {
                        Some(arrival) => {
                            let start = states[r].clock;
                            let blocked = (arrival - states[r].clock).max(0.0);
                            states[r].clock += blocked;
                            states[r].breakdown.comm[phase.index()] += blocked;
                            observe(TraceEvent {
                                rank,
                                start,
                                end: states[r].clock,
                                kind: TraceKind::Recv {
                                    from: from as u32,
                                    phase,
                                },
                            });
                        }
                        None => {
                            // Block until the sender posts.
                            states[r].waiting = Some(Waiting::Msg { from: from as u32 });
                            states[r].pending_phase = phase.index();
                            states[r].pending_start = states[r].clock;
                            let prev = msg_waiters.insert(key, rank);
                            debug_assert!(prev.is_none(), "two ranks waiting on one channel");
                            break;
                        }
                    }
                }
                Op::Bcast { team, bytes, phase, net } => {
                    let cost = machine.collective_time(team.count, bytes, net, false);
                    enter_collective(
                        &mut states, &mut colls, &mut runnable, rank, team, cost, phase.index(),
                        observe,
                    );
                    if matches!(states[r].waiting, Some(Waiting::Collective)) {
                        break;
                    }
                }
                Op::Reduce { team, bytes, phase, net } => {
                    let cost = machine.collective_time(team.count, bytes, net, true);
                    enter_collective(
                        &mut states, &mut colls, &mut runnable, rank, team, cost, phase.index(),
                        observe,
                    );
                    if matches!(states[r].waiting, Some(Waiting::Collective)) {
                        break;
                    }
                }
                Op::Allgather { team, bytes_per_member, phase, net } => {
                    let cost = machine.allgather_time(team.count, bytes_per_member, net);
                    enter_collective(
                        &mut states, &mut colls, &mut runnable, rank, team, cost, phase.index(),
                        observe,
                    );
                    if matches!(states[r].waiting, Some(Waiting::Collective)) {
                        break;
                    }
                }
            }
        }

        if runnable.is_empty() && finished < p {
            // Re-scan: a rank unblocked by the last action of another may
            // still be queued; if truly nothing is runnable, we deadlocked.
            let stuck: Vec<usize> = states
                .iter()
                .enumerate()
                .filter(|(_, s)| !matches!(s.waiting, Some(Waiting::Done)))
                .map(|(i, _)| i)
                .take(8)
                .collect();
            if !stuck.is_empty() {
                panic!(
                    "netsim deadlock: {} of {} ranks finished; stuck ranks (first 8): {:?}",
                    finished, p, stuck
                );
            }
        }
    }

    let makespan = states.iter().map(|s| s.clock).fold(0.0, f64::max);
    SimReport {
        makespan,
        per_rank: states.into_iter().map(|s| s.breakdown).collect(),
    }
}

/// Register `rank` in the open collective instance for `team`. If the rank
/// completes the team, release everyone at `max(entries) + cost`; otherwise
/// mark the rank blocked.
#[allow(clippy::too_many_arguments)]
fn enter_collective<I, O>(
    states: &mut [RankState<I>],
    colls: &mut FastMap<TeamSpec, CollState>,
    runnable: &mut Vec<u32>,
    rank: u32,
    team: TeamSpec,
    cost: f64,
    phase: usize,
    observe: &mut O,
) where
    I: Iterator<Item = Op>,
    O: FnMut(TraceEvent),
{
    debug_assert!(team.contains(rank as usize), "rank {rank} not in {team:?}");
    if team.count == 1 {
        return; // trivially complete, zero cost
    }
    let entry_clock = states[rank as usize].clock;
    let state = match colls.entry(team) {
        Entry::Occupied(e) => e.into_mut(),
        Entry::Vacant(e) => e.insert(CollState {
            entries: Vec::with_capacity(team.count),
            cost,
            phase,
            expected: team.count,
        }),
    };
    debug_assert_eq!(state.phase, phase, "phase mismatch inside one collective");
    state.entries.push((rank, entry_clock));

    if state.entries.len() == state.expected {
        let state = colls.remove(&team).unwrap();
        let release = state
            .entries
            .iter()
            .map(|&(_, t)| t)
            .fold(0.0, f64::max)
            + state.cost;
        for (member, entry) in state.entries {
            let s = &mut states[member as usize];
            s.breakdown.comm[state.phase] += release - entry;
            s.clock = release;
            observe(TraceEvent {
                rank: member,
                start: entry,
                end: release,
                kind: TraceKind::Collective {
                    members: team.count as u32,
                    phase: nbody_comm::ALL_PHASES[state.phase],
                },
            });
            if member != rank {
                s.waiting = None;
                runnable.push(member);
            }
        }
    } else {
        states[rank as usize].waiting = Some(Waiting::Collective);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::test_machine;
    use crate::op::CollNet;
    use nbody_comm::Phase;

    fn send(to: usize, bytes: u64) -> Op {
        Op::Send {
            to,
            bytes,
            phase: Phase::Shift,
        }
    }

    fn recv(from: usize) -> Op {
        Op::Recv {
            from,
            phase: Phase::Shift,
        }
    }

    #[test]
    fn compute_only() {
        let m = test_machine();
        let rep = simulate(&m, 2, |r| {
            vec![Op::Compute {
                interactions: (r as u64 + 1) * 10,
            }]
            .into_iter()
        });
        assert_eq!(rep.per_rank[0].compute, 10.0);
        assert_eq!(rep.per_rank[1].compute, 20.0);
        assert_eq!(rep.makespan, 20.0);
    }

    #[test]
    fn message_latency_blocks_receiver() {
        let m = test_machine(); // alpha=1 (0.3 send overhead + wire), beta=0.001
        let rep = simulate(&m, 2, |r| {
            let prog: Vec<Op> = match r {
                0 => vec![send(1, 1000)],
                _ => vec![recv(0)],
            };
            prog.into_iter()
        });
        // Sender: 0.3 overhead. Arrival: 0.3 + (1 + 1000*0.001) = 2.3.
        assert!((rep.per_rank[0].phase(Phase::Shift) - 0.3).abs() < 1e-12);
        assert!((rep.per_rank[1].phase(Phase::Shift) - 2.3).abs() < 1e-12);
        assert!((rep.makespan - 2.3).abs() < 1e-12);
    }

    #[test]
    fn recv_after_arrival_does_not_block() {
        let m = test_machine();
        let rep = simulate(&m, 2, |r| {
            let prog: Vec<Op> = match r {
                0 => vec![send(1, 0)],
                _ => vec![Op::Compute { interactions: 100 }, recv(0)],
            };
            prog.into_iter()
        });
        // Receiver computed 100s; message arrived at 1.3 — no blocking.
        assert_eq!(rep.per_rank[1].phase(Phase::Shift), 0.0);
        assert_eq!(rep.makespan, 100.0);
    }

    #[test]
    fn ring_shift_pipeline() {
        let m = test_machine();
        let p = 8;
        let steps = 5;
        let rep = simulate(&m, p, |r| {
            let mut prog = Vec::new();
            for _ in 0..steps {
                prog.push(send((r + 1) % p, 100));
                prog.push(recv((r + p - 1) % p));
                prog.push(Op::Compute { interactions: 3 });
            }
            prog.into_iter()
        });
        // Symmetric ring: all ranks finish together.
        let totals: Vec<f64> = rep.per_rank.iter().map(|b| b.total()).collect();
        for t in &totals {
            assert!((t - totals[0]).abs() < 1e-9, "{totals:?}");
        }
        assert!(rep.makespan > 0.0);
    }

    #[test]
    fn fifo_matching_per_pair() {
        // Two sends before any recv: the receiver must see them in order
        // (arrival of the first <= of the second with equal sizes).
        let m = test_machine();
        let rep = simulate(&m, 2, |r| {
            let prog: Vec<Op> = match r {
                0 => vec![send(1, 10), send(1, 10)],
                _ => vec![recv(0), recv(0)],
            };
            prog.into_iter()
        });
        assert!(rep.makespan > 0.0);
    }

    #[test]
    fn collective_synchronizes_team() {
        let m = test_machine();
        let team = TeamSpec::new(0, 1, 4);
        let rep = simulate(&m, 4, |r| {
            vec![
                Op::Compute {
                    interactions: (r as u64) * 10,
                },
                Op::Bcast {
                    team,
                    bytes: 1000,
                    phase: Phase::Broadcast,
                    net: CollNet::Torus,
                },
            ]
            .into_iter()
        });
        // Entry clocks 0,10,20,30; cost = 2 stages * (1 + 1) = 4.
        let release = 30.0 + 4.0;
        for (r, b) in rep.per_rank.iter().enumerate() {
            let expect_blocked = release - (r as f64) * 10.0;
            assert!(
                (b.phase(Phase::Broadcast) - expect_blocked).abs() < 1e-9,
                "rank {r}: {} vs {expect_blocked}",
                b.phase(Phase::Broadcast)
            );
        }
        assert!((rep.makespan - release).abs() < 1e-9);
    }

    #[test]
    fn disjoint_teams_do_not_interfere() {
        let m = test_machine();
        let rep = simulate(&m, 4, |r| {
            let team = if r < 2 {
                TeamSpec::new(0, 1, 2)
            } else {
                TeamSpec::new(2, 1, 2)
            };
            vec![Op::Reduce {
                team,
                bytes: 0,
                phase: Phase::Reduce,
                net: CollNet::Torus,
            }]
            .into_iter()
        });
        // One stage of latency 1 each.
        for b in &rep.per_rank {
            assert!((b.phase(Phase::Reduce) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn strided_team_collective() {
        let m = test_machine();
        // Column teams on a 2x2 grid: {0,2} and {1,3}.
        let rep = simulate(&m, 4, |r| {
            let team = TeamSpec::new(r % 2, 2, 2);
            vec![Op::Bcast {
                team,
                bytes: 0,
                phase: Phase::Broadcast,
                net: CollNet::Torus,
            }]
            .into_iter()
        });
        assert!(rep.makespan > 0.0);
    }

    #[test]
    fn consecutive_collectives_same_team() {
        let m = test_machine();
        let team = TeamSpec::new(0, 1, 3);
        let rep = simulate(&m, 3, |_| {
            vec![
                Op::Bcast {
                    team,
                    bytes: 0,
                    phase: Phase::Broadcast,
                    net: CollNet::Torus,
                },
                Op::Reduce {
                    team,
                    bytes: 0,
                    phase: Phase::Reduce,
                    net: CollNet::Torus,
                },
            ]
            .into_iter()
        });
        for b in &rep.per_rank {
            assert!(b.phase(Phase::Broadcast) > 0.0);
            assert!(b.phase(Phase::Reduce) > 0.0);
        }
    }

    #[test]
    fn solo_collective_is_free() {
        let m = test_machine();
        let rep = simulate(&m, 1, |r| {
            vec![Op::Bcast {
                team: TeamSpec::solo(r),
                bytes: 1 << 30,
                phase: Phase::Broadcast,
                net: CollNet::Torus,
            }]
            .into_iter()
        });
        assert_eq!(rep.makespan, 0.0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_detected() {
        let m = test_machine();
        simulate(&m, 2, |r| {
            let prog: Vec<Op> = match r {
                0 => vec![recv(1)],
                _ => vec![recv(0)],
            };
            prog.into_iter()
        });
    }

    #[test]
    fn large_scale_smoke() {
        // 4096 ranks, ring pipeline: exercises the scheduler's scalability.
        let m = test_machine();
        let p = 4096;
        let rep = simulate(&m, p, |r| {
            (0..8)
                .flat_map(move |_| {
                    [
                        send((r + 1) % p, 52),
                        recv((r + p - 1) % p),
                        Op::Compute { interactions: 10 },
                    ]
                })
                .collect::<Vec<_>>()
                .into_iter()
        });
        assert_eq!(rep.per_rank.len(), p);
        assert!(rep.makespan > 0.0);
    }
}
