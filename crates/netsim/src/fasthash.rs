//! A minimal multiplicative hasher for the simulator's hot maps.
//!
//! The DES performs one or two hash-map operations per simulated message;
//! at paper scale (10⁹ ops) SipHash dominates the profile. Keys here are
//! small integers under our control (rank pairs, team specs), so a
//! Fibonacci-style multiply-xor hash is collision-adequate and several
//! times faster. Not DoS-resistant — never use for untrusted keys.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over the written bytes/ints.
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

const K: u64 = 0x9E37_79B9_7F4A_7C15; // 2^64 / phi

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche (from splitmix64).
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(K);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.state = (self.state ^ u64::from(i)).wrapping_mul(K);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state ^ i).wrapping_mul(K);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuild>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FastBuild::default().hash_one(v)
    }

    #[test]
    fn distinct_small_keys_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for a in 0u32..100 {
            for b in 0u32..100 {
                seen.insert(hash_of((a, b)));
            }
        }
        assert_eq!(seen.len(), 10_000, "no collisions on a 100x100 grid");
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of((3u32, 4u32)), hash_of((3u32, 4u32)));
        assert_ne!(hash_of((3u32, 4u32)), hash_of((4u32, 3u32)));
    }

    #[test]
    fn map_works() {
        let mut m: FastMap<(u32, u32), u64> = FastMap::default();
        for i in 0..1000u32 {
            m.insert((i, i + 1), u64::from(i));
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(10, 11)], 10);
    }
}
