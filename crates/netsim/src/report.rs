//! Simulation output: per-rank and aggregated phase breakdowns.

use nbody_comm::{Phase, ALL_PHASES, PHASE_COUNT};

/// Time buckets for one rank, in seconds of virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankBreakdown {
    /// Time spent in force evaluation.
    pub compute: f64,
    /// Communication time per [`Phase`] index (send overheads plus time
    /// blocked waiting for messages/collectives).
    pub comm: [f64; PHASE_COUNT],
}

impl RankBreakdown {
    /// Total time accounted to this rank.
    pub fn total(&self) -> f64 {
        self.compute + self.comm.iter().sum::<f64>()
    }

    /// Communication time in one phase.
    pub fn phase(&self, phase: Phase) -> f64 {
        self.comm[phase.index()]
    }

    /// Total communication time.
    pub fn comm_total(&self) -> f64 {
        self.comm.iter().sum()
    }

    fn add(&mut self, other: &RankBreakdown) {
        self.compute += other.compute;
        for (a, b) in self.comm.iter_mut().zip(&other.comm) {
            *a += b;
        }
    }

    fn scale(&mut self, s: f64) {
        self.compute *= s;
        for a in self.comm.iter_mut() {
            *a *= s;
        }
    }
}

/// The result of simulating one schedule.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual time at which the last rank finished.
    pub makespan: f64,
    /// Per-rank time breakdowns.
    pub per_rank: Vec<RankBreakdown>,
}

impl SimReport {
    /// Mean breakdown over ranks: the stacked-bar decomposition used for
    /// the paper-style figures (bars sum to the average busy+blocked time).
    pub fn mean(&self) -> RankBreakdown {
        let mut acc = RankBreakdown::default();
        for r in &self.per_rank {
            acc.add(r);
        }
        acc.scale(1.0 / self.per_rank.len().max(1) as f64);
        acc
    }

    /// Breakdown of the rank on the critical path (maximum total time).
    pub fn critical(&self) -> RankBreakdown {
        self.per_rank
            .iter()
            .copied()
            .max_by(|a, b| a.total().total_cmp(&b.total()))
            .unwrap_or_default()
    }

    /// Maximum time spent in a phase by any rank.
    pub fn max_phase(&self, phase: Phase) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.phase(phase))
            .fold(0.0, f64::max)
    }

    /// Pretty one-line summary (for harness logs).
    pub fn summary(&self) -> String {
        let m = self.mean();
        let mut s = format!(
            "makespan {:.6}s | compute {:.6}s",
            self.makespan, m.compute
        );
        for ph in ALL_PHASES {
            let v = m.phase(ph);
            if v > 0.0 {
                s.push_str(&format!(" | {} {:.6}s", ph.label(), v));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_aggregates() {
        let mut a = RankBreakdown {
            compute: 1.0,
            ..Default::default()
        };
        a.comm[Phase::Shift.index()] = 0.5;
        let mut b = RankBreakdown {
            compute: 3.0,
            ..Default::default()
        };
        b.comm[Phase::Reduce.index()] = 1.5;

        assert_eq!(a.total(), 1.5);
        assert_eq!(b.comm_total(), 1.5);

        let rep = SimReport {
            makespan: 4.5,
            per_rank: vec![a, b],
        };
        let mean = rep.mean();
        assert_eq!(mean.compute, 2.0);
        assert_eq!(mean.phase(Phase::Shift), 0.25);
        assert_eq!(mean.phase(Phase::Reduce), 0.75);
        let crit = rep.critical();
        assert_eq!(crit.compute, 3.0);
        assert_eq!(rep.max_phase(Phase::Shift), 0.5);
        assert!(rep.summary().contains("makespan"));
    }
}
