//! The operation vocabulary of simulated rank programs.
//!
//! A distributed algorithm is described to the simulator as one lazy
//! [`Op`] stream per rank — its *communication schedule*. The schedule
//! generators in `ca-nbody` emit exactly the operations the executable
//! algorithms perform (verified against instrumented runs), so simulated
//! costs reflect the true communication pattern at full paper scale.

use nbody_comm::Phase;

/// A compact description of a collective's participant set: ranks
/// `base, base + stride, …` (`count` of them). Column (team) collectives
/// have `stride = teams`; row collectives have `stride = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TeamSpec {
    /// First participating rank.
    pub base: usize,
    /// Distance between consecutive participants.
    pub stride: usize,
    /// Number of participants.
    pub count: usize,
}

impl TeamSpec {
    /// The participant set `{base + i*stride}` for `i < count`.
    pub fn new(base: usize, stride: usize, count: usize) -> Self {
        assert!(count > 0, "empty team");
        assert!(stride > 0 || count == 1, "zero stride with multiple members");
        TeamSpec {
            base,
            stride,
            count,
        }
    }

    /// Single-rank team (collectives on it are free).
    pub fn solo(rank: usize) -> Self {
        TeamSpec::new(rank, 1, 1)
    }

    /// Whether `rank` belongs to the team.
    pub fn contains(&self, rank: usize) -> bool {
        if rank < self.base {
            return false;
        }
        let d = rank - self.base;
        if self.count == 1 {
            return d == 0;
        }
        d.is_multiple_of(self.stride) && d / self.stride < self.count
    }

    /// Iterate the member ranks.
    pub fn members(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.count).map(move |i| self.base + i * self.stride)
    }
}

/// Which network services a collective (Fig. 2c/2d's `tree` vs `no-tree`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CollNet {
    /// Software tree over the torus (the default everywhere).
    #[default]
    Torus,
    /// The dedicated hardware collective network (BlueGene/P's tree);
    /// falls back to the torus on machines without one.
    HwTree,
}

/// One step of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Evaluate `interactions` pairwise forces locally.
    Compute {
        /// Number of force evaluations.
        interactions: u64,
    },
    /// Buffered point-to-point send.
    Send {
        /// Destination rank.
        to: usize,
        /// Message payload in bytes.
        bytes: u64,
        /// Phase the cost is attributed to.
        phase: Phase,
    },
    /// Blocking receive of the next message from `from`.
    Recv {
        /// Source rank.
        from: usize,
        /// Phase the blocked time is attributed to.
        phase: Phase,
    },
    /// Broadcast of `bytes` within `team` (all members must emit it).
    Bcast {
        /// Participants.
        team: TeamSpec,
        /// Broadcast payload in bytes.
        bytes: u64,
        /// Phase attribution.
        phase: Phase,
        /// Network used.
        net: CollNet,
    },
    /// Element-wise reduction of `bytes` within `team`.
    Reduce {
        /// Participants.
        team: TeamSpec,
        /// Reduced payload in bytes.
        bytes: u64,
        /// Phase attribution.
        phase: Phase,
        /// Network used.
        net: CollNet,
    },
    /// Allgather: every member contributes `bytes_per_member` and receives
    /// the concatenation. Used by the naive (`tree`) baseline.
    Allgather {
        /// Participants.
        team: TeamSpec,
        /// Contribution per member, in bytes.
        bytes_per_member: u64,
        /// Phase attribution.
        phase: Phase,
        /// Network used.
        net: CollNet,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teamspec_membership() {
        let t = TeamSpec::new(3, 4, 3); // {3, 7, 11}
        assert!(t.contains(3) && t.contains(7) && t.contains(11));
        assert!(!t.contains(4) && !t.contains(15) && !t.contains(0));
        assert_eq!(t.members().collect::<Vec<_>>(), vec![3, 7, 11]);
    }

    #[test]
    fn solo_team() {
        let t = TeamSpec::solo(5);
        assert_eq!(t.members().collect::<Vec<_>>(), vec![5]);
        assert!(t.contains(5));
        assert!(!t.contains(6));
    }

    #[test]
    #[should_panic(expected = "empty team")]
    fn empty_team_rejected() {
        TeamSpec::new(0, 1, 0);
    }
}
