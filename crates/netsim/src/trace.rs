//! Event traces of simulated executions.
//!
//! [`simulate_traced`] records a bounded per-rank timeline alongside the
//! normal report — the tool for debugging schedules (who waited on whom,
//! when a collective released) and for visualizing pipelines. Traces can
//! be rendered as CSV for external plotting.

use nbody_comm::Phase;
use nbody_trace::schema::{push_event_row, EVENT_CSV_HEADER};

use crate::des::simulate_with_observer;
use crate::machine::Machine;
use crate::op::Op;
use crate::report::SimReport;

/// One recorded event: a rank's clock advanced from `start` to `end`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Acting rank.
    pub rank: u32,
    /// Virtual time the activity began.
    pub start: f64,
    /// Virtual time the activity ended.
    pub end: f64,
    /// What happened.
    pub kind: TraceKind,
}

/// Kinds of traced activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// Local force evaluation.
    Compute,
    /// Posting a message to `to`.
    Send {
        /// Destination rank.
        to: u32,
        /// Payload size on the (simulated) wire.
        bytes: u64,
        /// Phase attribution.
        phase: Phase,
    },
    /// Waiting for (and consuming) a message from `from`.
    Recv {
        /// Source rank.
        from: u32,
        /// Phase attribution.
        phase: Phase,
    },
    /// Participating in a collective of `members` ranks.
    Collective {
        /// Team size.
        members: u32,
        /// Phase attribution.
        phase: Phase,
    },
}

impl TraceKind {
    /// Short label for CSV export.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Compute => "compute",
            TraceKind::Send { .. } => "send",
            TraceKind::Recv { .. } => "recv",
            TraceKind::Collective { .. } => "collective",
        }
    }
}

/// A bounded trace of a simulation.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in completion order (per the engine's scheduling).
    pub events: Vec<TraceEvent>,
    /// Whether the cap was hit and events were dropped.
    pub truncated: bool,
}

impl Trace {
    /// Events of one rank, in time order.
    pub fn rank_timeline(&self, rank: u32) -> Vec<TraceEvent> {
        let mut evs: Vec<TraceEvent> = self
            .events
            .iter()
            .copied()
            .filter(|e| e.rank == rank)
            .collect();
        evs.sort_by(|a, b| a.start.total_cmp(&b.start));
        evs
    }

    /// Render as CSV in the workspace-wide event schema
    /// ([`EVENT_CSV_HEADER`]), the same one measured executions export to.
    pub fn to_csv(&self) -> String {
        let mut s = String::from(EVENT_CSV_HEADER);
        s.push('\n');
        for e in &self.events {
            let (peer, phase) = match e.kind {
                TraceKind::Compute => (String::new(), String::new()),
                TraceKind::Send { to, phase, .. } => (to.to_string(), phase.label().into()),
                TraceKind::Recv { from, phase } => (from.to_string(), phase.label().into()),
                TraceKind::Collective { members, phase } => {
                    (members.to_string(), phase.label().into())
                }
            };
            push_event_row(&mut s, e.rank, e.kind.label(), e.start, e.end, &peer, &phase);
        }
        s
    }
}

/// Run [`simulate`](crate::des::simulate) while recording up to
/// `max_events` trace events (drops the rest and marks the trace
/// truncated).
pub fn simulate_traced<I, G>(
    machine: &Machine,
    p: usize,
    programs: G,
    max_events: usize,
) -> (SimReport, Trace)
where
    I: Iterator<Item = Op>,
    G: Fn(usize) -> I,
{
    let mut trace = Trace::default();
    let report = simulate_with_observer(machine, p, programs, &mut |event: TraceEvent| {
        if trace.events.len() < max_events {
            trace.events.push(event);
        } else {
            trace.truncated = true;
        }
    });
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::test_machine;

    fn ring_programs(p: usize, steps: usize) -> impl Fn(usize) -> std::vec::IntoIter<Op> {
        move |r| {
            (0..steps)
                .flat_map(|_| {
                    [
                        Op::Send {
                            to: (r + 1) % p,
                            bytes: 100,
                            phase: Phase::Shift,
                        },
                        Op::Recv {
                            from: (r + p - 1) % p,
                            phase: Phase::Shift,
                        },
                        Op::Compute { interactions: 5 },
                    ]
                })
                .collect::<Vec<_>>()
                .into_iter()
        }
    }

    #[test]
    fn trace_records_all_event_kinds() {
        let m = test_machine();
        let (report, trace) = simulate_traced(&m, 4, ring_programs(4, 3), 10_000);
        assert!(!trace.truncated);
        assert!(report.makespan > 0.0);
        let kinds: std::collections::HashSet<&str> =
            trace.events.iter().map(|e| e.kind.label()).collect();
        assert!(kinds.contains("send"));
        assert!(kinds.contains("recv"));
        assert!(kinds.contains("compute"));
        // 4 ranks x 3 steps x 3 ops.
        assert_eq!(trace.events.len(), 36);
    }

    #[test]
    fn timelines_are_monotone_per_rank() {
        let m = test_machine();
        let (_, trace) = simulate_traced(&m, 6, ring_programs(6, 5), 10_000);
        for rank in 0..6 {
            let tl = trace.rank_timeline(rank);
            assert!(!tl.is_empty());
            for w in tl.windows(2) {
                assert!(
                    w[1].start >= w[0].end - 1e-12,
                    "rank {rank}: overlapping events {w:?}"
                );
            }
            for e in &tl {
                assert!(e.end >= e.start);
            }
        }
    }

    #[test]
    fn trace_caps_and_marks_truncation() {
        let m = test_machine();
        let (_, trace) = simulate_traced(&m, 4, ring_programs(4, 10), 7);
        assert!(trace.truncated);
        assert_eq!(trace.events.len(), 7);
    }

    #[test]
    fn traced_report_matches_untraced() {
        let m = test_machine();
        let plain = crate::des::simulate(&m, 5, ring_programs(5, 4));
        let (traced, _) = simulate_traced(&m, 5, ring_programs(5, 4), 10_000);
        assert_eq!(plain.makespan, traced.makespan);
        assert_eq!(plain.per_rank, traced.per_rank);
    }

    #[test]
    fn csv_export_has_one_line_per_event() {
        let m = test_machine();
        let (_, trace) = simulate_traced(&m, 3, ring_programs(3, 2), 10_000);
        let csv = trace.to_csv();
        assert_eq!(csv.lines().count(), 1 + trace.events.len());
        assert!(csv.starts_with("rank,kind,start,end,peer,phase"));
        assert!(csv.contains("shift"));
    }
}
