//! Machine cost models.
//!
//! A [`Machine`] turns schedule operations into time: a LogGP-style
//! `alpha + hops·per_hop + bytes·beta` model for point-to-point messages,
//! and a tree model with a **saturation term** for collectives. The
//! saturation term is the empirically crucial non-ideality the paper
//! reports: "collectives fail to scale logarithmically as our model
//! assumes, so c should be treated as a tuning parameter" (§I) — it is what
//! makes the best replication factor land strictly inside `1 < c < √p`
//! (Fig. 2b/2d) instead of at the maximum.
//!
//! The parameter sets [`hopper`] and [`intrepid`] are calibrated to the
//! machines' published characteristics (Gemini/BG-P latencies, link
//! bandwidths, core speeds) at the right orders of magnitude; the
//! reproduction targets the *shape* of the paper's figures, not absolute
//! seconds (see EXPERIMENTS.md).

use crate::op::CollNet;
use crate::topology::Torus;
use nbody_comm::Phase;

/// A dedicated collective network (the BlueGene/P "tree"), used by
/// whole-partition collectives when requested (Fig. 2c/2d `c=1 (tree)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeNetwork {
    /// Latency of a tree traversal.
    pub alpha: f64,
    /// Seconds per byte through the tree.
    pub beta: f64,
}

/// Cost-model parameters for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Human-readable name.
    pub name: &'static str,
    /// MPI ranks per node (24 on Hopper, 4 on Intrepid).
    pub cores_per_node: usize,
    /// Point-to-point message latency (seconds).
    pub alpha: f64,
    /// Point-to-point inverse bandwidth (seconds per byte).
    pub beta: f64,
    /// Additional latency per torus hop.
    pub per_hop: f64,
    /// Discount on alpha and beta for same-node messages.
    pub intra_node_factor: f64,
    /// Seconds per pairwise force evaluation.
    pub gamma: f64,
    /// Per-stage latency of software tree collectives.
    pub coll_alpha: f64,
    /// Per-stage inverse bandwidth of software tree collectives.
    pub coll_beta: f64,
    /// Non-logarithmic collective overhead: extra seconds per byte per
    /// team member. Models software combining and torus contention at
    /// large team sizes — zero would make collectives ideally logarithmic.
    pub coll_saturation: f64,
    /// Dedicated collective network, if the machine has one.
    pub tree: Option<TreeNetwork>,
    /// Whether shift-phase traffic uses bidirectional torus links via
    /// row broadcasts (the paper's DCMF optimization on Intrepid, §III.C),
    /// doubling effective shift bandwidth.
    pub bidirectional_shift: bool,
}

impl Machine {
    /// Number of nodes hosting `p` ranks.
    pub fn nodes(&self, p: usize) -> usize {
        p.div_ceil(self.cores_per_node)
    }

    /// The torus housing `p` ranks.
    pub fn torus(&self, p: usize) -> Torus {
        Torus::fit(self.nodes(p))
    }

    /// Node hosting a rank (contiguous placement).
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.cores_per_node
    }

    /// Sender-side overhead of posting a message.
    pub fn send_overhead(&self) -> f64 {
        // A fraction of alpha is CPU-side; the rest is network latency,
        // charged to the wire below.
        0.3 * self.alpha
    }

    /// Time from posting until `bytes` from `from` are available at `to`.
    pub fn wire_time(&self, torus: &Torus, from: usize, to: usize, bytes: u64, phase: Phase) -> f64 {
        let nf = self.node_of(from);
        let nt = self.node_of(to);
        let mut beta = self.beta;
        if self.bidirectional_shift && phase == Phase::Shift {
            beta *= 0.5;
        }
        if nf == nt {
            return self.intra_node_factor * (self.alpha + bytes as f64 * beta);
        }
        let hops = torus.hops(nf % torus.nodes(), nt % torus.nodes());
        self.alpha + hops as f64 * self.per_hop + bytes as f64 * beta
    }

    /// [`wire_time`](Machine::wire_time) with precomputed node ids and
    /// coordinates (the DES hot path).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn wire_time_cached(
        &self,
        torus: &Torus,
        node_from: usize,
        coords_from: [usize; 3],
        node_to: usize,
        coords_to: [usize; 3],
        bytes: u64,
        phase: Phase,
    ) -> f64 {
        let mut beta = self.beta;
        if self.bidirectional_shift && phase == Phase::Shift {
            beta *= 0.5;
        }
        if node_from == node_to {
            return self.intra_node_factor * (self.alpha + bytes as f64 * beta);
        }
        let hops = torus.hops_coords(coords_from, coords_to);
        self.alpha + hops as f64 * self.per_hop + bytes as f64 * beta
    }

    /// Time of a broadcast/reduction over `members` ranks moving `bytes`.
    ///
    /// `combining` collectives (reductions) additionally pay the
    /// saturation term: element-wise summing is software work at every
    /// tree stage, and it is what "fails to scale logarithmically" in the
    /// paper's experiments. Pure data movement (broadcast) stays
    /// latency/bandwidth-bound — the paper calls the initial broadcast
    /// "negligible".
    pub fn collective_time(&self, members: usize, bytes: u64, net: CollNet, combining: bool) -> f64 {
        if members <= 1 {
            return 0.0;
        }
        if net == CollNet::HwTree {
            if let Some(tree) = self.tree {
                return tree.alpha + bytes as f64 * tree.beta;
            }
        }
        let stages = (members as f64).log2().ceil();
        let base = stages * (self.coll_alpha + bytes as f64 * self.coll_beta);
        if combining {
            base + self.coll_saturation * bytes as f64 * (members as f64).sqrt()
        } else {
            base
        }
    }

    /// Time of the naive whole-partition exchange: the paper's `c = 1`
    /// baseline on Intrepid replaced the point-to-point ring with
    /// whole-partition *collective* shifts (§III.C), i.e. `members`
    /// sequential block broadcasts — through the hardware tree at line
    /// rate + per-operation latency (`tree` bars of Fig. 2c/2d), or as
    /// software trees over the torus (`no-tree` bars).
    pub fn allgather_time(&self, members: usize, bytes_per_member: u64, net: CollNet) -> f64 {
        if members <= 1 {
            return 0.0;
        }
        if net == CollNet::HwTree {
            if let Some(tree) = self.tree {
                return members as f64
                    * (tree.alpha + bytes_per_member as f64 * tree.beta);
            }
        }
        let stages = (members as f64).log2().ceil();
        members as f64 * stages * (self.coll_alpha + bytes_per_member as f64 * self.coll_beta)
    }

    /// Time to evaluate `interactions` pairwise forces.
    pub fn compute_time(&self, interactions: u64) -> f64 {
        interactions as f64 * self.gamma
    }
}

/// Hopper: the NERSC Cray XE-6 (§III.C). 24-core AMD MagnyCours nodes at
/// 2.1 GHz on a Gemini 3D torus.
pub fn hopper() -> Machine {
    Machine {
        name: "Hopper (Cray XE-6)",
        cores_per_node: 24,
        alpha: 1.5e-6,
        beta: 3.0e-10,   // ~3.3 GB/s effective per-rank injection
        per_hop: 1.0e-7, // Gemini per-hop latency
        intra_node_factor: 0.3,
        gamma: 4.0e-8, // ~85 cycles per 2D force evaluation at 2.1 GHz
        coll_alpha: 2.0e-6,
        coll_beta: 4.0e-10,
        coll_saturation: 5.0e-8,
        tree: None,
        bidirectional_shift: false,
    }
}

/// Intrepid: the ALCF IBM BlueGene/P (§III.C). Quad-core 850 MHz PowerPC
/// nodes on a 3D torus, plus the dedicated collective ("tree") network and
/// DCMF topology-aware broadcast-shifts.
pub fn intrepid() -> Machine {
    Machine {
        name: "Intrepid (IBM BlueGene/P)",
        cores_per_node: 4,
        alpha: 3.5e-6,
        beta: 2.4e-9,    // 425 MB/s per torus link
        per_hop: 1.0e-7,
        intra_node_factor: 0.3,
        gamma: 3.2e-7, // ~270 cycles at 850 MHz: slower cores than Hopper
        coll_alpha: 4.0e-6,
        coll_beta: 3.0e-9,
        coll_saturation: 7.5e-7,
        tree: Some(TreeNetwork {
            alpha: 5.0e-6,
            beta: 1.2e-9, // ~850 MB/s collective network line rate
        }),
        bidirectional_shift: true,
    }
}

/// A featureless test machine with unit-free round numbers; keeps unit
/// tests independent of calibration choices.
pub fn test_machine() -> Machine {
    Machine {
        name: "test",
        cores_per_node: 1,
        alpha: 1.0,
        beta: 0.001,
        per_hop: 0.0,
        intra_node_factor: 1.0,
        gamma: 1.0,
        coll_alpha: 1.0,
        coll_beta: 0.001,
        coll_saturation: 0.0,
        tree: None,
        bidirectional_shift: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping() {
        let m = hopper();
        assert_eq!(m.nodes(24), 1);
        assert_eq!(m.nodes(25), 2);
        assert_eq!(m.nodes(6144), 256);
        assert_eq!(m.node_of(23), 0);
        assert_eq!(m.node_of(24), 1);
    }

    #[test]
    fn intra_node_is_cheaper() {
        let m = hopper();
        let torus = m.torus(48);
        let near = m.wire_time(&torus, 0, 1, 1000, Phase::Other);
        let far = m.wire_time(&torus, 0, 47, 1000, Phase::Other);
        assert!(near < far, "{near} < {far}");
    }

    #[test]
    fn bigger_messages_cost_more() {
        let m = intrepid();
        let torus = m.torus(64);
        let small = m.wire_time(&torus, 0, 63, 100, Phase::Other);
        let large = m.wire_time(&torus, 0, 63, 100_000, Phase::Other);
        assert!(large > small);
        assert!((large - small - 99_900.0 * m.beta).abs() < 1e-12);
    }

    #[test]
    fn bidirectional_shift_halves_shift_bandwidth() {
        let m = intrepid();
        assert!(m.bidirectional_shift);
        let torus = m.torus(64);
        let shift = m.wire_time(&torus, 0, 60, 1 << 20, Phase::Shift);
        let other = m.wire_time(&torus, 0, 60, 1 << 20, Phase::Other);
        assert!(shift < other);
        // Bandwidth-dominated: the ratio approaches 0.5.
        assert!(shift / other < 0.55);

        let h = hopper();
        let th = h.torus(48);
        assert_eq!(
            h.wire_time(&th, 0, 47, 1 << 20, Phase::Shift),
            h.wire_time(&th, 0, 47, 1 << 20, Phase::Other),
            "no DCMF on Hopper"
        );
    }

    #[test]
    fn collective_saturation_dominates_large_teams() {
        let m = hopper();
        let bytes = 10_000;
        let t16 = m.collective_time(16, bytes, CollNet::Torus, true);
        let t256 = m.collective_time(256, bytes, CollNet::Torus, true);
        // Ideal log scaling would give t256/t16 = 2; saturation makes it
        // much worse.
        assert!(t256 / t16 > 3.5, "saturation visible: {}", t256 / t16);
    }

    #[test]
    fn no_saturation_means_log_scaling() {
        let mut m = hopper();
        m.coll_saturation = 0.0;
        let bytes = 10_000;
        let t16 = m.collective_time(16, bytes, CollNet::Torus, true);
        let t256 = m.collective_time(256, bytes, CollNet::Torus, true);
        assert!((t256 / t16 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hw_tree_beats_torus_for_whole_partition_collectives() {
        let m = intrepid();
        let t_tree = m.allgather_time(8192, 52 * 4, CollNet::HwTree);
        let t_torus = m.allgather_time(8192, 52 * 4, CollNet::Torus);
        assert!(t_tree < t_torus / 5.0, "{t_tree} vs {t_torus}");
    }

    #[test]
    fn hw_tree_request_falls_back_without_tree() {
        let m = hopper();
        assert_eq!(
            m.collective_time(64, 1000, CollNet::HwTree, true),
            m.collective_time(64, 1000, CollNet::Torus, true)
        );
    }

    #[test]
    fn single_member_collectives_free() {
        let m = intrepid();
        assert_eq!(m.collective_time(1, 1 << 20, CollNet::Torus, true), 0.0);
        assert_eq!(m.allgather_time(1, 1 << 20, CollNet::HwTree), 0.0);
    }

    #[test]
    fn compute_time_linear() {
        let m = hopper();
        assert_eq!(m.compute_time(0), 0.0);
        assert!((m.compute_time(1_000_000) - 0.04).abs() < 1e-12);
    }
}
