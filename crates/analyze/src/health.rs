//! Health-lens rendering: the numerical-health section printed by
//! `ca-nbody analyze --timeline` and the `ca-nbody health` renderer,
//! derived entirely from a timeline bundle (energy/momentum series,
//! sentinel and mismatch flight events, drift windows) via
//! [`HealthSummary`].

use nbody_simhealth::HealthSummary;
use nbody_timeline::RunTimeline;

/// The numerical-health section for a timeline bundle.
pub fn render_health(timeline: &RunTimeline) -> String {
    HealthSummary::from_timeline(timeline).render()
}

/// Same summary as compact JSON, for scripting against `ca-nbody health`.
pub fn health_json(timeline: &RunTimeline) -> String {
    HealthSummary::from_timeline(timeline).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_timeline::{RankTimeline, RunTimeline, StepSample};

    fn instrumented_timeline() -> RunTimeline {
        let samples: Vec<StepSample> = (0..20)
            .map(|step| StepSample {
                step,
                t_secs: step as f64 * 0.01,
                dt_secs: 0.01,
                particles: 32,
                energy: -2.5,
                momentum: 1e-14,
                ..StepSample::default()
            })
            .collect();
        RunTimeline::from_ranks(vec![RankTimeline {
            rank: 0,
            stride: 1,
            samples,
            events: Vec::new(),
            dropped_events: 0,
            failure: None,
        }])
    }

    #[test]
    fn render_health_forwards_the_summary() {
        let text = render_health(&instrumented_timeline());
        assert!(text.contains("HEALTHY"), "{text}");
        assert!(text.contains("energy"), "{text}");
        let json = health_json(&instrumented_timeline());
        assert!(json.contains("\"clean\":true"), "{json}");
    }
}
