//! Wire-lens renderings: per-channel send→recv latency tables from a
//! probed run's [`WireLog`]-derived [`WireReport`], and the schedule
//! [`ConformanceReport`] table printed by `ca-nbody conformance` and
//! `analyze --wire`.

use nbody_wireprobe::{ConformanceReport, WireReport};

fn us(x: f64) -> String {
    format!("{:.1}", x * 1e6)
}

/// The channel-latency table printed by `ca-nbody analyze --wire`.
pub fn render_wire(r: &WireReport) -> String {
    let mut out = format!(
        "wire probes: {} sends, {} recvs, {} matched pairs on {} channels\n",
        r.total_sends,
        r.total_recvs,
        r.matched,
        r.channels.len()
    );
    if r.unmatched_sends + r.unmatched_recvs > 0 {
        out.push_str(&format!(
            "unmatched: {} sends, {} recvs\n",
            r.unmatched_sends, r.unmatched_recvs
        ));
    }
    if r.fault_events > 0 {
        out.push_str(&format!("injected-fault events: {}\n", r.fault_events));
    }
    if r.saturated() {
        out.push_str(&format!(
            "WARNING: probe rings overflowed; {} events evicted (log incomplete)\n",
            r.dropped_probe_events
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<14} {:<10} {:>6} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}\n",
        "channel",
        "phase",
        "tag",
        "sends",
        "bytes",
        "min us",
        "mean us",
        "p50 us",
        "p90 us",
        "max us",
        "depth"
    ));
    for ch in &r.channels {
        let lat = &ch.latency;
        let name = format!("{} -> {}", ch.src, ch.dst);
        out.push_str(&format!(
            "{:<14} {:<10} {:>6} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}\n",
            name,
            ch.phase.label(),
            ch.tag,
            ch.sends,
            ch.bytes,
            us(lat.min_s),
            us(lat.mean_s),
            us(lat.p50_s),
            us(lat.p90_s),
            us(lat.max_s),
            ch.max_in_flight
        ));
    }
    out
}

/// The conformance table: expected-vs-observed traffic, every violation
/// with its fault attribution, and the PASS/WARN/FAIL verdict.
pub fn render_conformance(r: &ConformanceReport) -> String {
    let mut out = format!("schedule conformance: {}\n", r.detail);
    out.push_str(&format!(
        "expected {} msgs, observed {} msgs on {} channels; \
         {} fault note(s) consulted\n",
        r.expected_msgs, r.observed_msgs, r.channels, r.faults_consulted
    ));
    if r.saturated {
        out.push_str(
            "WARNING: probe rings overflowed; the log is incomplete and \
             unexplained findings degrade to warnings\n",
        );
    }
    if r.violations.is_empty() {
        out.push_str("no violations\n");
    } else {
        out.push_str(&format!(
            "\n{:<14} {:<14} {:<10} {:>9} {:>9}  {}\n",
            "violation", "channel", "phase", "expected", "observed", "attribution"
        ));
        for v in &r.violations {
            let opt = |c: Option<u64>| c.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{:<14} {:<14} {:<10} {:>9} {:>9}  {}\n",
                v.kind.label(),
                format!("{} -> {}", v.src, v.dst),
                v.phase.label(),
                opt(v.expected_count),
                opt(v.observed_count),
                v.explained.as_deref().unwrap_or("UNEXPLAINED"),
            ));
        }
        out.push_str(&format!(
            "\n{} violation(s): {} explained by the fault plan, {} unexplained\n",
            r.violations.len(),
            r.explained(),
            r.unexplained()
        ));
    }
    out.push_str(&format!("verdict: {}\n", r.verdict()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_trace::Phase;
    use nbody_wireprobe::{
        check_conformance, match_events, ExpectedMsg, ExpectedSchedule, FaultNote, MsgEvent,
        ProbeKind, RankWireLog, WireLog,
    };

    fn ev(kind: ProbeKind, src: u32, dst: u32, t: f64) -> MsgEvent {
        MsgEvent {
            kind,
            src,
            dst,
            comm: 0,
            tag: 5,
            phase: Phase::Shift,
            count: 4,
            bytes: 224,
            t_secs: t,
            step: None,
        }
    }

    fn sample_log() -> WireLog {
        WireLog::from_ranks(vec![
            RankWireLog {
                rank: 0,
                events: vec![ev(ProbeKind::Send, 0, 1, 0.001)],
                dropped_events: 0,
            },
            RankWireLog {
                rank: 1,
                events: vec![ev(ProbeKind::Recv, 0, 1, 0.003)],
                dropped_events: 0,
            },
        ])
    }

    #[test]
    fn wire_table_lists_channels_with_latencies() {
        let text = render_wire(&match_events(&sample_log()));
        assert!(text.contains("1 matched pairs"), "{text}");
        assert!(text.contains("0 -> 1"), "{text}");
        assert!(text.contains("shift"), "{text}");
        assert!(text.contains("2000.0"), "2 ms latency in us: {text}");
        assert!(!text.contains("WARNING"), "{text}");
    }

    #[test]
    fn wire_table_warns_on_saturation_and_faults() {
        let log = WireLog::from_ranks(vec![RankWireLog {
            rank: 0,
            events: vec![ev(ProbeKind::FaultDrop, 0, 1, 0.001)],
            dropped_events: 7,
        }]);
        let text = render_wire(&match_events(&log));
        assert!(text.contains("7 events evicted"), "{text}");
        assert!(text.contains("injected-fault events: 1"), "{text}");
    }

    #[test]
    fn conformance_table_reports_pass() {
        let exp = ExpectedSchedule {
            msgs: vec![ExpectedMsg {
                src: 0,
                dst: 1,
                phase: Phase::Shift,
                count: 4,
            }],
            size_checked: true,
            detail: "test n=8 p=2".into(),
        };
        let text = render_conformance(&check_conformance(&exp, &sample_log(), &[]));
        assert!(text.contains("schedule conformance: test n=8 p=2"), "{text}");
        assert!(text.contains("no violations"), "{text}");
        assert!(text.contains("verdict: PASS"), "{text}");
    }

    #[test]
    fn conformance_table_marks_unexplained_and_attributed() {
        let exp = ExpectedSchedule {
            msgs: vec![
                ExpectedMsg {
                    src: 0,
                    dst: 1,
                    phase: Phase::Shift,
                    count: 4,
                },
                ExpectedMsg {
                    src: 2,
                    dst: 3,
                    phase: Phase::Shift,
                    count: 9,
                },
            ],
            size_checked: true,
            detail: "test".into(),
        };
        // Only the 0->1 message shows up: 2->3 is missing, unexplained.
        let text = render_conformance(&check_conformance(&exp, &sample_log(), &[]));
        assert!(text.contains("missing"), "{text}");
        assert!(text.contains("UNEXPLAINED"), "{text}");
        assert!(text.contains("verdict: FAIL"), "{text}");
        // With a drop fault at rank 2 the same finding is attributed.
        let faults = [FaultNote {
            kind: ProbeKind::FaultDrop,
            rank: 2,
            step: Some(0),
        }];
        let text = render_conformance(&check_conformance(&exp, &sample_log(), &faults));
        assert!(text.contains("fault_drop:rank2@step0"), "{text}");
        assert!(text.contains("1 explained by the fault plan, 0 unexplained"), "{text}");
        assert!(text.contains("verdict: PASS"), "{text}");
    }
}
