//! Renderings of an [`Analysis`]: human tables, CSV, JSON.

use nbody_timeline::{DriftConfig, RunTimeline};
use nbody_trace::Json;

use crate::history::{RegressionReport, Verdict};
use crate::{Analysis, GridHeatmap};

fn secs(x: f64) -> String {
    format!("{x:.6}")
}

fn pstep_label(pstep: Option<u32>) -> String {
    match pstep {
        Some(0) => "skew".to_string(),
        Some(s) => format!("shift step {s}"),
        None => String::new(),
    }
}

/// The human-readable analysis report printed by `ca-nbody analyze`.
pub fn render_table(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "analysis: {} ranks, {} traced s, {} timesteps\n\n",
        a.ranks,
        secs(a.wall_secs),
        a.steps.len()
    ));

    out.push_str("critical path (per timestep)\n");
    out.push_str(&format!(
        "{:<6} {:>12} {:>9} {:>12} {:>12} {:>12}  {}\n",
        "step", "makespan s", "critical", "compute s", "comm s", "blocked s", "waited on"
    ));
    let (mut tc, mut tm, mut tb) = (0.0, 0.0, 0.0);
    for s in &a.steps {
        let waited = match s.blamed_peer {
            Some(p) => {
                let at = pstep_label(s.blamed_pstep);
                if at.is_empty() {
                    format!("rank {p}")
                } else {
                    format!("rank {p} @ {at}")
                }
            }
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<6} {:>12} {:>9} {:>12} {:>12} {:>12}  {}\n",
            s.step,
            secs(s.makespan_secs),
            format!("rank {}", s.critical_rank),
            secs(s.compute_secs),
            secs(s.comm_secs),
            secs(s.blocked_secs),
            waited
        ));
        tc += s.compute_secs;
        tm += s.comm_secs;
        tb += s.blocked_secs;
    }
    out.push_str(&format!(
        "{:<6} {:>12} {:>9} {:>12} {:>12} {:>12}\n\n",
        "total",
        secs(a.steps.iter().map(|s| s.makespan_secs).sum::<f64>()),
        "",
        secs(tc),
        secs(tm),
        secs(tb)
    ));

    out.push_str("phase imbalance (per-rank seconds across ranks)\n");
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>9} {:>8}\n",
        "phase", "mean s", "max s", "max rank", "factor"
    ));
    for i in &a.imbalance {
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>9} {:>8.3}\n",
            i.phase.label(),
            secs(i.mean_secs),
            secs(i.max_secs),
            i.max_rank,
            i.factor
        ));
    }
    out.push('\n');

    // The compute column only means something when the run carried
    // metrics; an all-zero column would just be noise.
    let have_gflops = a.stragglers.iter().any(|s| s.compute_gflops > 0.0);
    out.push_str("stragglers (worst first)\n");
    out.push_str(&format!(
        "{:<6} {:>15} {:>15} {:>15}",
        "rank", "critical steps", "caused wait s", "own blocked s"
    ));
    if have_gflops {
        out.push_str(&format!(" {:>13}", "compute GF/s"));
    }
    out.push('\n');
    for s in &a.stragglers {
        out.push_str(&format!(
            "{:<6} {:>15} {:>15} {:>15}",
            s.rank,
            s.times_critical,
            secs(s.caused_wait_secs),
            secs(s.own_blocked_secs)
        ));
        if have_gflops {
            out.push_str(&format!(" {:>13.3}", s.compute_gflops));
        }
        out.push('\n');
    }

    if let Some(h) = &a.heatmap {
        out.push('\n');
        out.push_str(&render_heatmap(h));
    }
    out
}

fn render_plane<T: Copy>(
    out: &mut String,
    h: &GridHeatmap,
    title: &str,
    values: &[T],
    fmt: impl Fn(T) -> String,
) {
    out.push_str(title);
    out.push('\n');
    for row in 0..h.c {
        out.push_str(&format!("  row {row} |"));
        for team in 0..h.teams {
            out.push_str(&format!(" {:>12}", fmt(values[h.rank_at(row, team)])));
        }
        out.push('\n');
    }
}

/// The three grid planes (send bytes, recv bytes, wait seconds) as text,
/// teams across, replication rows down.
pub fn render_heatmap(h: &GridHeatmap) -> String {
    let mut out = format!(
        "grid heat-map ({} teams x c = {} rows)\n",
        h.teams, h.c
    );
    render_plane(&mut out, h, "sent bytes", &h.send_bytes, |v: u64| {
        v.to_string()
    });
    render_plane(&mut out, h, "recv bytes", &h.recv_bytes, |v: u64| {
        v.to_string()
    });
    render_plane(&mut out, h, "wait seconds", &h.wait_secs, secs);
    out
}

/// Per-step critical-path CSV.
pub fn render_csv(a: &Analysis) -> String {
    let mut out = String::from(
        "step,makespan_secs,critical_rank,compute_secs,comm_secs,blocked_secs,\
         blamed_peer,blamed_pstep\n",
    );
    for s in &a.steps {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            s.step,
            s.makespan_secs,
            s.critical_rank,
            s.compute_secs,
            s.comm_secs,
            s.blocked_secs,
            s.blamed_peer.map(|p| p.to_string()).unwrap_or_default(),
            s.blamed_pstep.map(|p| p.to_string()).unwrap_or_default(),
        ));
    }
    out
}

/// The whole analysis as one JSON document.
pub fn render_json(a: &Analysis) -> Json {
    let opt_num = |v: Option<u32>| match v {
        Some(x) => Json::Num(x as f64),
        None => Json::Null,
    };
    let steps = a
        .steps
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("step".into(), Json::Num(s.step as f64)),
                ("makespan_secs".into(), Json::Num(s.makespan_secs)),
                ("critical_rank".into(), Json::Num(s.critical_rank as f64)),
                ("compute_secs".into(), Json::Num(s.compute_secs)),
                ("comm_secs".into(), Json::Num(s.comm_secs)),
                ("blocked_secs".into(), Json::Num(s.blocked_secs)),
                ("blamed_peer".into(), opt_num(s.blamed_peer)),
                ("blamed_pstep".into(), opt_num(s.blamed_pstep)),
            ])
        })
        .collect();
    let imbalance = a
        .imbalance
        .iter()
        .map(|i| {
            Json::Obj(vec![
                ("phase".into(), Json::Str(i.phase.label().to_string())),
                ("mean_secs".into(), Json::Num(i.mean_secs)),
                ("max_secs".into(), Json::Num(i.max_secs)),
                ("max_rank".into(), Json::Num(i.max_rank as f64)),
                ("factor".into(), Json::Num(i.factor)),
            ])
        })
        .collect();
    let stragglers = a
        .stragglers
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("rank".into(), Json::Num(s.rank as f64)),
                (
                    "times_critical".into(),
                    Json::Num(s.times_critical as f64),
                ),
                ("caused_wait_secs".into(), Json::Num(s.caused_wait_secs)),
                ("own_blocked_secs".into(), Json::Num(s.own_blocked_secs)),
                ("compute_gflops".into(), Json::Num(s.compute_gflops)),
            ])
        })
        .collect();
    let heatmap = match &a.heatmap {
        Some(h) => Json::Obj(vec![
            ("teams".into(), Json::Num(h.teams as f64)),
            ("c".into(), Json::Num(h.c as f64)),
            (
                "send_bytes".into(),
                Json::Arr(h.send_bytes.iter().map(|&v| Json::Num(v as f64)).collect()),
            ),
            (
                "recv_bytes".into(),
                Json::Arr(h.recv_bytes.iter().map(|&v| Json::Num(v as f64)).collect()),
            ),
            (
                "wait_secs".into(),
                Json::Arr(h.wait_secs.iter().map(|&v| Json::Num(v)).collect()),
            ),
        ]),
        None => Json::Null,
    };
    Json::Obj(vec![
        ("ranks".into(), Json::Num(a.ranks as f64)),
        ("wall_secs".into(), Json::Num(a.wall_secs)),
        ("critical_path".into(), Json::Arr(steps)),
        ("imbalance".into(), Json::Arr(imbalance)),
        ("stragglers".into(), Json::Arr(stragglers)),
        ("heatmap".into(), heatmap),
    ])
}

/// Drift windows over a recorded run timeline, printed by
/// `ca-nbody analyze --timeline=…` next to the straggler table. Same
/// fixed-width idiom as [`render_table`] so the two sections read as one
/// report.
pub fn render_drift(tl: &RunTimeline, cfg: &DriftConfig) -> String {
    let samples: usize = tl.ranks.iter().map(|r| r.samples.len()).sum();
    let mut out = format!(
        "timeline drift ({} ranks, {} step samples; window {}, {:.1} sigma)\n",
        tl.ranks.len(),
        samples,
        cfg.window,
        cfg.nsigma
    );
    if let Some(reason) = &tl.failure {
        out.push_str(&format!("POSTMORTEM: {reason}\n"));
    }
    let windows = tl.drift(cfg);
    if windows.is_empty() {
        out.push_str("no drift flagged\n");
        return out;
    }
    out.push_str(&format!(
        "{:<15} {:>13} {:>12} {:>12} {:>8}\n",
        "metric", "steps", "baseline", "peak", "ratio"
    ));
    for w in &windows {
        let ratio = if w.baseline.abs() > f64::EPSILON {
            format!("{:.2}", w.peak / w.baseline)
        } else {
            "inf".to_string()
        };
        out.push_str(&format!(
            "{:<15} {:>13} {:>12.4} {:>12.4} {:>8}\n",
            w.metric,
            format!("{}-{}", w.start_step, w.end_step),
            w.baseline,
            w.peak,
            ratio
        ));
    }
    out
}

/// The human-readable verdict printed by `ca-nbody regress`.
pub fn render_regression(r: &RegressionReport) -> String {
    match r.verdict {
        Verdict::NoHistory => format!(
            "regress: no matching history entries; live wall {} s (recorded only)\n",
            secs(r.live_wall_secs)
        ),
        Verdict::Pass => format!(
            "regress: PASS — live wall {} s vs median {} s over {} run(s) \
             (ratio {:.3} <= tolerance {:.2})\n",
            secs(r.live_wall_secs),
            secs(r.median_wall_secs),
            r.matched,
            r.ratio,
            r.tolerance
        ),
        Verdict::Regression => format!(
            "regress: FAIL — live wall {} s vs median {} s over {} run(s) \
             (ratio {:.3} > tolerance {:.2})\n",
            secs(r.live_wall_secs),
            secs(r.median_wall_secs),
            r.matched,
            r.ratio,
            r.tolerance
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::check_regression;
    use crate::testutil::two_rank_trace;
    use crate::{analyze, RunSummary};

    fn sample_analysis() -> Analysis {
        analyze(&two_rank_trace(), None, 1)
    }

    #[test]
    fn table_names_critical_ranks_and_blame() {
        let text = render_table(&sample_analysis());
        assert!(text.contains("critical path"));
        assert!(text.contains("rank 1 @ shift step 2"));
        assert!(text.contains("phase imbalance"));
        assert!(text.contains("stragglers"));
        assert!(text.contains("grid heat-map"));
        // No metrics, no compute column.
        assert!(!text.contains("compute GF/s"));
    }

    #[test]
    fn compute_column_appears_with_metrics() {
        use nbody_metrics::{MetricsRecorder, MetricsSnapshot};
        let shards = (0..2)
            .map(|rank| {
                let rec = MetricsRecorder::for_rank(rank);
                rec.counter("compute_flops", None).add(3000);
                rec.counter("compute_nanos", None).add(1000);
                rec.finish()
            })
            .collect();
        let snap = MetricsSnapshot::from_shards(shards);
        let a = analyze(&two_rank_trace(), Some(&snap), 1);
        let text = render_table(&a);
        assert!(text.contains("compute GF/s"), "{text}");
        assert!(text.contains("3.000"), "{text}");
        let doc = render_json(&a).to_string();
        let v = Json::parse(&doc).unwrap();
        let stragglers = v.get("stragglers").and_then(Json::as_array).unwrap();
        assert_eq!(
            stragglers[0].get("compute_gflops").and_then(Json::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn csv_has_one_row_per_step() {
        let csv = render_csv(&sample_analysis());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("step,makespan_secs"));
        assert!(lines[2].contains(",1,2"), "blame columns: {}", lines[2]);
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let doc = render_json(&sample_analysis()).to_string();
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("ranks").and_then(Json::as_f64), Some(2.0));
        let steps = v.get("critical_path").and_then(Json::as_array).unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(
            steps[1].get("blamed_peer").and_then(Json::as_f64),
            Some(1.0)
        );
        assert!(v.get("heatmap").unwrap().get("send_bytes").is_some());
    }

    fn drift_timeline(shift_at: Option<u32>) -> RunTimeline {
        use nbody_timeline::{RankTimeline, StepSample};
        let ranks = (0..2u32)
            .map(|rank| RankTimeline {
                rank,
                stride: 1,
                samples: (0..60u32)
                    .map(|step| {
                        // Rank 1 hoards particles after the shift point,
                        // pushing the imbalance factor from 1.0 to ~1.5.
                        let shifted = shift_at.is_some_and(|at| step >= at);
                        let particles = if shifted && rank == 1 { 300 } else { 100 };
                        StepSample {
                            step,
                            t_secs: step as f64 * 0.01,
                            dt_secs: 0.01,
                            particles,
                            ..StepSample::default()
                        }
                    })
                    .collect(),
                events: vec![],
                dropped_events: 0,
                failure: None,
            })
            .collect();
        RunTimeline::from_ranks(ranks)
    }

    #[test]
    fn drift_report_flags_a_step_function() {
        let text = render_drift(&drift_timeline(Some(30)), &DriftConfig::default());
        assert!(text.contains("timeline drift (2 ranks, 120 step samples"), "{text}");
        assert!(text.contains("imbalance"), "{text}");
        assert!(text.contains("30-"), "window starts at the transition: {text}");
        assert!(!text.contains("no drift flagged"), "{text}");
    }

    #[test]
    fn drift_report_is_quiet_on_stationary_data() {
        let text = render_drift(&drift_timeline(None), &DriftConfig::default());
        assert!(text.contains("no drift flagged"), "{text}");
        assert!(!text.contains("POSTMORTEM"));
    }

    #[test]
    fn drift_report_carries_the_postmortem_reason() {
        let tl = drift_timeline(None).with_failure("rank 1 dead with c=1");
        let text = render_drift(&tl, &DriftConfig::default());
        assert!(text.contains("POSTMORTEM: rank 1 dead with c=1"), "{text}");
    }

    #[test]
    fn regression_text_matches_verdict() {
        let a = sample_analysis();
        let live = RunSummary::from_analysis(&a, 64, 1, "allpairs", "deadbee", 2, 0);
        let fast = RunSummary {
            wall_secs: live.wall_secs / 4.0,
            ..live.clone()
        };
        let r = check_regression(&live, &[fast], 1.5);
        let text = render_regression(&r);
        assert!(text.contains("FAIL"), "got: {text}");
        let r = check_regression(&live, std::slice::from_ref(&live), 1.5);
        assert!(render_regression(&r).contains("PASS"));
        let r = check_regression(&live, &[], 1.5);
        assert!(render_regression(&r).contains("no matching history"));
    }
}
