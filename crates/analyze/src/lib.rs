//! # nbody-analyze
//!
//! Post-run diagnosis for the reproduction of *"A Communication-Optimal
//! N-Body Algorithm for Direct Interactions"* (IPDPS 2013).
//!
//! `nbody-trace` records when things happened and `nbody-metrics` records
//! how much moved; this crate answers the questions a performance engineer
//! actually asks after a run:
//!
//! * [`critical`] — which rank's compute or blocked-wait dominated each
//!   timestep's makespan, and which late sender (via the skew/shift
//!   pipeline-step tags on blocked spans) is to blame.
//! * [`imbalance`] — per-phase load-imbalance factors `max/mean` across
//!   ranks, the first-order symptom of a skewed particle distribution.
//! * [`heatmap`] — send/recv traffic and wait time arranged on the
//!   paper's `p/c × c` processor grid, so hot rows or columns are visible
//!   at a glance.
//! * [`stragglers`] — ranks ranked by how often they end the critical
//!   path and how much wait they inflict on their peers.
//! * [`history`] — the compact [`RunSummary`] persisted to the
//!   append-only `bench_results/history/*.jsonl` store, plus the
//!   median-based regression check behind `ca-nbody regress`.
//! * [`report`] — human tables, CSV, and JSON renderings of an
//!   [`Analysis`], plus the drift-window table `ca-nbody analyze
//!   --timeline=…` prints from a recorded `nbody-timeline` bundle.
//! * [`wire`] — the message-level lens: per-channel send→recv latency
//!   tables from a `nbody-wireprobe` log (`analyze --wire`) and the
//!   schedule-conformance table (`ca-nbody conformance`).
//!
//! Everything consumes the serialized artifacts a traced run already
//! writes (`--trace=… --metrics=…`); nothing here needs the live
//! execution.

#![warn(missing_docs)]

pub mod critical;
pub mod health;
pub mod heatmap;
pub mod history;
pub mod imbalance;
pub mod report;
pub mod stragglers;
pub mod wire;

pub use critical::{critical_path, StepCritical};
pub use health::{health_json, render_health};
pub use heatmap::{grid_heatmap, GridHeatmap};
pub use history::{
    check_regression, parse_history, RegressionReport, RunSummary, Verdict,
};
pub use imbalance::{max_imbalance_factor, phase_imbalance, PhaseImbalance};
pub use report::{
    render_csv, render_drift, render_heatmap, render_json, render_regression, render_table,
};
pub use stragglers::{rank_stragglers, Straggler};
pub use wire::{render_conformance, render_wire};

use nbody_metrics::MetricsSnapshot;
use nbody_trace::ExecutionTrace;

/// The complete post-run diagnosis of one traced execution.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Ranks in the execution.
    pub ranks: usize,
    /// Traced wall time (latest span end), seconds.
    pub wall_secs: f64,
    /// Per-timestep critical path, in step order.
    pub steps: Vec<StepCritical>,
    /// Per-phase load imbalance, in figure order (phases with time only).
    pub imbalance: Vec<PhaseImbalance>,
    /// Every rank ranked by straggler evidence, worst first.
    pub stragglers: Vec<Straggler>,
    /// Traffic/wait heat-map on the `p/c × c` grid; `None` when the rank
    /// count is not divisible by the requested replication factor.
    pub heatmap: Option<GridHeatmap>,
}

impl Analysis {
    /// Seconds of the total makespan spent in compute / communication /
    /// blocked waits *on the per-step critical ranks* — the time that
    /// actually gates the run, as opposed to mean-across-ranks phase time.
    pub fn critical_split(&self) -> (f64, f64, f64) {
        let mut compute = 0.0;
        let mut comm = 0.0;
        let mut blocked = 0.0;
        for s in &self.steps {
            compute += s.compute_secs;
            comm += s.comm_secs;
            blocked += s.blocked_secs;
        }
        (compute, comm, blocked)
    }
}

/// Diagnose one execution. `metrics` feeds the traffic heat-map (pass
/// `None` when the run was traced without `--metrics`); `c` is the
/// replication factor used to arrange ranks on the grid.
pub fn analyze(
    trace: &ExecutionTrace,
    metrics: Option<&MetricsSnapshot>,
    c: usize,
) -> Analysis {
    let steps = critical_path(trace);
    let imbalance = phase_imbalance(trace);
    let stragglers = rank_stragglers(trace, &steps, metrics);
    let heatmap = grid_heatmap(trace, metrics, c).ok();
    Analysis {
        ranks: trace.ranks,
        wall_secs: trace.wall_secs(),
        steps,
        imbalance,
        stragglers,
        heatmap,
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use nbody_trace::{ExecutionTrace, Phase, Span, SpanKind};

    /// Two ranks, two steps. Rank 1 is the slow one in step 0 (long
    /// compute); rank 0 is critical in step 1 because it blocks 0.3 s on
    /// rank 1 during shift step 2.
    pub fn two_rank_trace() -> ExecutionTrace {
        let mk = |rank, kind, start: f64, end: f64| Span {
            rank,
            kind,
            start,
            end,
        };
        let driver = |name: &str, step| SpanKind::Driver {
            name: name.to_string(),
            step,
        };
        ExecutionTrace::from_rank_buffers(vec![
            vec![
                mk(0, driver("step", 0), 0.0, 0.8),
                mk(0, SpanKind::Phase(Phase::Other), 0.0, 0.5),
                mk(0, SpanKind::Phase(Phase::Shift), 0.5, 0.8),
                mk(0, driver("step", 1), 0.8, 2.0),
                mk(0, SpanKind::Phase(Phase::Other), 0.8, 1.5),
                mk(0, SpanKind::Phase(Phase::Shift), 1.5, 2.0),
                mk(
                    0,
                    SpanKind::Blocked {
                        phase: Phase::Shift,
                        peer: Some(1),
                        step: Some(2),
                    },
                    1.6,
                    1.9,
                ),
            ],
            vec![
                mk(1, driver("step", 0), 0.0, 1.0),
                mk(1, SpanKind::Phase(Phase::Other), 0.0, 0.9),
                mk(1, SpanKind::Phase(Phase::Shift), 0.9, 1.0),
                mk(1, driver("step", 1), 1.0, 1.9),
                mk(1, SpanKind::Phase(Phase::Other), 1.0, 1.8),
                mk(1, SpanKind::Phase(Phase::Shift), 1.8, 1.9),
            ],
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_assembles_all_parts() {
        let t = testutil::two_rank_trace();
        let a = analyze(&t, None, 1);
        assert_eq!(a.ranks, 2);
        assert_eq!(a.steps.len(), 2);
        assert!(!a.imbalance.is_empty());
        assert_eq!(a.stragglers.len(), 2);
        assert!(a.heatmap.is_some());
        let (compute, comm, blocked) = a.critical_split();
        assert!(compute > 0.0);
        assert!(comm > 0.0);
        assert!(blocked > 0.0);
    }

    #[test]
    fn bad_replication_factor_drops_heatmap_only() {
        let t = testutil::two_rank_trace();
        // 2 ranks cannot form a grid with c = 3.
        let a = analyze(&t, None, 3);
        assert!(a.heatmap.is_none());
        assert_eq!(a.steps.len(), 2);
    }
}
