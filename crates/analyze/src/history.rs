//! The cross-run performance history and its regression check.
//!
//! Each traced run distills to one [`RunSummary`] line appended to a
//! `bench_results/history/<kernel>.jsonl` store. Later runs with the same
//! configuration key `(n, p, c, kernel)` compare their wall time against
//! the *median* of the stored entries — medians make the gate robust to a
//! single noisy outlier in either direction — and `ca-nbody regress`
//! turns the verdict into an exit code a CI job can act on.

use nbody_trace::Json;

use crate::imbalance::max_imbalance_factor;
use crate::Analysis;

/// Compact record of one traced run, one JSONL line in the history store.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Particle count.
    pub n: u64,
    /// Ranks.
    pub p: u64,
    /// Replication factor.
    pub c: u64,
    /// Force kernel (`allpairs` or `cutoff`).
    pub kernel: String,
    /// Git revision the binary was built from (`unknown` outside a
    /// checkout).
    pub git_rev: String,
    /// Timesteps executed.
    pub steps: u64,
    /// Traced wall seconds — the quantity the regression gate compares.
    pub wall_secs: f64,
    /// Critical-path compute seconds (summed over steps).
    pub compute_secs: f64,
    /// Critical-path communication seconds (summed over steps).
    pub comm_secs: f64,
    /// Critical-path blocked seconds (summed over steps).
    pub blocked_secs: f64,
    /// Worst per-phase `max/mean` imbalance factor.
    pub max_imbalance: f64,
    /// Unix seconds when the summary was recorded (0 when unknown).
    pub recorded_unix: u64,
}

impl RunSummary {
    /// Distill an [`Analysis`] plus run configuration into one record.
    #[allow(clippy::too_many_arguments)]
    pub fn from_analysis(
        a: &Analysis,
        n: u64,
        c: u64,
        kernel: &str,
        git_rev: &str,
        steps: u64,
        recorded_unix: u64,
    ) -> RunSummary {
        let (compute, comm, blocked) = a.critical_split();
        RunSummary {
            n,
            p: a.ranks as u64,
            c,
            kernel: kernel.to_string(),
            git_rev: git_rev.to_string(),
            steps,
            wall_secs: a.wall_secs,
            compute_secs: compute,
            comm_secs: comm,
            blocked_secs: blocked,
            max_imbalance: max_imbalance_factor(&a.imbalance),
            recorded_unix,
        }
    }

    /// Whether two summaries describe the same configuration — the
    /// history-matching key `(n, p, c, kernel)`. The git revision is
    /// deliberately *not* part of the key: comparing across revisions is
    /// the point of the store.
    pub fn same_config(&self, other: &RunSummary) -> bool {
        self.n == other.n
            && self.p == other.p
            && self.c == other.c
            && self.kernel == other.kernel
    }

    /// Serialize to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("n".into(), Json::Num(self.n as f64)),
            ("p".into(), Json::Num(self.p as f64)),
            ("c".into(), Json::Num(self.c as f64)),
            ("kernel".into(), Json::Str(self.kernel.clone())),
            ("git_rev".into(), Json::Str(self.git_rev.clone())),
            ("steps".into(), Json::Num(self.steps as f64)),
            ("wall_secs".into(), Json::Num(self.wall_secs)),
            ("compute_secs".into(), Json::Num(self.compute_secs)),
            ("comm_secs".into(), Json::Num(self.comm_secs)),
            ("blocked_secs".into(), Json::Num(self.blocked_secs)),
            ("max_imbalance".into(), Json::Num(self.max_imbalance)),
            ("recorded_unix".into(), Json::Num(self.recorded_unix as f64)),
        ])
    }

    /// One history line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        self.to_json().to_string()
    }

    /// Reconstruct from a parsed history line.
    pub fn from_json(v: &Json) -> Result<RunSummary, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let text = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing string field {key:?}"))
                .map(str::to_string)
        };
        Ok(RunSummary {
            n: num("n")? as u64,
            p: num("p")? as u64,
            c: num("c")? as u64,
            kernel: text("kernel")?,
            git_rev: text("git_rev")?,
            steps: num("steps")? as u64,
            wall_secs: num("wall_secs")?,
            compute_secs: num("compute_secs")?,
            comm_secs: num("comm_secs")?,
            blocked_secs: num("blocked_secs")?,
            max_imbalance: num("max_imbalance")?,
            recorded_unix: num("recorded_unix").unwrap_or(0.0) as u64,
        })
    }
}

/// Parse a whole history file (JSONL, blank lines ignored). Errors carry
/// the 1-based line number of the offending entry.
pub fn parse_history(text: &str) -> Result<Vec<RunSummary>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(RunSummary::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Outcome of a regression check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Live wall time within tolerance of the history median.
    Pass,
    /// Live wall time slower than `tolerance ×` the history median.
    Regression,
    /// No stored run matches the live configuration.
    NoHistory,
}

/// Result of comparing a live run against the history store.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// Stored runs with the same configuration key.
    pub matched: usize,
    /// Median wall seconds of the matched runs (0 when none).
    pub median_wall_secs: f64,
    /// The live run's wall seconds.
    pub live_wall_secs: f64,
    /// `live / median` (0 when no history).
    pub ratio: f64,
    /// The tolerance the verdict was judged at.
    pub tolerance: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Compare `live` against the matching entries of `history` at a
/// slowdown `tolerance` (e.g. 1.5 = fail when more than 50 % slower than
/// the median).
pub fn check_regression(
    live: &RunSummary,
    history: &[RunSummary],
    tolerance: f64,
) -> RegressionReport {
    let mut walls: Vec<f64> = history
        .iter()
        .filter(|h| h.same_config(live))
        .map(|h| h.wall_secs)
        .collect();
    if walls.is_empty() {
        return RegressionReport {
            matched: 0,
            median_wall_secs: 0.0,
            live_wall_secs: live.wall_secs,
            ratio: 0.0,
            tolerance,
            verdict: Verdict::NoHistory,
        };
    }
    walls.sort_by(f64::total_cmp);
    let median_wall_secs = walls[(walls.len() - 1) / 2];
    let ratio = if median_wall_secs > 0.0 {
        live.wall_secs / median_wall_secs
    } else {
        1.0
    };
    let verdict = if ratio > tolerance {
        Verdict::Regression
    } else {
        Verdict::Pass
    };
    RegressionReport {
        matched: walls.len(),
        median_wall_secs,
        live_wall_secs: live.wall_secs,
        ratio,
        tolerance,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(wall: f64) -> RunSummary {
        RunSummary {
            n: 256,
            p: 8,
            c: 2,
            kernel: "allpairs".into(),
            git_rev: "abc1234".into(),
            steps: 4,
            wall_secs: wall,
            compute_secs: wall * 0.7,
            comm_secs: wall * 0.2,
            blocked_secs: wall * 0.1,
            max_imbalance: 1.3,
            recorded_unix: 1700000000,
        }
    }

    #[test]
    fn json_line_round_trips() {
        let s = summary(0.125);
        let line = s.to_json_line();
        assert!(!line.contains('\n'));
        let back = RunSummary::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn history_parse_reports_offending_line() {
        let good = summary(0.1).to_json_line();
        let text = format!("{good}\n\n{good}\n{{\"n\": 1,\n");
        let err = parse_history(&text).unwrap_err();
        assert!(err.starts_with("line 4:"), "got: {err}");
        let ok = parse_history(&format!("{good}\n{good}\n")).unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn regression_verdicts() {
        let history = vec![summary(0.10), summary(0.12), summary(0.11)];
        // Live at 0.12 vs median 0.11: ratio ~1.09, passes at 1.5.
        let r = check_regression(&summary(0.12), &history, 1.5);
        assert_eq!(r.verdict, Verdict::Pass);
        assert_eq!(r.matched, 3);
        assert!((r.median_wall_secs - 0.11).abs() < 1e-12);
        // Live at 0.30: ratio ~2.7, fails at 1.5.
        let r = check_regression(&summary(0.30), &history, 1.5);
        assert_eq!(r.verdict, Verdict::Regression);
        assert!(r.ratio > 2.0);
        // A different configuration has no history.
        let mut other = summary(0.30);
        other.p = 16;
        let r = check_regression(&other, &history, 1.5);
        assert_eq!(r.verdict, Verdict::NoHistory);
        assert_eq!(r.matched, 0);
    }

    #[test]
    fn git_rev_is_not_part_of_the_key() {
        let mut old = summary(0.1);
        old.git_rev = "old0000".into();
        let r = check_regression(&summary(0.1), &[old], 1.5);
        assert_eq!(r.matched, 1);
        assert_eq!(r.verdict, Verdict::Pass);
    }
}
