//! Traffic and wait-time heat-maps on the `p/c × c` processor grid.
//!
//! World rank `r` sits at row `r / (p/c)` (the replication dimension) and
//! column `r % (p/c)` (the team), matching `ProcGrid` in the core crate.
//! Send/recv bytes come from the phase-labelled `comm_send_bytes` /
//! `comm_recv_bytes` counters summed over phases; wait seconds come from
//! the trace's blocked spans. Laid out on the grid, a hot row betrays a
//! skewed shift schedule and a hot column a team with too many particles.

use nbody_metrics::MetricsSnapshot;
use nbody_trace::{ExecutionTrace, SpanKind};

/// Per-rank traffic and wait totals with grid geometry attached.
#[derive(Debug, Clone, PartialEq)]
pub struct GridHeatmap {
    /// Teams (columns), `p/c`.
    pub teams: usize,
    /// Replication factor (rows).
    pub c: usize,
    /// Bytes sent by each rank (point-to-point), indexed by world rank.
    pub send_bytes: Vec<u64>,
    /// Bytes received by each rank (point-to-point), indexed by world
    /// rank.
    pub recv_bytes: Vec<u64>,
    /// Seconds each rank spent blocked in receives, indexed by world
    /// rank.
    pub wait_secs: Vec<f64>,
}

impl GridHeatmap {
    /// Grid cell of a world rank: `(row, team)`.
    pub fn cell(&self, rank: usize) -> (usize, usize) {
        (rank / self.teams, rank % self.teams)
    }

    /// World rank at a grid cell.
    pub fn rank_at(&self, row: usize, team: usize) -> usize {
        row * self.teams + team
    }
}

/// Build the heat-map for a `p/c × c` arrangement of the trace's ranks.
/// Errors when `p` is not divisible by `c`; a missing metrics snapshot
/// zeroes the traffic planes but keeps the wait plane.
pub fn grid_heatmap(
    trace: &ExecutionTrace,
    metrics: Option<&MetricsSnapshot>,
    c: usize,
) -> Result<GridHeatmap, String> {
    let p = trace.ranks;
    if c == 0 || p == 0 || !p.is_multiple_of(c) {
        return Err(format!(
            "cannot arrange {p} ranks on a grid with c={c}"
        ));
    }
    let mut send_bytes = vec![0u64; p];
    let mut recv_bytes = vec![0u64; p];
    if let Some(m) = metrics {
        for r in &m.ranks {
            let rank = r.rank as usize;
            if rank >= p {
                continue;
            }
            for s in &r.counters {
                match s.name.as_str() {
                    "comm_send_bytes" => send_bytes[rank] += s.value,
                    "comm_recv_bytes" => recv_bytes[rank] += s.value,
                    _ => {}
                }
            }
        }
    }
    let mut wait_secs = vec![0.0f64; p];
    for s in &trace.spans {
        if matches!(s.kind, SpanKind::Blocked { .. }) {
            if let Some(w) = wait_secs.get_mut(s.rank as usize) {
                *w += s.secs();
            }
        }
    }
    Ok(GridHeatmap {
        teams: p / c,
        c,
        send_bytes,
        recv_bytes,
        wait_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::two_rank_trace;
    use nbody_metrics::{RankMetrics, Sample};
    use nbody_trace::Phase;

    fn metrics_with_traffic() -> MetricsSnapshot {
        let counter = |name: &str, phase, value| Sample {
            name: name.to_string(),
            phase: Some(phase),
            value,
        };
        MetricsSnapshot {
            ranks: vec![
                RankMetrics {
                    rank: 0,
                    counters: vec![
                        counter("comm_send_bytes", Phase::Shift, 100),
                        counter("comm_send_bytes", Phase::Skew, 40),
                        counter("comm_recv_bytes", Phase::Shift, 90),
                        counter("comm_send_messages", Phase::Shift, 5),
                    ],
                    ..RankMetrics::default()
                },
                RankMetrics {
                    rank: 1,
                    counters: vec![counter("comm_recv_bytes", Phase::Shift, 50)],
                    ..RankMetrics::default()
                },
            ],
        }
    }

    #[test]
    fn sums_traffic_over_phases_and_waits_from_trace() {
        let t = two_rank_trace();
        let m = metrics_with_traffic();
        let h = grid_heatmap(&t, Some(&m), 1).unwrap();
        assert_eq!(h.teams, 2);
        assert_eq!(h.send_bytes, vec![140, 0]);
        assert_eq!(h.recv_bytes, vec![90, 50]);
        assert!((h.wait_secs[0] - 0.3).abs() < 1e-12);
        assert_eq!(h.wait_secs[1], 0.0);
        assert_eq!(h.cell(1), (0, 1));
    }

    #[test]
    fn grid_geometry_follows_proc_grid_convention() {
        let t = two_rank_trace();
        let h = grid_heatmap(&t, None, 2).unwrap();
        // p = 2, c = 2: one team, two rows; rank 1 is row 1 of team 0.
        assert_eq!(h.teams, 1);
        assert_eq!(h.cell(1), (1, 0));
        assert_eq!(h.rank_at(1, 0), 1);
        assert_eq!(h.send_bytes, vec![0, 0]);
    }

    #[test]
    fn indivisible_grid_is_an_error() {
        let t = two_rank_trace();
        assert!(grid_heatmap(&t, None, 3).is_err());
        assert!(grid_heatmap(&t, None, 0).is_err());
    }
}
