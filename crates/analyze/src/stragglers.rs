//! Straggler attribution across ranks.
//!
//! Two independent lines of evidence identify a straggler: how often a
//! rank terminates the per-step critical path (it was the one everyone
//! waited for), and how much blocked time *other* ranks accumulated with
//! this rank tagged as the late sender. A rank can also be a victim —
//! its own blocked seconds say how much it waited on others. When a
//! metrics snapshot is available its `compute_*` counters add a third
//! line: the rank's achieved kernel GFLOP/s, separating "slow because it
//! computes slowly" from "slow because it waits".

use std::collections::BTreeMap;

use nbody_metrics::MetricsSnapshot;
use nbody_trace::{ExecutionTrace, SpanKind};

use crate::critical::StepCritical;

/// Straggler evidence for one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// World rank.
    pub rank: u32,
    /// Timesteps in which this rank ended the critical path.
    pub times_critical: usize,
    /// Blocked seconds other ranks spent waiting on this rank (summed
    /// over all blocked spans naming it as the peer).
    pub caused_wait_secs: f64,
    /// Blocked seconds this rank itself spent waiting.
    pub own_blocked_secs: f64,
    /// Achieved kernel GFLOP/s from the rank's `compute_flops` /
    /// `compute_nanos` counters; `0.0` when the run carried no metrics.
    pub compute_gflops: f64,
}

/// Every rank's straggler evidence, worst first (most steps critical,
/// then most wait caused).
pub fn rank_stragglers(
    trace: &ExecutionTrace,
    steps: &[StepCritical],
    metrics: Option<&MetricsSnapshot>,
) -> Vec<Straggler> {
    let mut caused: BTreeMap<u32, f64> = BTreeMap::new();
    let mut own: BTreeMap<u32, f64> = BTreeMap::new();
    for s in &trace.spans {
        if let SpanKind::Blocked { peer, .. } = &s.kind {
            *own.entry(s.rank).or_insert(0.0) += s.secs();
            if let Some(p) = peer {
                *caused.entry(*p).or_insert(0.0) += s.secs();
            }
        }
    }
    let mut times: BTreeMap<u32, usize> = BTreeMap::new();
    for s in steps {
        *times.entry(s.critical_rank).or_insert(0) += 1;
    }
    let mut gflops: BTreeMap<u32, f64> = BTreeMap::new();
    if let Some(snap) = metrics {
        for rm in &snap.ranks {
            let flops = rm.counter("compute_flops", None);
            let nanos = rm.counter("compute_nanos", None);
            if nanos > 0 {
                gflops.insert(rm.rank, flops as f64 / nanos as f64);
            }
        }
    }
    let mut out: Vec<Straggler> = (0..trace.ranks as u32)
        .map(|rank| Straggler {
            rank,
            times_critical: times.get(&rank).copied().unwrap_or(0),
            caused_wait_secs: caused.get(&rank).copied().unwrap_or(0.0),
            own_blocked_secs: own.get(&rank).copied().unwrap_or(0.0),
            compute_gflops: gflops.get(&rank).copied().unwrap_or(0.0),
        })
        .collect();
    out.sort_by(|a, b| {
        b.times_critical
            .cmp(&a.times_critical)
            .then(b.caused_wait_secs.total_cmp(&a.caused_wait_secs))
            .then(a.rank.cmp(&b.rank))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical::critical_path;
    use crate::testutil::two_rank_trace;
    use nbody_metrics::MetricsRecorder;

    #[test]
    fn ranks_by_critical_steps_then_caused_wait() {
        let t = two_rank_trace();
        let steps = critical_path(&t);
        let s = rank_stragglers(&t, &steps, None);
        assert_eq!(s.len(), 2);
        // Each rank is critical once; rank 1 caused 0.3 s of waiting on
        // rank 0, so it sorts first.
        assert_eq!(s[0].rank, 1);
        assert_eq!(s[0].times_critical, 1);
        assert!((s[0].caused_wait_secs - 0.3).abs() < 1e-12);
        assert_eq!(s[0].own_blocked_secs, 0.0);
        assert_eq!(s[0].compute_gflops, 0.0);
        assert_eq!(s[1].rank, 0);
        assert!((s[1].own_blocked_secs - 0.3).abs() < 1e-12);
        assert_eq!(s[1].caused_wait_secs, 0.0);
    }

    #[test]
    fn compute_gflops_joins_from_metrics() {
        let t = two_rank_trace();
        let steps = critical_path(&t);
        let shards = (0..2)
            .map(|rank| {
                let rec = MetricsRecorder::for_rank(rank);
                // Rank 0 does 100 FLOPs in 50 ns (2 GFLOP/s); rank 1 has
                // flops but no time counter, which must stay 0, not NaN.
                rec.counter("compute_flops", None).add(100);
                if rank == 0 {
                    rec.counter("compute_nanos", None).add(50);
                }
                rec.finish()
            })
            .collect();
        let snap = MetricsSnapshot::from_shards(shards);
        let s = rank_stragglers(&t, &steps, Some(&snap));
        let by_rank = |r: u32| s.iter().find(|x| x.rank == r).unwrap();
        assert!((by_rank(0).compute_gflops - 2.0).abs() < 1e-12);
        assert_eq!(by_rank(1).compute_gflops, 0.0);
    }

    #[test]
    fn empty_trace_has_no_stragglers() {
        let t = ExecutionTrace::default();
        assert!(rank_stragglers(&t, &[], None).is_empty());
    }
}
