//! Per-phase load-imbalance factors.
//!
//! For each communication phase (and the compute bucket
//! [`Phase::Other`]), the imbalance factor is `max / mean` of the
//! per-rank seconds inside that phase's windows. A perfectly balanced
//! phase scores 1.0; a phase where one rank does all the work on `p`
//! ranks scores `p`. This is the paper's load-balance story reduced to
//! one number per phase.

use nbody_trace::{ExecutionTrace, Phase, ALL_PHASES};

/// Load imbalance of one phase across ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseImbalance {
    /// The phase.
    pub phase: Phase,
    /// Mean per-rank seconds in the phase.
    pub mean_secs: f64,
    /// Maximum per-rank seconds in the phase.
    pub max_secs: f64,
    /// The rank holding the maximum.
    pub max_rank: u32,
    /// `max / mean`; 1.0 when the phase recorded no time.
    pub factor: f64,
}

/// Imbalance per phase, in figure order, for phases that recorded time.
pub fn phase_imbalance(trace: &ExecutionTrace) -> Vec<PhaseImbalance> {
    let per_rank = trace.phase_secs_per_rank();
    let ranks = per_rank.len();
    let mut out = Vec::new();
    for p in ALL_PHASES {
        let i = p.index();
        let mut max_secs = 0.0f64;
        let mut max_rank = 0u32;
        let mut sum = 0.0f64;
        for (rank, row) in per_rank.iter().enumerate() {
            sum += row[i];
            if row[i] > max_secs {
                max_secs = row[i];
                max_rank = rank as u32;
            }
        }
        if max_secs <= 0.0 {
            continue;
        }
        let mean_secs = sum / ranks as f64;
        let factor = if mean_secs > 0.0 {
            max_secs / mean_secs
        } else {
            1.0
        };
        out.push(PhaseImbalance {
            phase: p,
            mean_secs,
            max_secs,
            max_rank,
            factor,
        });
    }
    out
}

/// The worst imbalance factor across all phases; 1.0 for an empty or
/// perfectly balanced trace. This is the single scalar persisted to the
/// run history.
pub fn max_imbalance_factor(imbalance: &[PhaseImbalance]) -> f64 {
    imbalance
        .iter()
        .map(|i| i.factor)
        .fold(1.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::two_rank_trace;
    use nbody_trace::{Span, SpanKind};

    #[test]
    fn factors_are_max_over_mean() {
        let imb = phase_imbalance(&two_rank_trace());
        // Other: rank 0 has 0.5 + 0.7 = 1.2, rank 1 has 0.9 + 0.8 = 1.7.
        let other = imb.iter().find(|i| i.phase == Phase::Other).unwrap();
        assert!((other.mean_secs - 1.45).abs() < 1e-12);
        assert!((other.max_secs - 1.7).abs() < 1e-12);
        assert_eq!(other.max_rank, 1);
        assert!((other.factor - 1.7 / 1.45).abs() < 1e-12);
        // Shift: rank 0 has 0.8, rank 1 has 0.2.
        let shift = imb.iter().find(|i| i.phase == Phase::Shift).unwrap();
        assert_eq!(shift.max_rank, 0);
        assert!((shift.factor - 0.8 / 0.5).abs() < 1e-12);
        // Phases with no windows are not reported.
        assert!(imb.iter().all(|i| i.phase != Phase::Broadcast));
        assert!((max_imbalance_factor(&imb) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn single_rank_is_perfectly_balanced() {
        let t = ExecutionTrace::from_rank_buffers(vec![vec![Span {
            rank: 0,
            kind: SpanKind::Phase(Phase::Other),
            start: 0.0,
            end: 1.0,
        }]]);
        let imb = phase_imbalance(&t);
        assert_eq!(imb.len(), 1);
        assert!((imb[0].factor - 1.0).abs() < 1e-12);
        assert_eq!(max_imbalance_factor(&imb), 1.0);
    }

    #[test]
    fn empty_trace_reports_nothing() {
        assert!(phase_imbalance(&ExecutionTrace::default()).is_empty());
        assert_eq!(max_imbalance_factor(&[]), 1.0);
    }
}
