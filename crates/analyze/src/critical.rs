//! Cross-rank critical-path extraction.
//!
//! Every driver wraps each timestep in a per-rank `"step"` span, so the
//! rank whose step span *ends last* is the one the barrier-like reduce at
//! the end of the step actually waited for — the critical rank. Within
//! that rank's step window the phase windows split its time into compute
//! ([`Phase::Other`]) and communication, and the blocked spans (tagged
//! with the late sender's global rank and the skew/shift pipeline step)
//! say how much of the communication time was spent waiting and on whom.

use std::collections::BTreeMap;

use nbody_trace::{ExecutionTrace, Phase, Span, SpanKind};

/// The critical path of one timestep.
#[derive(Debug, Clone, PartialEq)]
pub struct StepCritical {
    /// Zero-based timestep index.
    pub step: u32,
    /// Earliest step-span start to latest step-span end across ranks.
    pub makespan_secs: f64,
    /// Rank whose step span ends last (ties break to the lower rank).
    pub critical_rank: u32,
    /// The critical rank's own step-span duration.
    pub critical_secs: f64,
    /// Compute ([`Phase::Other`]) seconds on the critical rank in-step.
    pub compute_secs: f64,
    /// Communication (non-`Other` phase) seconds on the critical rank
    /// in-step, including the blocked portion.
    pub comm_secs: f64,
    /// Blocked-wait seconds on the critical rank in-step.
    pub blocked_secs: f64,
    /// The peer the critical rank waited on longest, if any wait carried
    /// sender attribution.
    pub blamed_peer: Option<u32>,
    /// The skew/shift pipeline step (0 = skew, `s` = shift step `s`) in
    /// which the longest-attributed wait occurred.
    pub blamed_pstep: Option<u32>,
}

fn overlap(s: &Span, lo: f64, hi: f64) -> f64 {
    (s.end.min(hi) - s.start.max(lo)).max(0.0)
}

/// Per-timestep critical path, in step order.
///
/// Traces without `"step"` driver spans (phase-only traces, or traces
/// from code outside the step drivers) are treated as a single pseudo
/// timestep spanning the whole execution, so the analysis degrades
/// gracefully instead of vanishing.
pub fn critical_path(trace: &ExecutionTrace) -> Vec<StepCritical> {
    // (step, rank) -> per-rank step window [start, end].
    let mut windows: BTreeMap<(u32, u32), (f64, f64)> = BTreeMap::new();
    for s in &trace.spans {
        if let SpanKind::Driver { name, step } = &s.kind {
            if name == "step" {
                let w = windows
                    .entry((*step, s.rank))
                    .or_insert((s.start, s.end));
                w.0 = w.0.min(s.start);
                w.1 = w.1.max(s.end);
            }
        }
    }
    if windows.is_empty() && !trace.spans.is_empty() {
        // Pseudo-step 0: each rank's window is its full recorded extent.
        for s in &trace.spans {
            let w = windows.entry((0, s.rank)).or_insert((s.start, s.end));
            w.0 = w.0.min(s.start);
            w.1 = w.1.max(s.end);
        }
    }

    // step -> Vec<(rank, start, end)>
    let mut by_step: BTreeMap<u32, Vec<(u32, f64, f64)>> = BTreeMap::new();
    for ((step, rank), (start, end)) in windows {
        by_step.entry(step).or_default().push((rank, start, end));
    }

    let mut out = Vec::with_capacity(by_step.len());
    for (step, ranks) in by_step {
        let first_start = ranks.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        let (critical_rank, crit_start, crit_end) = ranks
            .iter()
            .copied()
            .max_by(|a, b| a.2.total_cmp(&b.2).then(b.0.cmp(&a.0)))
            .expect("step group is non-empty");

        let mut compute = 0.0;
        let mut comm = 0.0;
        let mut blocked = 0.0;
        let mut by_peer: BTreeMap<u32, f64> = BTreeMap::new();
        let mut by_pstep: BTreeMap<u32, f64> = BTreeMap::new();
        for s in &trace.spans {
            if s.rank != critical_rank {
                continue;
            }
            let secs = overlap(s, crit_start, crit_end);
            if secs <= 0.0 {
                continue;
            }
            match &s.kind {
                SpanKind::Phase(Phase::Other) => compute += secs,
                SpanKind::Phase(_) => comm += secs,
                SpanKind::Blocked { peer, step, .. } => {
                    blocked += secs;
                    if let Some(p) = peer {
                        *by_peer.entry(*p).or_insert(0.0) += secs;
                    }
                    if let Some(ps) = step {
                        *by_pstep.entry(*ps).or_insert(0.0) += secs;
                    }
                }
                SpanKind::Driver { .. } => {}
            }
        }
        let argmax = |m: &BTreeMap<u32, f64>| {
            m.iter()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(k, _)| *k)
        };
        out.push(StepCritical {
            step,
            makespan_secs: crit_end - first_start,
            critical_rank,
            critical_secs: crit_end - crit_start,
            compute_secs: compute,
            comm_secs: comm,
            blocked_secs: blocked,
            blamed_peer: argmax(&by_peer),
            blamed_pstep: argmax(&by_pstep),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::two_rank_trace;
    use nbody_trace::Span;

    #[test]
    fn picks_latest_ending_rank_per_step() {
        let steps = critical_path(&two_rank_trace());
        assert_eq!(steps.len(), 2);

        // Step 0: rank 1 ends at 1.0, rank 0 at 0.8.
        assert_eq!(steps[0].critical_rank, 1);
        assert!((steps[0].makespan_secs - 1.0).abs() < 1e-12);
        assert!((steps[0].compute_secs - 0.9).abs() < 1e-12);
        assert!((steps[0].comm_secs - 0.1).abs() < 1e-12);
        assert_eq!(steps[0].blocked_secs, 0.0);
        assert_eq!(steps[0].blamed_peer, None);

        // Step 1: rank 0 ends at 2.0, blocked 0.3 s on rank 1 in pstep 2.
        assert_eq!(steps[1].critical_rank, 0);
        assert!((steps[1].makespan_secs - 1.2).abs() < 1e-12);
        assert!((steps[1].blocked_secs - 0.3).abs() < 1e-12);
        assert_eq!(steps[1].blamed_peer, Some(1));
        assert_eq!(steps[1].blamed_pstep, Some(2));
    }

    #[test]
    fn phase_only_trace_becomes_one_pseudo_step() {
        let t = ExecutionTrace::from_rank_buffers(vec![vec![Span {
            rank: 0,
            kind: SpanKind::Phase(Phase::Other),
            start: 0.0,
            end: 2.5,
        }]]);
        let steps = critical_path(&t);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].step, 0);
        assert_eq!(steps[0].critical_rank, 0);
        assert!((steps[0].makespan_secs - 2.5).abs() < 1e-12);
        assert!((steps[0].compute_secs - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_rank_run_is_its_own_critical_path() {
        // p = 1: no comm spans at all; the sole rank is trivially critical.
        let mk = |kind, start: f64, end: f64| Span {
            rank: 0,
            kind,
            start,
            end,
        };
        let t = ExecutionTrace::from_rank_buffers(vec![vec![
            mk(
                SpanKind::Driver {
                    name: "step".into(),
                    step: 0,
                },
                0.0,
                1.0,
            ),
            mk(SpanKind::Phase(Phase::Other), 0.0, 1.0),
        ]]);
        let steps = critical_path(&t);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].critical_rank, 0);
        assert_eq!(steps[0].comm_secs, 0.0);
        assert_eq!(steps[0].blocked_secs, 0.0);
        assert_eq!(steps[0].blamed_peer, None);
    }

    #[test]
    fn empty_trace_yields_no_steps() {
        let steps = critical_path(&ExecutionTrace::default());
        assert!(steps.is_empty());
    }
}
