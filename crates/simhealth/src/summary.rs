//! Post-hoc health analysis of a recorded timeline bundle.

use nbody_timeline::{DriftConfig, EventKind, RunTimeline};
use nbody_trace::Json;

/// Everything the health lens can reconstruct from a timeline bundle:
/// the offline counterpart of the live [`HealthReport`](crate::HealthReport),
/// used by the `health` renderer, the analyze report, and the perfmon
/// `/health` endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSummary {
    /// Steps with a measured (health-instrumented) energy sample.
    pub measured_steps: usize,
    /// Mean global energy at the first/last measured step (0.0 if none).
    pub energy_first: f64,
    /// See [`energy_first`](HealthSummary::energy_first).
    pub energy_last: f64,
    /// max over measured steps of |E(t) − E(first)| / |E(first)|.
    pub max_rel_energy_drift: f64,
    /// Largest recorded total-momentum norm.
    pub max_momentum_norm: f64,
    /// Non-finite sentinel events: `(rank, step, detail)`.
    pub non_finite: Vec<(u32, Option<u64>, String)>,
    /// Replica fingerprint mismatch events: `(rank, step, detail)`.
    pub mismatches: Vec<(u32, Option<u64>, String)>,
    /// Steps where the drift detector flagged the energy series.
    pub energy_drift_windows: Vec<u32>,
    /// The bundle's failure reason, if it is a postmortem.
    pub failure: Option<String>,
}

impl HealthSummary {
    /// Distill a bundle's health story. Works on any bundle: a run
    /// without health instrumentation yields `measured_steps == 0` and
    /// empty event lists, which [`render`](HealthSummary::render) calls
    /// out explicitly rather than reporting a hollow "healthy".
    pub fn from_timeline(tl: &RunTimeline) -> HealthSummary {
        let energy = tl.energy_series();
        let momentum = tl.momentum_series();
        let (mut first, mut last, mut drift) = (0.0f64, 0.0f64, 0.0f64);
        if let (Some(e0), Some(en)) = (energy.values.first(), energy.values.last()) {
            first = *e0;
            last = *en;
            if first != 0.0 {
                drift = energy
                    .values
                    .iter()
                    .map(|e| ((e - first) / first).abs())
                    .fold(0.0, f64::max);
            }
        }
        let max_momentum_norm = momentum.values.iter().copied().fold(0.0, f64::max);

        let mut non_finite = Vec::new();
        let mut mismatches = Vec::new();
        for rank in &tl.ranks {
            for ev in &rank.events {
                match ev.kind {
                    EventKind::NonFinite => {
                        non_finite.push((rank.rank, ev.step, ev.detail.clone()))
                    }
                    EventKind::ReplicaMismatch => {
                        mismatches.push((rank.rank, ev.step, ev.detail.clone()))
                    }
                    _ => {}
                }
            }
        }
        non_finite.sort_by_key(|(rank, step, _)| (step.unwrap_or(u64::MAX), *rank));
        mismatches.sort_by_key(|(rank, step, _)| (step.unwrap_or(u64::MAX), *rank));

        let energy_drift_windows = tl
            .drift(&DriftConfig::default())
            .into_iter()
            .filter(|w| w.metric == "energy")
            .map(|w| w.start_step)
            .collect();

        HealthSummary {
            measured_steps: energy.steps.len(),
            energy_first: first,
            energy_last: last,
            max_rel_energy_drift: drift,
            max_momentum_norm,
            non_finite,
            mismatches,
            energy_drift_windows,
            failure: tl.failure.clone(),
        }
    }

    /// Whether every detector stayed quiet (vacuously true when the run
    /// was not instrumented — check [`measured_steps`](HealthSummary::measured_steps)).
    pub fn is_clean(&self) -> bool {
        self.non_finite.is_empty()
            && self.mismatches.is_empty()
            && self.energy_drift_windows.is_empty()
            && self.failure.is_none()
    }

    /// Plain-text health section for the CLI renderers.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("numerical health\n");
        out.push_str("----------------\n");
        if self.measured_steps == 0 {
            out.push_str("  invariants : not instrumented (run with --health)\n");
        } else {
            out.push_str(&format!(
                "  energy     : {:.6e} -> {:.6e} over {} measured steps (max rel drift {:.3e})\n",
                self.energy_first, self.energy_last, self.measured_steps, self.max_rel_energy_drift
            ));
            out.push_str(&format!(
                "  momentum   : max |P| {:.3e}\n",
                self.max_momentum_norm
            ));
        }
        out.push_str(&format!(
            "  sentinels  : {} non-finite event(s)\n",
            self.non_finite.len()
        ));
        for (rank, step, detail) in &self.non_finite {
            out.push_str(&format!(
                "    rank {rank} step {}: {detail}\n",
                step.map_or_else(|| "?".into(), |s| s.to_string())
            ));
        }
        out.push_str(&format!(
            "  replicas   : {} fingerprint mismatch(es)\n",
            self.mismatches.len()
        ));
        for (rank, step, detail) in &self.mismatches {
            out.push_str(&format!(
                "    rank {rank} step {}: {detail}\n",
                step.map_or_else(|| "?".into(), |s| s.to_string())
            ));
        }
        if !self.energy_drift_windows.is_empty() {
            out.push_str(&format!(
                "  drift      : energy series flagged at step(s) {:?}\n",
                self.energy_drift_windows
            ));
        }
        if let Some(reason) = &self.failure {
            out.push_str(&format!("  POSTMORTEM : {reason}\n"));
        }
        let verdict = if !self.is_clean() {
            "UNHEALTHY"
        } else if self.measured_steps == 0 {
            "UNMEASURED"
        } else {
            "HEALTHY"
        };
        out.push_str(&format!("  verdict    : {verdict}\n"));
        out
    }

    /// JSON rendering for the perfmon `/health` endpoint.
    pub fn to_json(&self) -> String {
        let events = |list: &[(u32, Option<u64>, String)]| {
            Json::Arr(
                list.iter()
                    .map(|(rank, step, detail)| {
                        Json::Obj(vec![
                            ("rank".into(), Json::Num(*rank as f64)),
                            (
                                "step".into(),
                                step.map_or(Json::Null, |s| Json::Num(s as f64)),
                            ),
                            ("detail".into(), Json::Str(detail.clone())),
                        ])
                    })
                    .collect(),
            )
        };
        Json::Obj(vec![
            (
                "measured_steps".into(),
                Json::Num(self.measured_steps as f64),
            ),
            ("energy_first".into(), Json::Num(self.energy_first)),
            ("energy_last".into(), Json::Num(self.energy_last)),
            (
                "max_rel_energy_drift".into(),
                Json::Num(self.max_rel_energy_drift),
            ),
            (
                "max_momentum_norm".into(),
                Json::Num(self.max_momentum_norm),
            ),
            ("non_finite".into(), events(&self.non_finite)),
            ("replica_mismatches".into(), events(&self.mismatches)),
            (
                "energy_drift_steps".into(),
                Json::Arr(
                    self.energy_drift_windows
                        .iter()
                        .map(|s| Json::Num(*s as f64))
                        .collect(),
                ),
            ),
            (
                "failure".into(),
                self.failure
                    .as_ref()
                    .map_or(Json::Null, |f| Json::Str(f.clone())),
            ),
            ("clean".into(), Json::Bool(self.is_clean())),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_timeline::{FlightEvent, RankTimeline, StepSample};

    fn tl_with(
        energy: impl Fn(u32) -> f64,
        events: Vec<FlightEvent>,
        failure: Option<&str>,
    ) -> RunTimeline {
        let samples: Vec<StepSample> = (0..50)
            .map(|step| StepSample {
                step,
                t_secs: step as f64 * 0.01,
                dt_secs: 0.01,
                particles: 64,
                energy: energy(step),
                momentum: 1e-13,
                ..StepSample::default()
            })
            .collect();
        let rank = RankTimeline {
            rank: 0,
            stride: 1,
            samples,
            events,
            dropped_events: 0,
            failure: failure.map(|s| s.to_string()),
        };
        RunTimeline::from_ranks(vec![rank])
    }

    #[test]
    fn clean_instrumented_run_is_healthy() {
        let tl = tl_with(|_| -4.0, Vec::new(), None);
        let s = HealthSummary::from_timeline(&tl);
        assert_eq!(s.measured_steps, 50);
        assert!(s.is_clean());
        assert_eq!(s.max_rel_energy_drift, 0.0);
        let text = s.render();
        assert!(text.contains("HEALTHY"), "{text}");
        assert!(s.to_json().contains("\"clean\":true"));
    }

    #[test]
    fn uninstrumented_run_reports_unmeasured() {
        let tl = tl_with(|_| 0.0, Vec::new(), None);
        let s = HealthSummary::from_timeline(&tl);
        assert_eq!(s.measured_steps, 0);
        let text = s.render();
        assert!(text.contains("UNMEASURED"), "{text}");
        assert!(text.contains("--health"), "{text}");
    }

    #[test]
    fn sentinel_and_mismatch_events_surface_with_blame() {
        let events = vec![
            FlightEvent {
                t_secs: 0.2,
                kind: EventKind::NonFinite,
                step: Some(7),
                detail: "non-finite force at rank 0 step 7 phase force: particle index 3 (id 3)"
                    .into(),
            },
            FlightEvent {
                t_secs: 0.1,
                kind: EventKind::ReplicaMismatch,
                step: Some(4),
                detail: "rank 4 fingerprint deadbeef vs majority cafe".into(),
            },
        ];
        let tl = tl_with(|_| -4.0, events, Some("numerical fault"));
        let s = HealthSummary::from_timeline(&tl);
        assert_eq!(s.non_finite.len(), 1);
        assert_eq!(s.mismatches.len(), 1);
        assert!(!s.is_clean());
        let text = s.render();
        assert!(text.contains("UNHEALTHY"), "{text}");
        assert!(text.contains("particle index 3"), "{text}");
        assert!(text.contains("POSTMORTEM"), "{text}");
        let json = s.to_json();
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("replica_mismatches"));
    }

    #[test]
    fn energy_jump_is_flagged_by_drift_detector() {
        let tl = tl_with(|step| if step < 40 { -2.0 } else { -6.0 }, Vec::new(), None);
        let s = HealthSummary::from_timeline(&tl);
        assert!(
            s.energy_drift_windows.iter().any(|w| (39..=42).contains(w)),
            "{:?}",
            s.energy_drift_windows
        );
        assert!((s.max_rel_energy_drift - 2.0).abs() < 1e-12);
        assert!(!s.is_clean());
    }
}
