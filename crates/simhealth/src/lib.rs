//! Numerical-health observability for distributed N-body runs.
//!
//! The repo's other lenses answer "is the run *fast* and *fault-tolerant*?"
//! This crate answers the question they all silently assume: **is the
//! physics still correct?** Three independent monitors, all cheap enough
//! to leave on:
//!
//! 1. **Online invariants** ([`Invariants`]) — per-rank partial kinetic
//!    energy, momentum, and potential energy, harvested from state the
//!    kernels already touch and reduced once per step. For the laws the
//!    paper benchmarks, total energy and momentum are conserved, so a
//!    drifting series is a correctness alarm, not a performance one.
//! 2. **Non-finite sentinels** ([`scan_forces`], [`scan_state`]) — a NaN
//!    or Inf anywhere in forces or integrated state is *always* a bug or
//!    a blow-up. The scans blame the first offending (particle, field)
//!    so the flight recorder can name the culprit instead of shrugging.
//! 3. **Replica fingerprints** ([`state_fingerprint`]) — the CA
//!    algorithm's `c` replicas of each column must hold bit-identical
//!    state. An order-invariant fingerprint (built on the same FNV-1a
//!    hash the durable checkpoints use) makes silent divergence — a bad
//!    resync, memory corruption, a nondeterministic kernel — visible
//!    within one step via a single `u64` allgather down the column.
//!
//! The driver-side wiring lives in `ca-nbody` (`run_distributed_health`);
//! this crate is the pure, transport-free layer: the math, the hash, the
//! report/baseline formats, and the timeline post-processing.

mod config;
mod fingerprint;
mod invariants;
mod report;
mod sentinel;
mod summary;

pub use config::{HealthConfig, HealthInjection};
pub use fingerprint::state_fingerprint;
pub use invariants::Invariants;
pub use report::{HealthBaseline, HealthReport};
pub use sentinel::{scan_forces, scan_state, NonFiniteBlame};
pub use summary::HealthSummary;
