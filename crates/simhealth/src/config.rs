//! Health-monitor configuration and deterministic fault injection.

/// Deterministic injection targets for exercising the health monitors.
///
/// Both injections fire **once**, at the named `(rank, step)`, and exist
/// so tests and CI can prove the detection paths work end-to-end: a NaN
/// written into a force accumulator must be blamed by the sentinel, and
/// a bit flipped in one replica's state must be caught by the
/// fingerprint cross-check within a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthInjection {
    /// Write a NaN into the blamed rank's first force accumulator after
    /// the force reduction at `(rank, step)`.
    pub nan: Option<(usize, u64)>,
    /// Flip one mantissa bit of the first particle's position on the
    /// named replica rank at the start of `(rank, step)`.
    pub corrupt: Option<(usize, u64)>,
}

impl HealthInjection {
    /// No injections: the production configuration.
    pub fn none() -> HealthInjection {
        HealthInjection::default()
    }

    /// Parse a `RANK@STEP` injection spec (e.g. `"4@2"`).
    pub fn parse_target(spec: &str) -> Result<(usize, u64), String> {
        let (rank, step) = spec
            .split_once('@')
            .ok_or_else(|| format!("injection spec '{spec}' is not RANK@STEP"))?;
        let rank: usize = rank
            .trim()
            .parse()
            .map_err(|_| format!("injection spec '{spec}': bad rank '{rank}'"))?;
        let step: u64 = step
            .trim()
            .parse()
            .map_err(|_| format!("injection spec '{spec}': bad step '{step}'"))?;
        Ok((rank, step))
    }
}

/// What the health layer should monitor and how often.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Check cadence in steps: invariants are reduced and fingerprints
    /// compared on steps where `step % every == 0`. `1` checks every
    /// step; larger values trade detection latency for overhead.
    pub every: u64,
    /// Whether to run the replica fingerprint cross-check (only
    /// meaningful when the schedule replicates state, i.e. `c > 1`).
    pub fingerprint: bool,
    /// Deterministic fault injection (tests/CI only).
    pub injection: HealthInjection,
}

impl HealthConfig {
    /// Everything on, checked every step, no injections.
    pub fn enabled() -> HealthConfig {
        HealthConfig {
            every: 1,
            fingerprint: true,
            injection: HealthInjection::none(),
        }
    }

    /// Whether monitors should run on this step.
    pub fn checks_step(&self, step: u64) -> bool {
        step.is_multiple_of(self.every.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_target_accepts_rank_at_step() {
        assert_eq!(HealthInjection::parse_target("4@2"), Ok((4, 2)));
        assert_eq!(HealthInjection::parse_target(" 0@17 "), Ok((0, 17)));
        assert!(HealthInjection::parse_target("4").is_err());
        assert!(HealthInjection::parse_target("x@2").is_err());
        assert!(HealthInjection::parse_target("4@").is_err());
    }

    #[test]
    fn cadence_gates_checks() {
        let mut cfg = HealthConfig::enabled();
        assert!(cfg.checks_step(0) && cfg.checks_step(1) && cfg.checks_step(7));
        cfg.every = 4;
        assert!(cfg.checks_step(0) && cfg.checks_step(8));
        assert!(!cfg.checks_step(3) && !cfg.checks_step(9));
        cfg.every = 0; // degenerate cadence is clamped, not a panic
        assert!(cfg.checks_step(5));
    }
}
