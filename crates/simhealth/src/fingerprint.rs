//! Order-invariant replica state fingerprints.

use nbody_durable::fnv1a;
use nbody_physics::Particle;

/// Fingerprint a rank's particle state for cross-replica comparison.
///
/// Each particle is hashed independently (FNV-1a over the little-endian
/// bit patterns of `id`, position, velocity, and mass) and the per-particle
/// hashes are combined with wrapping addition, so the fingerprint is
/// **order-invariant**: replicas that hold the same particles in a
/// different order — which the all-pairs schedule legitimately produces
/// after shifts — still agree. Force accumulators are deliberately
/// excluded: they are transient per-step scratch, not replicated state.
///
/// Single-bit sensitivity comes from FNV-1a itself: flipping one bit of
/// one coordinate changes that particle's hash and therefore the sum.
/// (A sum can be fooled by *coordinated* multi-particle corruption, but
/// the threat model here is a single diverged replica, not an adversary.)
pub fn state_fingerprint(particles: &[Particle]) -> u64 {
    let mut acc = 0u64;
    let mut bytes = [0u8; 48];
    for p in particles {
        bytes[0..8].copy_from_slice(&p.id.to_le_bytes());
        bytes[8..16].copy_from_slice(&p.pos.x.to_bits().to_le_bytes());
        bytes[16..24].copy_from_slice(&p.pos.y.to_bits().to_le_bytes());
        bytes[24..32].copy_from_slice(&p.vel.x.to_bits().to_le_bytes());
        bytes[32..40].copy_from_slice(&p.vel.y.to_bits().to_le_bytes());
        bytes[40..48].copy_from_slice(&p.mass.to_bits().to_le_bytes());
        acc = acc.wrapping_add(fnv1a(&bytes));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_physics::Vec2;

    fn ensemble() -> Vec<Particle> {
        (0..32)
            .map(|i| {
                let f = i as f64;
                Particle::moving(
                    i,
                    Vec2::new(f * 0.37 - 3.0, (f * 1.91).sin()),
                    Vec2::new((f * 0.11).cos() * 1e-2, f * -7.5e-3),
                )
            })
            .collect()
    }

    #[test]
    fn permutation_invariant() {
        let a = ensemble();
        let mut b = a.clone();
        b.reverse();
        b.swap(3, 17);
        assert_eq!(state_fingerprint(&a), state_fingerprint(&b));
    }

    #[test]
    fn single_bit_flip_changes_fingerprint() {
        let a = ensemble();
        let base = state_fingerprint(&a);
        let mut b = a.clone();
        b[11].pos.x = f64::from_bits(b[11].pos.x.to_bits() ^ 1);
        assert_ne!(state_fingerprint(&b), base, "lsb of pos.x");
        let mut c = a.clone();
        c[0].vel.y = f64::from_bits(c[0].vel.y.to_bits() ^ (1 << 52));
        assert_ne!(state_fingerprint(&c), base, "mantissa-top of vel.y");
        let mut d = a;
        d[31].mass += 1e-12;
        assert_ne!(state_fingerprint(&d), base, "mass perturbation");
    }

    #[test]
    fn forces_do_not_participate() {
        let a = ensemble();
        let mut b = a.clone();
        for p in &mut b {
            p.force = Vec2::new(1.0e9, -2.5);
        }
        assert_eq!(
            state_fingerprint(&a),
            state_fingerprint(&b),
            "force accumulators are transient scratch"
        );
    }

    #[test]
    fn empty_state_is_zero() {
        assert_eq!(state_fingerprint(&[]), 0);
    }
}
