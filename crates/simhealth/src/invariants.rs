//! Per-rank partial conservation invariants.

use nbody_physics::Particle;

/// One rank's additive contribution to the run's conserved quantities.
///
/// Each field is a plain sum over particles (or interactions), so a
/// single world-level sum-allreduce of the four components yields the
/// global invariants. Kinetic energy and momentum come from the rank's
/// own particle block; potential energy is harvested inside the force
/// kernel, where the CA schedule evaluates every ordered pair exactly
/// once globally (so the summed pair potentials count each *unordered*
/// pair twice — the driver halves the reduced total).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Invariants {
    /// Σ ½ m v² over the rank's particles.
    pub kinetic: f64,
    /// Σ m vₓ over the rank's particles.
    pub momentum_x: f64,
    /// Σ m v_y over the rank's particles.
    pub momentum_y: f64,
    /// Σ pair potentials harvested from the rank's kernel calls
    /// (already halved by the driver when this struct holds the
    /// globally reduced value).
    pub potential: f64,
}

impl Invariants {
    /// Kinetic and momentum partial sums for a particle block; the
    /// potential term stays zero (it is harvested by the kernel, not
    /// computable from one rank's block alone).
    pub fn partial(particles: &[Particle]) -> Invariants {
        let mut inv = Invariants::default();
        for p in particles {
            inv.kinetic += p.kinetic_energy();
            let mom = p.momentum();
            inv.momentum_x += mom.x;
            inv.momentum_y += mom.y;
        }
        inv
    }

    /// Total energy: kinetic plus potential.
    pub fn energy(&self) -> f64 {
        self.kinetic + self.potential
    }

    /// Euclidean norm of the total momentum vector.
    pub fn momentum_norm(&self) -> f64 {
        (self.momentum_x * self.momentum_x + self.momentum_y * self.momentum_y).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_physics::Vec2;

    #[test]
    fn partial_sums_match_hand_computation() {
        let particles = vec![
            Particle {
                pos: Vec2::new(0.0, 0.0),
                vel: Vec2::new(2.0, 0.0),
                force: Vec2::zero(),
                mass: 3.0,
                id: 0,
            },
            Particle {
                pos: Vec2::new(1.0, 1.0),
                vel: Vec2::new(0.0, -1.0),
                force: Vec2::zero(),
                mass: 2.0,
                id: 1,
            },
        ];
        let inv = Invariants::partial(&particles);
        assert_eq!(inv.kinetic, 0.5 * 3.0 * 4.0 + 0.5 * 2.0 * 1.0); // 7.0
        assert_eq!(inv.momentum_x, 6.0);
        assert_eq!(inv.momentum_y, -2.0);
        assert_eq!(inv.potential, 0.0);
        assert_eq!(inv.energy(), 7.0);
        let expect = (36.0f64 + 4.0).sqrt();
        assert!((inv.momentum_norm() - expect).abs() < 1e-15);
    }

    #[test]
    fn partials_are_additive_across_blocks() {
        let all: Vec<Particle> = (0..10)
            .map(|i| {
                Particle::moving(
                    i,
                    Vec2::new(i as f64, -(i as f64)),
                    Vec2::new(0.3 * i as f64, 1.0 - 0.1 * i as f64),
                )
            })
            .collect();
        let whole = Invariants::partial(&all);
        let left = Invariants::partial(&all[..4]);
        let right = Invariants::partial(&all[4..]);
        assert!((whole.kinetic - (left.kinetic + right.kinetic)).abs() < 1e-12);
        assert!((whole.momentum_x - (left.momentum_x + right.momentum_x)).abs() < 1e-12);
        assert!((whole.momentum_y - (left.momentum_y + right.momentum_y)).abs() < 1e-12);
    }
}
