//! Non-finite sentinels: cheap NaN/Inf scans that name the culprit.

use nbody_physics::Particle;

/// The first non-finite value found by a sentinel scan, with enough
/// attribution to blame a concrete (particle, field) in the flight
/// recorder instead of reporting "something is NaN somewhere".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonFiniteBlame {
    /// Index of the offending particle in the scanned slice.
    pub index: usize,
    /// The particle's stable global id.
    pub id: u64,
    /// Which field tripped the sentinel (`"force"`, `"pos"`, `"vel"`,
    /// or `"mass"`).
    pub field: &'static str,
}

impl NonFiniteBlame {
    /// Render the flight-event detail string for this blame.
    pub fn detail(&self, rank: usize, step: u64, phase: &str) -> String {
        format!(
            "non-finite {} at rank {} step {} phase {}: particle index {} (id {})",
            self.field, rank, step, phase, self.index, self.id
        )
    }
}

/// Scan force accumulators only — the post-reduction sentinel, run after
/// the column sum-reduce and before the integrator consumes the forces.
/// Returns the first offender, or `None` if every force is finite.
pub fn scan_forces(particles: &[Particle]) -> Option<NonFiniteBlame> {
    particles.iter().enumerate().find_map(|(index, p)| {
        (!p.force.is_finite()).then_some(NonFiniteBlame {
            index,
            id: p.id,
            field: "force",
        })
    })
}

/// Scan integrated state (position, velocity, mass) — the post-integrate
/// sentinel. Forces are skipped here: they were already checked by
/// [`scan_forces`] before the integrator ran, and some integrators reset
/// them. Returns the first offender, or `None` if the state is finite.
pub fn scan_state(particles: &[Particle]) -> Option<NonFiniteBlame> {
    particles.iter().enumerate().find_map(|(index, p)| {
        let field = if !p.pos.is_finite() {
            "pos"
        } else if !p.vel.is_finite() {
            "vel"
        } else if !p.mass.is_finite() {
            "mass"
        } else {
            return None;
        };
        Some(NonFiniteBlame {
            index,
            id: p.id,
            field,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_physics::Vec2;

    fn clean(n: u64) -> Vec<Particle> {
        (0..n)
            .map(|i| Particle::moving(i, Vec2::new(i as f64, 0.5), Vec2::new(0.1, -0.2)))
            .collect()
    }

    #[test]
    fn clean_state_passes_both_scans() {
        let st = clean(16);
        assert_eq!(scan_forces(&st), None);
        assert_eq!(scan_state(&st), None);
    }

    #[test]
    fn force_nan_is_blamed_with_index_and_id() {
        let mut st = clean(16);
        st[9].force.y = f64::NAN;
        let blame = scan_forces(&st).expect("sentinel must fire");
        assert_eq!(blame, NonFiniteBlame { index: 9, id: 9, field: "force" });
        // The force scan does not look at integrated state…
        assert_eq!(scan_state(&st), None);
        let detail = blame.detail(2, 7, "force");
        assert!(detail.contains("rank 2") && detail.contains("step 7"), "{detail}");
        assert!(detail.contains("index 9"), "{detail}");
    }

    #[test]
    fn state_scan_blames_first_offending_field() {
        let mut st = clean(8);
        st[3].vel.x = f64::INFINITY;
        st[5].pos.y = f64::NAN;
        let blame = scan_state(&st).expect("sentinel must fire");
        // First offender in slice order wins: index 3's velocity.
        assert_eq!(blame.index, 3);
        assert_eq!(blame.field, "vel");
        // …and the state scan ignores forces.
        let mut st2 = clean(4);
        st2[0].force.x = f64::NAN;
        assert_eq!(scan_state(&st2), None);
    }

    #[test]
    fn mass_corruption_is_caught() {
        let mut st = clean(4);
        st[2].mass = f64::NAN;
        assert_eq!(scan_state(&st).map(|b| b.field), Some("mass"));
    }
}
