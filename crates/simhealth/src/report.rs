//! End-of-run health reports and the CI baseline gate.

use nbody_trace::Json;

/// Aggregated health verdict for one run, built step by step by the
/// driver as global invariants are reduced.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HealthReport {
    /// Number of steps on which the monitors actually ran.
    pub steps_checked: u64,
    /// Global total energy at the first checked step.
    pub energy_first: f64,
    /// Global total energy at the last checked step.
    pub energy_last: f64,
    /// max over checked steps of |E(t) − E(0)| / |E(0)|.
    pub max_rel_energy_drift: f64,
    /// max over checked steps of the total momentum norm.
    pub max_momentum_norm: f64,
    /// Non-finite sentinel triggers (any rank, any phase).
    pub sentinel_events: u64,
    /// Replica fingerprint mismatches detected by the cross-check.
    pub fingerprint_mismatches: u64,
}

impl HealthReport {
    /// Fold one checked step's reduced global invariants into the report.
    pub fn record(&mut self, energy: f64, momentum_norm: f64) {
        if self.steps_checked == 0 {
            self.energy_first = energy;
        }
        self.energy_last = energy;
        self.steps_checked += 1;
        if self.energy_first != 0.0 {
            let drift = ((energy - self.energy_first) / self.energy_first).abs();
            self.max_rel_energy_drift = self.max_rel_energy_drift.max(drift);
        }
        self.max_momentum_norm = self.max_momentum_norm.max(momentum_norm);
    }

    /// Whether the run finished with no detector firing.
    pub fn is_clean(&self) -> bool {
        self.sentinel_events == 0 && self.fingerprint_mismatches == 0
    }
}

/// Thresholds a run's [`HealthReport`] must stay within — the CI gate.
///
/// Serialized as a small JSON object in `bench_results/health_baseline.json`
/// next to the perf baselines, and versioned in git so a regression in
/// numerical quality fails the build the same way a perf regression does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthBaseline {
    /// Ceiling on [`HealthReport::max_rel_energy_drift`].
    pub max_rel_energy_drift: f64,
    /// Ceiling on sentinel triggers (normally 0).
    pub max_sentinel_events: u64,
    /// Ceiling on fingerprint mismatches (normally 0).
    pub max_fingerprint_mismatches: u64,
}

impl HealthBaseline {
    /// Parse the baseline JSON.
    pub fn parse(src: &str) -> Result<HealthBaseline, String> {
        let v = Json::parse(src)?;
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("health baseline missing numeric '{key}'"))
        };
        Ok(HealthBaseline {
            max_rel_energy_drift: num("max_rel_energy_drift")?,
            max_sentinel_events: num("max_sentinel_events")? as u64,
            max_fingerprint_mismatches: num("max_fingerprint_mismatches")? as u64,
        })
    }

    /// Serialize in the `bench_results/health_baseline.json` format.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            (
                "max_rel_energy_drift".into(),
                Json::Num(self.max_rel_energy_drift),
            ),
            (
                "max_sentinel_events".into(),
                Json::Num(self.max_sentinel_events as f64),
            ),
            (
                "max_fingerprint_mismatches".into(),
                Json::Num(self.max_fingerprint_mismatches as f64),
            ),
        ])
        .to_string()
    }

    /// Check a report against the baseline; returns one human-readable
    /// violation per breached threshold (empty ⇒ the gate passes).
    pub fn gate(&self, report: &HealthReport) -> Vec<String> {
        let mut violations = Vec::new();
        if report.max_rel_energy_drift > self.max_rel_energy_drift {
            violations.push(format!(
                "relative energy drift {:.3e} exceeds baseline {:.3e}",
                report.max_rel_energy_drift, self.max_rel_energy_drift
            ));
        }
        if report.sentinel_events > self.max_sentinel_events {
            violations.push(format!(
                "{} non-finite sentinel event(s) exceed baseline {}",
                report.sentinel_events, self.max_sentinel_events
            ));
        }
        if report.fingerprint_mismatches > self.max_fingerprint_mismatches {
            violations.push(format!(
                "{} replica fingerprint mismatch(es) exceed baseline {}",
                report.fingerprint_mismatches, self.max_fingerprint_mismatches
            ));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_drift_and_momentum_extremes() {
        let mut r = HealthReport::default();
        r.record(-10.0, 1e-14);
        r.record(-10.2, 3e-14);
        r.record(-10.1, 2e-14);
        assert_eq!(r.steps_checked, 3);
        assert_eq!(r.energy_first, -10.0);
        assert_eq!(r.energy_last, -10.1);
        assert!((r.max_rel_energy_drift - 0.02).abs() < 1e-12);
        assert_eq!(r.max_momentum_norm, 3e-14);
        assert!(r.is_clean());
    }

    #[test]
    fn baseline_round_trips_and_gates() {
        let base = HealthBaseline {
            max_rel_energy_drift: 0.05,
            max_sentinel_events: 0,
            max_fingerprint_mismatches: 0,
        };
        let back = HealthBaseline::parse(&base.to_json()).unwrap();
        assert_eq!(back, base);

        let mut good = HealthReport::default();
        good.record(-5.0, 1e-13);
        good.record(-5.01, 1e-13);
        assert!(base.gate(&good).is_empty());

        let mut bad = good;
        bad.sentinel_events = 1;
        bad.max_rel_energy_drift = 0.2;
        let violations = base.gate(&bad);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("sentinel")));
        assert!(violations.iter().any(|v| v.contains("drift")));
    }

    #[test]
    fn baseline_parse_rejects_missing_keys() {
        assert!(HealthBaseline::parse("{}").is_err());
        assert!(HealthBaseline::parse("not json").is_err());
    }
}
