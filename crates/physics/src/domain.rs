//! Simulation domain geometry and boundary conditions.
//!
//! The paper's code "simulates particles moving in a two-dimensional space
//! with reflective boundary conditions" (§III.C). We support both reflective
//! and periodic boundaries; periodic boundaries use minimum-image
//! displacements in force evaluation, matching common MD practice.

use crate::vec2::Vec2;

/// An axis-aligned rectangular simulation domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    /// Lower-left corner.
    pub min: Vec2,
    /// Upper-right corner.
    pub max: Vec2,
}

impl Domain {
    /// Build a domain from corner points. Panics if degenerate.
    pub fn new(min: Vec2, max: Vec2) -> Self {
        assert!(
            max.x > min.x && max.y > min.y,
            "degenerate domain: min {min:?}, max {max:?}"
        );
        Domain { min, max }
    }

    /// A square domain `[0, side] x [0, side]`.
    pub fn square(side: f64) -> Self {
        Domain::new(Vec2::zero(), Vec2::new(side, side))
    }

    /// The unit square.
    pub fn unit() -> Self {
        Domain::square(1.0)
    }

    /// Side lengths.
    #[inline]
    pub fn extent(&self) -> Vec2 {
        self.max - self.min
    }

    /// Length along x — the decomposed axis for 1D spatial decompositions
    /// (the paper's simulation space length `l` in Eq. 6).
    #[inline]
    pub fn length_x(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Length along y.
    #[inline]
    pub fn length_y(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Whether `p` lies inside the half-open box `[min, max)`.
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x < self.max.x && p.y >= self.min.y && p.y < self.max.y
    }

    /// Center of the domain.
    #[inline]
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }
}

/// Boundary condition applied after integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Particles bounce off walls elastically (position mirrored, velocity
    /// component negated). This is the paper's setting.
    Reflective,
    /// Particles wrap around; force evaluation uses minimum-image
    /// displacements.
    Periodic,
    /// No boundary handling (free space); useful for gravity examples.
    Open,
}

/// Reflect `x` into `[lo, hi]`, flipping `v`'s sign once per bounce.
/// Handles multiple bounces for particles that overshoot by more than one
/// domain length in a single step.
fn reflect_axis(x: f64, v: f64, lo: f64, hi: f64) -> (f64, f64) {
    let len = hi - lo;
    debug_assert!(len > 0.0);
    let mut x = x;
    let mut v = v;
    // Each loop iteration handles one wall crossing. The iteration count is
    // bounded because every reflection strictly reduces the overshoot.
    loop {
        if x < lo {
            x = lo + (lo - x);
            v = -v;
        } else if x > hi {
            x = hi - (x - hi);
            v = -v;
        } else {
            return (x, v);
        }
        // Guard against pathological velocities producing huge overshoots:
        // fold the overshoot into a single period first.
        if x < lo - 2.0 * len || x > hi + 2.0 * len {
            let span = 2.0 * len;
            let mut t = (x - lo).rem_euclid(span);
            if t > len {
                t = span - t;
                v = -v;
            }
            x = lo + t;
        }
    }
}

/// Wrap `x` into `[lo, hi)` periodically.
#[inline]
fn wrap_axis(x: f64, lo: f64, hi: f64) -> f64 {
    let len = hi - lo;
    let w = lo + (x - lo).rem_euclid(len);
    // rem_euclid can return exactly `len` due to rounding; fold it back.
    if w >= hi {
        lo
    } else {
        w
    }
}

impl Boundary {
    /// Apply the boundary condition to a position/velocity pair, returning
    /// the corrected pair.
    pub fn apply(&self, domain: &Domain, pos: Vec2, vel: Vec2) -> (Vec2, Vec2) {
        match self {
            Boundary::Reflective => {
                let (x, vx) = reflect_axis(pos.x, vel.x, domain.min.x, domain.max.x);
                let (y, vy) = reflect_axis(pos.y, vel.y, domain.min.y, domain.max.y);
                (Vec2::new(x, y), Vec2::new(vx, vy))
            }
            Boundary::Periodic => (
                Vec2::new(
                    wrap_axis(pos.x, domain.min.x, domain.max.x),
                    wrap_axis(pos.y, domain.min.y, domain.max.y),
                ),
                vel,
            ),
            Boundary::Open => (pos, vel),
        }
    }

    /// Displacement `to - from` under this boundary condition. For periodic
    /// boundaries this is the minimum-image displacement.
    pub fn displacement(&self, domain: &Domain, from: Vec2, to: Vec2) -> Vec2 {
        let d = to - from;
        match self {
            Boundary::Periodic => {
                let ext = domain.extent();
                let mut dx = d.x;
                let mut dy = d.y;
                if dx > 0.5 * ext.x {
                    dx -= ext.x;
                } else if dx < -0.5 * ext.x {
                    dx += ext.x;
                }
                if dy > 0.5 * ext.y {
                    dy -= ext.y;
                } else if dy < -0.5 * ext.y {
                    dy += ext.y;
                }
                Vec2::new(dx, dy)
            }
            _ => d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_basics() {
        let d = Domain::square(4.0);
        assert_eq!(d.extent(), Vec2::new(4.0, 4.0));
        assert_eq!(d.length_x(), 4.0);
        assert_eq!(d.center(), Vec2::new(2.0, 2.0));
        assert!(d.contains(Vec2::new(0.0, 3.9)));
        assert!(!d.contains(Vec2::new(4.0, 2.0)));
        assert!(!d.contains(Vec2::new(-0.1, 2.0)));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_domain_rejected() {
        let _ = Domain::new(Vec2::new(1.0, 0.0), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn reflective_bounce_flips_velocity() {
        let d = Domain::unit();
        let (pos, vel) =
            Boundary::Reflective.apply(&d, Vec2::new(1.2, 0.5), Vec2::new(1.0, 0.0));
        assert!((pos.x - 0.8).abs() < 1e-12);
        assert_eq!(vel, Vec2::new(-1.0, 0.0));
        assert_eq!(pos.y, 0.5);
    }

    #[test]
    fn reflective_double_bounce() {
        let d = Domain::unit();
        // Overshoot past the far wall and back: 1.0 -> reflect at 1 -> 0.8? no:
        // x = -0.3 reflects to 0.3 with flipped velocity.
        let (pos, vel) =
            Boundary::Reflective.apply(&d, Vec2::new(-0.3, 0.5), Vec2::new(-2.0, 0.0));
        assert!((pos.x - 0.3).abs() < 1e-12);
        assert_eq!(vel.x, 2.0);
    }

    #[test]
    fn reflective_handles_large_overshoot() {
        let d = Domain::unit();
        let (pos, _vel) =
            Boundary::Reflective.apply(&d, Vec2::new(7.3, 0.5), Vec2::new(10.0, 0.0));
        assert!((0.0..=1.0).contains(&pos.x), "pos.x = {}", pos.x);
    }

    #[test]
    fn periodic_wrap() {
        let d = Domain::unit();
        let (pos, vel) = Boundary::Periodic.apply(&d, Vec2::new(1.25, -0.5), Vec2::new(1.0, 1.0));
        assert!((pos.x - 0.25).abs() < 1e-12);
        assert!((pos.y - 0.5).abs() < 1e-12);
        assert_eq!(vel, Vec2::new(1.0, 1.0)); // periodic wrap preserves velocity
    }

    #[test]
    fn periodic_minimum_image() {
        let d = Domain::unit();
        let disp =
            Boundary::Periodic.displacement(&d, Vec2::new(0.05, 0.5), Vec2::new(0.95, 0.5));
        assert!((disp.x - -0.1).abs() < 1e-12, "wrapped displacement, got {disp:?}");
    }

    #[test]
    fn open_boundary_is_identity() {
        let d = Domain::unit();
        let p = Vec2::new(5.0, -3.0);
        let v = Vec2::new(1.0, 2.0);
        assert_eq!(Boundary::Open.apply(&d, p, v), (p, v));
        assert_eq!(
            Boundary::Open.displacement(&d, Vec2::zero(), p),
            p
        );
    }

    #[test]
    fn reflective_displacement_is_euclidean() {
        let d = Domain::unit();
        let disp =
            Boundary::Reflective.displacement(&d, Vec2::new(0.05, 0.5), Vec2::new(0.95, 0.5));
        assert!((disp.x - 0.9).abs() < 1e-12);
    }

    #[test]
    fn wrap_axis_edge_cases() {
        assert_eq!(wrap_axis(1.0, 0.0, 1.0), 0.0);
        assert_eq!(wrap_axis(0.0, 0.0, 1.0), 0.0);
        assert!((wrap_axis(-0.25, 0.0, 1.0) - 0.75).abs() < 1e-12);
    }
}
