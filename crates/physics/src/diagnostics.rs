//! Conserved-quantity diagnostics used by tests and examples.

use crate::domain::{Boundary, Domain};
use crate::force::ForceLaw;
use crate::particle::Particle;
use crate::vec2::Vec2;

/// Total linear momentum.
pub fn total_momentum(particles: &[Particle]) -> Vec2 {
    particles.iter().map(|p| p.momentum()).sum()
}

/// Total kinetic energy.
pub fn total_kinetic_energy(particles: &[Particle]) -> f64 {
    particles.iter().map(|p| p.kinetic_energy()).sum()
}

/// Total pair potential energy, counted once per unordered pair.
pub fn total_potential_energy<F: ForceLaw>(
    particles: &[Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) -> f64 {
    let mut total = 0.0;
    for i in 0..particles.len() {
        for j in (i + 1)..particles.len() {
            let disp = boundary.displacement(domain, particles[i].pos, particles[j].pos);
            total += law.potential(&particles[i], &particles[j], disp);
        }
    }
    total
}

/// Total energy (kinetic + potential).
pub fn total_energy<F: ForceLaw>(
    particles: &[Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) -> f64 {
    total_kinetic_energy(particles) + total_potential_energy(particles, law, domain, boundary)
}

/// Mass-weighted center of mass.
pub fn center_of_mass(particles: &[Particle]) -> Vec2 {
    let total_mass: f64 = particles.iter().map(|p| p.mass).sum();
    assert!(total_mass > 0.0, "center of mass of empty/massless system");
    particles
        .iter()
        .map(|p| p.pos * p.mass)
        .sum::<Vec2>()
        / total_mass
}

/// Kinetic temperature in 2D: `T = KE / (N k_B)` with `k_B = 1` and two
/// degrees of freedom per particle (`KE = N k_B T` in 2D).
pub fn temperature(particles: &[Particle]) -> f64 {
    if particles.is_empty() {
        return 0.0;
    }
    total_kinetic_energy(particles) / particles.len() as f64
}

/// Radial distribution function g(r) estimated over `bins` shells up to
/// `r_max`, normalized against the ideal-gas expectation in 2D (shell area
/// `2πr·dr` at the average density). Returns `(r_mid, g)` pairs.
pub fn radial_distribution(
    particles: &[Particle],
    domain: &Domain,
    boundary: Boundary,
    r_max: f64,
    bins: usize,
) -> Vec<(f64, f64)> {
    assert!(bins > 0 && r_max > 0.0);
    let n = particles.len();
    if n < 2 {
        return (0..bins)
            .map(|b| ((b as f64 + 0.5) * r_max / bins as f64, 0.0))
            .collect();
    }
    let dr = r_max / bins as f64;
    let mut counts = vec![0u64; bins];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = boundary
                .displacement(domain, particles[i].pos, particles[j].pos)
                .norm();
            if d < r_max {
                counts[(d / dr) as usize] += 2; // both directions
            }
        }
    }
    let area = domain.extent().x * domain.extent().y;
    let density = n as f64 / area;
    counts
        .iter()
        .enumerate()
        .map(|(b, &k)| {
            let r_mid = (b as f64 + 0.5) * dr;
            let shell = std::f64::consts::TAU * r_mid * dr;
            let ideal = density * shell * n as f64;
            (r_mid, k as f64 / ideal)
        })
        .collect()
}

/// Maximum force magnitude; a cheap blow-up detector for integration tests.
pub fn max_force(particles: &[Particle]) -> f64 {
    particles
        .iter()
        .map(|p| p.force.norm())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::force::Gravity;
    use crate::init;
    use crate::integrator::VelocityVerlet;
    use crate::reference;

    #[test]
    fn momentum_of_thermalized_system_is_zero() {
        let d = Domain::unit();
        let mut ps = init::uniform(32, &d, 1);
        init::thermalize(&mut ps, 1.0, 2);
        assert!(total_momentum(&ps).norm() < 1e-12);
    }

    #[test]
    fn center_of_mass_weighted() {
        let ps = vec![
            Particle::at(0, Vec2::new(0.0, 0.0)).with_mass(1.0),
            Particle::at(1, Vec2::new(3.0, 0.0)).with_mass(3.0),
        ];
        assert_eq!(center_of_mass(&ps), Vec2::new(2.25, 0.0));
    }

    #[test]
    fn energy_conserved_by_verlet_two_body() {
        let d = Domain::square(10.0);
        let law = Gravity {
            g: 1.0,
            softening: 0.1,
        };
        let mut ps = vec![
            Particle::moving(0, Vec2::new(4.0, 5.0), Vec2::new(0.0, 0.3)),
            Particle::moving(1, Vec2::new(6.0, 5.0), Vec2::new(0.0, -0.3)),
        ];
        // Prime the accumulator for Verlet.
        reference::accumulate_forces(&mut ps, &law, &d, Boundary::Open);
        let e0 = total_energy(&ps, &law, &d, Boundary::Open);
        for _ in 0..2000 {
            reference::step(&mut ps, &law, &VelocityVerlet, 0.005, &d, Boundary::Open);
        }
        let e1 = total_energy(&ps, &law, &d, Boundary::Open);
        assert!(
            (e1 - e0).abs() < 1e-3 * e0.abs().max(1.0),
            "energy drift: {e0} -> {e1}"
        );
    }

    #[test]
    fn potential_counts_each_pair_once() {
        // Three particles, constant pair potential 2.0 via tail-only cutoff.
        use crate::force::{Counting, Cutoff};
        let d = Domain::unit();
        let ps = vec![
            Particle::at(0, Vec2::new(0.1, 0.1)),
            Particle::at(1, Vec2::new(0.9, 0.9)),
            Particle::at(2, Vec2::new(0.9, 0.1)),
        ];
        // cutoff tiny => every pair beyond cutoff => tail energy each.
        let law = Cutoff::new(Counting, 1e-6).with_tail_energy(2.0);
        let u = total_potential_energy(&ps, &law, &d, Boundary::Open);
        assert_eq!(u, 6.0, "3 unordered pairs x 2.0");
    }

    #[test]
    fn temperature_matches_definition() {
        let d = Domain::unit();
        let mut ps = init::uniform(100, &d, 3);
        init::thermalize(&mut ps, 2.5, 4);
        let t = temperature(&ps);
        // Thermalize draws component velocities at std sqrt(T/m): KE/N ~ T.
        assert!((t - 2.5).abs() < 0.8, "temperature {t}");
        assert_eq!(temperature(&[]), 0.0);
    }

    #[test]
    fn rdf_of_uniform_gas_is_flat() {
        let d = Domain::unit();
        let ps = init::uniform(600, &d, 8);
        let g = radial_distribution(&ps, &d, Boundary::Periodic, 0.3, 6);
        assert_eq!(g.len(), 6);
        for &(r, v) in &g {
            assert!(r > 0.0 && r < 0.3);
            assert!((v - 1.0).abs() < 0.25, "g({r}) = {v} should be ~1 for a uniform gas");
        }
    }

    #[test]
    fn rdf_detects_exclusion_zone() {
        // A lattice gas has (near-)zero g(r) below the lattice spacing.
        let d = Domain::unit();
        let ps = init::lattice(100, &d); // spacing 0.1
        let g = radial_distribution(&ps, &d, Boundary::Open, 0.09, 3);
        for &(_, v) in &g {
            assert_eq!(v, 0.0, "no pairs closer than the lattice spacing");
        }
    }

    #[test]
    fn max_force_detects_blowup() {
        let mut ps = vec![Particle::at(0, Vec2::zero()), Particle::at(1, Vec2::zero())];
        ps[1].force = Vec2::new(3.0, 4.0);
        assert_eq!(max_force(&ps), 5.0);
    }
}
