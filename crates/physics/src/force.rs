//! Pairwise force laws.
//!
//! The paper's experiments use a repulsive force that "drops off with the
//! square of their distance" (§III.C); we implement that law plus gravity and
//! Lennard-Jones to exercise the API's generality, a [`Counting`] law used
//! for exact pair-coverage tests, and a [`Cutoff`] wrapper implementing the
//! paper's finite cutoff radius `r_c` (§IV) under which interactions beyond
//! `r_c` have "constant or zero effect".
//!
//! Note: the paper explicitly does *not* exploit force symmetry ("The force
//! is symmetric, but it need not be and we do not apply optimizations to
//! exploit the symmetry"). The distributed algorithms in `ca-nbody` follow
//! the same rule: every ordered pair `(i, j)` with `i != j` is evaluated.

use crate::particle::Particle;
use crate::vec2::Vec2;

/// A pairwise force law.
///
/// `disp` is the displacement `source.pos - target.pos`, already corrected
/// for boundary conditions (minimum image under periodic boundaries). Passing
/// the displacement instead of raw positions keeps boundary handling out of
/// the force kernels.
pub trait ForceLaw: Sync {
    /// Force exerted **on** `target` **by** `source`.
    fn force(&self, target: &Particle, source: &Particle, disp: Vec2) -> Vec2;

    /// Pair potential energy, counted once per unordered pair.
    fn potential(&self, _target: &Particle, _source: &Particle, _disp: Vec2) -> f64 {
        0.0
    }

    /// Interaction cutoff radius, if any. `None` means all-pairs.
    fn cutoff(&self) -> Option<f64> {
        None
    }

    /// Whether `f_ij = -f_ji` holds; diagnostics use this to decide if
    /// momentum conservation is a valid invariant.
    fn is_symmetric(&self) -> bool {
        true
    }

    /// Nominal floating-point operations per force evaluation, the
    /// conversion factor from interaction counts to FLOP totals (Harfst
    /// et al.'s hardware-efficiency accounting). Counts multiplies, adds,
    /// divides, and square roots as one FLOP each, including the force
    /// accumulation; transcendental calls are costed at their typical
    /// polynomial expansion. An estimate, not a measurement — what matters
    /// for roofline comparisons is that it is fixed per law.
    fn flops_per_interaction(&self) -> u64 {
        20
    }
}

/// The paper's force: repulsion with inverse-square falloff,
/// `F = k m_i m_j / (r^2 + eps^2)` directed away from the source.
#[derive(Debug, Clone, Copy)]
pub struct RepulsiveInverseSquare {
    /// Force constant `k`.
    pub strength: f64,
    /// Plummer-style softening length; avoids the singularity when particles
    /// coincide. Zero is allowed (coincident particles then exert no force
    /// because the direction is undefined — see [`Vec2::normalized`]).
    pub softening: f64,
}

impl Default for RepulsiveInverseSquare {
    fn default() -> Self {
        RepulsiveInverseSquare {
            strength: 1e-4,
            softening: 1e-6,
        }
    }
}

impl ForceLaw for RepulsiveInverseSquare {
    #[inline]
    fn force(&self, target: &Particle, source: &Particle, disp: Vec2) -> Vec2 {
        let r2 = disp.norm_sq() + self.softening * self.softening;
        if r2 == 0.0 {
            return Vec2::zero();
        }
        let mag = self.strength * target.mass * source.mass / r2;
        // Repulsive: push the target away from the source, i.e. opposite the
        // displacement toward the source.
        -disp.normalized() * mag
    }

    #[inline]
    fn potential(&self, target: &Particle, source: &Particle, disp: Vec2) -> f64 {
        let r = (disp.norm_sq() + self.softening * self.softening).sqrt();
        if r == 0.0 {
            return 0.0;
        }
        self.strength * target.mass * source.mass / r
    }

    // norm_sq (3) + softening (2) + magnitude (3) + normalize (6) +
    // scale/negate (2) + accumulate (2) + compare (1) + guard slack.
    fn flops_per_interaction(&self) -> u64 {
        20
    }
}

/// Newtonian gravity with Plummer softening, `F = G m_i m_j / (r^2 + eps^2)`
/// directed toward the source.
#[derive(Debug, Clone, Copy)]
pub struct Gravity {
    /// Gravitational constant.
    pub g: f64,
    /// Plummer softening length.
    pub softening: f64,
}

impl Default for Gravity {
    fn default() -> Self {
        Gravity {
            g: 1.0,
            softening: 1e-3,
        }
    }
}

impl ForceLaw for Gravity {
    #[inline]
    fn force(&self, target: &Particle, source: &Particle, disp: Vec2) -> Vec2 {
        let r2 = disp.norm_sq() + self.softening * self.softening;
        if r2 == 0.0 {
            return Vec2::zero();
        }
        let mag = self.g * target.mass * source.mass / r2;
        disp.normalized() * mag
    }

    #[inline]
    fn potential(&self, target: &Particle, source: &Particle, disp: Vec2) -> f64 {
        let r = (disp.norm_sq() + self.softening * self.softening).sqrt();
        if r == 0.0 {
            return 0.0;
        }
        -self.g * target.mass * source.mass / r
    }

    // Same operation mix as the repulsive law, opposite sign.
    fn flops_per_interaction(&self) -> u64 {
        20
    }
}

/// The 12-6 Lennard-Jones potential, the standard short-range MD force the
/// paper's cutoff discussion targets (§II.C).
#[derive(Debug, Clone, Copy)]
pub struct LennardJones {
    /// Well depth.
    pub epsilon: f64,
    /// Zero-crossing distance.
    pub sigma: f64,
}

impl Default for LennardJones {
    fn default() -> Self {
        LennardJones {
            epsilon: 1.0,
            sigma: 1.0,
        }
    }
}

impl ForceLaw for LennardJones {
    #[inline]
    fn force(&self, _target: &Particle, _source: &Particle, disp: Vec2) -> Vec2 {
        let r2 = disp.norm_sq();
        if r2 == 0.0 {
            return Vec2::zero();
        }
        let s2 = self.sigma * self.sigma / r2;
        let s6 = s2 * s2 * s2;
        let s12 = s6 * s6;
        // dU/dr resolved along the pair axis; positive magnitude = repulsion.
        let mag_over_r = 24.0 * self.epsilon * (2.0 * s12 - s6) / r2;
        -disp * mag_over_r
    }

    #[inline]
    fn potential(&self, _target: &Particle, _source: &Particle, disp: Vec2) -> f64 {
        let r2 = disp.norm_sq();
        if r2 == 0.0 {
            return 0.0;
        }
        let s2 = self.sigma * self.sigma / r2;
        let s6 = s2 * s2 * s2;
        4.0 * self.epsilon * (s6 * s6 - s6)
    }

    // norm_sq (3) + s2/s6/s12 ladder (6) + magnitude (5) + scale/negate
    // (4) + accumulate (2) + compare (1) + guard slack.
    fn flops_per_interaction(&self) -> u64 {
        23
    }
}

/// A diagnostic "force" that adds exactly `(1, 0)` per evaluated pair.
///
/// Because pair counts are small integers, sums are exact in `f64`, so a
/// distributed algorithm computes the correct result **iff** every particle's
/// accumulated x-force equals its exact neighbor count. This is the workhorse
/// of the pair-coverage test suite: it detects missed pairs, double-counted
/// pairs, and self-interactions regardless of reduction order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counting;

impl ForceLaw for Counting {
    #[inline]
    fn force(&self, _target: &Particle, _source: &Particle, _disp: Vec2) -> Vec2 {
        Vec2::new(1.0, 0.0)
    }

    fn is_symmetric(&self) -> bool {
        false
    }

    // Only the two accumulator adds.
    fn flops_per_interaction(&self) -> u64 {
        2
    }
}

/// Wraps a force law with a finite cutoff radius `r_c` (§IV): pairs farther
/// apart than `r_c` contribute zero force. An optional constant tail energy
/// per truncated pair models the paper's "constant effect" approximation for
/// long-range contributions.
#[derive(Debug, Clone, Copy)]
pub struct Cutoff<F> {
    /// The wrapped short-range law.
    pub inner: F,
    /// Cutoff radius.
    pub r_c: f64,
    /// Constant potential assigned to each pair beyond the cutoff (the
    /// "constant or zero effect" of §IV). Zero by default.
    pub tail_energy: f64,
}

impl<F> Cutoff<F> {
    /// Wrap `inner` with cutoff radius `r_c` (must be positive).
    pub fn new(inner: F, r_c: f64) -> Self {
        assert!(r_c > 0.0, "cutoff radius must be positive, got {r_c}");
        Cutoff {
            inner,
            r_c,
            tail_energy: 0.0,
        }
    }

    /// Builder-style override of the constant tail energy per truncated pair.
    pub fn with_tail_energy(mut self, tail: f64) -> Self {
        self.tail_energy = tail;
        self
    }
}

impl<F: ForceLaw> ForceLaw for Cutoff<F> {
    #[inline]
    fn force(&self, target: &Particle, source: &Particle, disp: Vec2) -> Vec2 {
        if disp.norm_sq() > self.r_c * self.r_c {
            Vec2::zero()
        } else {
            self.inner.force(target, source, disp)
        }
    }

    #[inline]
    fn potential(&self, target: &Particle, source: &Particle, disp: Vec2) -> f64 {
        if disp.norm_sq() > self.r_c * self.r_c {
            self.tail_energy
        } else {
            self.inner.potential(target, source, disp)
        }
    }

    fn cutoff(&self) -> Option<f64> {
        Some(self.r_c)
    }

    fn is_symmetric(&self) -> bool {
        self.inner.is_symmetric()
    }

    // The range test (norm_sq + compare) on top of the inner law.
    fn flops_per_interaction(&self) -> u64 {
        self.inner.flops_per_interaction() + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Particle, Particle) {
        (
            Particle::at(0, Vec2::new(0.0, 0.0)),
            Particle::at(1, Vec2::new(2.0, 0.0)),
        )
    }

    #[test]
    fn repulsive_points_away_from_source() {
        let (a, b) = pair();
        let law = RepulsiveInverseSquare {
            strength: 1.0,
            softening: 0.0,
        };
        let disp = b.pos - a.pos; // source b is to the right
        let f = law.force(&a, &b, disp);
        assert!(f.x < 0.0, "target pushed left, away from source: {f:?}");
        assert!((f.x + 0.25).abs() < 1e-12, "1/r^2 with r=2 gives 0.25");
        assert_eq!(f.y, 0.0);
    }

    #[test]
    fn repulsive_is_newton_third_law_symmetric() {
        let (a, b) = pair();
        let law = RepulsiveInverseSquare::default();
        let f_ab = law.force(&a, &b, b.pos - a.pos);
        let f_ba = law.force(&b, &a, a.pos - b.pos);
        assert!((f_ab + f_ba).norm() < 1e-15);
        assert!(law.is_symmetric());
    }

    #[test]
    fn repulsive_coincident_particles_no_nan() {
        let a = Particle::at(0, Vec2::zero());
        let b = Particle::at(1, Vec2::zero());
        let law = RepulsiveInverseSquare {
            strength: 1.0,
            softening: 0.0,
        };
        let f = law.force(&a, &b, Vec2::zero());
        assert!(f.is_finite());
        assert_eq!(f, Vec2::zero());
    }

    #[test]
    fn gravity_attracts() {
        let (a, b) = pair();
        let law = Gravity {
            g: 1.0,
            softening: 0.0,
        };
        let f = law.force(&a, &b, b.pos - a.pos);
        assert!(f.x > 0.0, "target pulled toward source");
        assert!((f.x - 0.25).abs() < 1e-12);
        assert!(law.potential(&a, &b, b.pos - a.pos) < 0.0);
    }

    #[test]
    fn lennard_jones_sign_change_at_minimum() {
        let law = LennardJones::default();
        let a = Particle::at(0, Vec2::zero());
        // Repulsive inside r = 2^{1/6} sigma, attractive outside.
        let near = Particle::at(1, Vec2::new(1.0, 0.0));
        let far = Particle::at(2, Vec2::new(1.5, 0.0));
        let f_near = law.force(&a, &near, near.pos - a.pos);
        let f_far = law.force(&a, &far, far.pos - a.pos);
        assert!(f_near.x < 0.0, "repulsion pushes target left: {f_near:?}");
        assert!(f_far.x > 0.0, "attraction pulls target right: {f_far:?}");
    }

    #[test]
    fn lennard_jones_minimum_location() {
        let law = LennardJones::default();
        let a = Particle::at(0, Vec2::zero());
        let r_min = 2f64.powf(1.0 / 6.0);
        let b = Particle::at(1, Vec2::new(r_min, 0.0));
        let f = law.force(&a, &b, b.pos - a.pos);
        assert!(f.norm() < 1e-12, "zero force at potential minimum: {f:?}");
        let u = law.potential(&a, &b, b.pos - a.pos);
        assert!((u + 1.0).abs() < 1e-12, "well depth -epsilon: {u}");
    }

    #[test]
    fn counting_force_is_unit_per_pair() {
        let (a, b) = pair();
        assert_eq!(Counting.force(&a, &b, b.pos - a.pos), Vec2::new(1.0, 0.0));
        assert!(!Counting.is_symmetric());
    }

    #[test]
    fn cutoff_zeroes_far_pairs() {
        let (a, b) = pair(); // distance 2
        let law = Cutoff::new(
            RepulsiveInverseSquare {
                strength: 1.0,
                softening: 0.0,
            },
            1.0,
        );
        assert_eq!(law.force(&a, &b, b.pos - a.pos), Vec2::zero());
        assert_eq!(law.cutoff(), Some(1.0));

        let close = Particle::at(2, Vec2::new(0.5, 0.0));
        let f = law.force(&a, &close, close.pos - a.pos);
        assert!(f.norm() > 0.0, "inside cutoff still interacts");
    }

    #[test]
    fn cutoff_boundary_is_inclusive() {
        let a = Particle::at(0, Vec2::zero());
        let b = Particle::at(1, Vec2::new(1.0, 0.0));
        let law = Cutoff::new(Counting, 1.0);
        // distance exactly r_c: interaction is kept (r^2 > r_c^2 excludes).
        assert_eq!(law.force(&a, &b, b.pos - a.pos), Vec2::new(1.0, 0.0));
    }

    #[test]
    fn cutoff_tail_energy() {
        let (a, b) = pair();
        let law = Cutoff::new(Gravity::default(), 1.0).with_tail_energy(-0.125);
        assert_eq!(law.potential(&a, &b, b.pos - a.pos), -0.125);
    }

    #[test]
    #[should_panic(expected = "cutoff radius must be positive")]
    fn nonpositive_cutoff_rejected() {
        let _ = Cutoff::new(Counting, 0.0);
    }
}
