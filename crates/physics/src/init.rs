//! Initial-condition generators.
//!
//! All generators are deterministic given a seed, which keeps distributed
//! correctness tests reproducible. The paper's experiments keep "the particle
//! distribution nearly uniform over time" (§IV.D), which
//! [`uniform`]/[`uniform_1d`] model; [`gaussian_clusters`] deliberately
//! violates uniformity to exercise the load-imbalance paths.

use crate::domain::Domain;
use crate::particle::Particle;
use crate::vec2::Vec2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` particles uniformly distributed over `domain`, at rest, unit mass.
pub fn uniform(n: usize, domain: &Domain, seed: u64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|id| {
            let pos = Vec2::new(
                rng.gen_range(domain.min.x..domain.max.x),
                rng.gen_range(domain.min.y..domain.max.y),
            );
            Particle::at(id, pos)
        })
        .collect()
}

/// `n` particles uniform along x with `y` pinned to the domain center:
/// the embedding used for the paper's 1D-cutoff experiments.
pub fn uniform_1d(n: usize, domain: &Domain, seed: u64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let y = domain.center().y;
    (0..n as u64)
        .map(|id| {
            let x = rng.gen_range(domain.min.x..domain.max.x);
            Particle::at(id, Vec2::new(x, y))
        })
        .collect()
}

/// `n` particles on a near-square lattice filling the domain; deterministic
/// without randomness, handy for exactly reproducible small tests.
pub fn lattice(n: usize, domain: &Domain) -> Vec<Particle> {
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let ext = domain.extent();
    let dx = ext.x / cols as f64;
    let dy = ext.y / rows as f64;
    (0..n as u64)
        .map(|id| {
            let i = id as usize % cols;
            let j = id as usize / cols;
            let pos = domain.min
                + Vec2::new((i as f64 + 0.5) * dx, (j as f64 + 0.5) * dy);
            Particle::at(id, pos)
        })
        .collect()
}

/// `n` particles split evenly among `k` Gaussian blobs with standard
/// deviation `sigma`, clipped to the domain. Produces strong spatial load
/// imbalance for spatial decompositions.
pub fn gaussian_clusters(
    n: usize,
    domain: &Domain,
    k: usize,
    sigma: f64,
    seed: u64,
) -> Vec<Particle> {
    assert!(k > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec2> = (0..k)
        .map(|_| {
            Vec2::new(
                rng.gen_range(domain.min.x..domain.max.x),
                rng.gen_range(domain.min.y..domain.max.y),
            )
        })
        .collect();
    (0..n as u64)
        .map(|id| {
            let c = centers[id as usize % k];
            // Box-Muller Gaussian.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = sigma * (-2.0 * u1.ln()).sqrt();
            let mut pos = c + Vec2::new(r * u2.cos(), r * u2.sin());
            pos.x = pos.x.clamp(domain.min.x, domain.max.x - 1e-12 * domain.length_x());
            pos.y = pos.y.clamp(domain.min.y, domain.max.y - 1e-12 * domain.length_y());
            Particle::at(id, pos)
        })
        .collect()
}

/// Assign Maxwell-Boltzmann-like random velocities (Gaussian per component,
/// standard deviation `sqrt(temperature / mass)`), then remove the net drift
/// so total momentum is exactly zero.
pub fn thermalize(particles: &mut [Particle], temperature: f64, seed: u64) {
    assert!(temperature >= 0.0);
    if particles.is_empty() {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for p in particles.iter_mut() {
        let std = (temperature / p.mass).sqrt();
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let r = std * (-2.0 * u1.ln()).sqrt();
        p.vel = Vec2::new(r * u2.cos(), r * u2.sin());
    }
    // Remove drift.
    let total_mass: f64 = particles.iter().map(|p| p.mass).sum();
    let drift: Vec2 = particles.iter().map(|p| p.momentum()).sum::<Vec2>() / total_mass;
    for p in particles.iter_mut() {
        p.vel -= drift;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_domain_and_deterministic() {
        let d = Domain::square(10.0);
        let a = uniform(100, &d, 42);
        let b = uniform(100, &d, 42);
        assert_eq!(a, b, "same seed, same particles");
        assert!(a.iter().all(|p| d.contains(p.pos)));
        assert_eq!(a.len(), 100);
        // ids unique and consecutive
        for (i, p) in a.iter().enumerate() {
            assert_eq!(p.id, i as u64);
        }
        let c = uniform(100, &d, 43);
        assert_ne!(a, c, "different seed, different particles");
    }

    #[test]
    fn uniform_1d_pins_y() {
        let d = Domain::square(4.0);
        let ps = uniform_1d(50, &d, 7);
        assert!(ps.iter().all(|p| p.pos.y == 2.0));
        assert!(ps.iter().all(|p| d.contains(p.pos)));
    }

    #[test]
    fn lattice_covers_domain() {
        let d = Domain::unit();
        let ps = lattice(16, &d);
        assert_eq!(ps.len(), 16);
        assert!(ps.iter().all(|p| d.contains(p.pos)));
        // 4x4 lattice: distinct positions
        for i in 0..16 {
            for j in (i + 1)..16 {
                assert_ne!(ps[i].pos, ps[j].pos);
            }
        }
    }

    #[test]
    fn clusters_stay_in_domain() {
        let d = Domain::square(2.0);
        let ps = gaussian_clusters(200, &d, 3, 0.5, 1);
        assert_eq!(ps.len(), 200);
        assert!(ps.iter().all(|p| p.pos.x >= d.min.x && p.pos.x <= d.max.x));
        assert!(ps.iter().all(|p| p.pos.y >= d.min.y && p.pos.y <= d.max.y));
    }

    #[test]
    fn clusters_are_clustered() {
        // With tiny sigma, particles collapse near the k centers: the
        // spread within any cluster is far below the domain size.
        let d = Domain::square(100.0);
        let ps = gaussian_clusters(300, &d, 3, 0.01, 5);
        for i in (0..300).step_by(3) {
            // particles i and i+3 belong to the same cluster (round-robin)
            if i + 3 < 300 {
                assert!(ps[i].pos.distance(ps[i + 3].pos) < 1.0);
            }
        }
    }

    #[test]
    fn thermalize_zeroes_momentum() {
        let d = Domain::unit();
        let mut ps = uniform(64, &d, 9);
        thermalize(&mut ps, 2.0, 10);
        let total: Vec2 = ps.iter().map(|p| p.momentum()).sum();
        assert!(total.norm() < 1e-12, "net momentum {total:?}");
        let ke: f64 = ps.iter().map(|p| p.kinetic_energy()).sum();
        assert!(ke > 0.0);
    }

    #[test]
    fn thermalize_zero_temperature_is_rest() {
        let d = Domain::unit();
        let mut ps = uniform(8, &d, 9);
        thermalize(&mut ps, 0.0, 10);
        assert!(ps.iter().all(|p| p.vel.norm() == 0.0));
    }
}
