//! Serial reference engines.
//!
//! These are the ground truth every distributed algorithm is validated
//! against: a plain O(n^2) double loop with no cleverness. The distributed
//! algorithms in `ca-nbody` must reproduce these forces (exactly for the
//! [`Counting`](crate::force::Counting) law, and to tight floating-point
//! tolerances for physical laws, where only summation order differs).

use crate::domain::{Boundary, Domain};
use crate::force::ForceLaw;
use crate::integrator::Integrator;
use crate::particle::{reset_forces, Particle};

/// Accumulate forces on every particle from every other particle (all
/// ordered pairs `i != j`), exactly as the paper's algorithms do — symmetry
/// is not exploited.
pub fn accumulate_forces<F: ForceLaw>(
    particles: &mut [Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) {
    let n = particles.len();
    for i in 0..n {
        let target = particles[i];
        let mut acc = target.force;
        for (j, source) in particles.iter().enumerate() {
            if i == j {
                continue;
            }
            let disp = boundary.displacement(domain, target.pos, source.pos);
            acc += law.force(&target, source, disp);
        }
        particles[i].force = acc;
    }
}

/// One full reference timestep: integrator pre-phase, force reset and
/// accumulation, integrator post-phase.
pub fn step<F: ForceLaw, I: Integrator>(
    particles: &mut [Particle],
    law: &F,
    integrator: &I,
    dt: f64,
    domain: &Domain,
    boundary: Boundary,
) {
    integrator.pre_force(particles, dt);
    reset_forces(particles);
    accumulate_forces(particles, law, domain, boundary);
    integrator.post_force(particles, dt, domain, boundary);
}

/// A convenience wrapper owning simulation state; the serial twin of the
/// distributed `Simulation` driver in `ca-nbody`.
pub struct SerialEngine<F, I> {
    /// Current particle state.
    pub particles: Vec<Particle>,
    /// Pairwise force law.
    pub law: F,
    /// Time integrator.
    pub integrator: I,
    /// Timestep.
    pub dt: f64,
    /// Simulation domain.
    pub domain: Domain,
    /// Boundary condition.
    pub boundary: Boundary,
    steps_run: usize,
}

impl<F: ForceLaw, I: Integrator> SerialEngine<F, I> {
    /// Construct an engine from initial state and simulation parameters.
    pub fn new(
        particles: Vec<Particle>,
        law: F,
        integrator: I,
        dt: f64,
        domain: Domain,
        boundary: Boundary,
    ) -> Self {
        SerialEngine {
            particles,
            law,
            integrator,
            dt,
            domain,
            boundary,
            steps_run: 0,
        }
    }

    /// Run `steps` timesteps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            step(
                &mut self.particles,
                &self.law,
                &self.integrator,
                self.dt,
                &self.domain,
                self.boundary,
            );
        }
        self.steps_run += steps;
    }

    /// Total timesteps executed so far.
    pub fn steps_run(&self) -> usize {
        self.steps_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::{Counting, Cutoff, Gravity, RepulsiveInverseSquare};
    use crate::init;
    use crate::integrator::SemiImplicitEuler;
    use crate::vec2::Vec2;

    #[test]
    fn counting_force_counts_all_pairs() {
        let domain = Domain::unit();
        let mut ps = init::uniform(17, &domain, 3);
        accumulate_forces(&mut ps, &Counting, &domain, Boundary::Open);
        for p in &ps {
            assert_eq!(p.force.x, 16.0, "each particle sees n-1 others");
            assert_eq!(p.force.y, 0.0);
        }
    }

    #[test]
    fn counting_with_cutoff_counts_neighbors() {
        let domain = Domain::unit();
        let mut ps = init::uniform(40, &domain, 8);
        let r_c = 0.3;
        let law = Cutoff::new(Counting, r_c);
        accumulate_forces(&mut ps, &law, &domain, Boundary::Open);
        // Cross-check against direct distance counting.
        for i in 0..ps.len() {
            let expected = ps
                .iter()
                .enumerate()
                .filter(|&(j, q)| j != i && ps[i].pos.distance_sq(q.pos) <= r_c * r_c)
                .count();
            assert_eq!(ps[i].force.x as usize, expected, "particle {i}");
        }
    }

    #[test]
    fn symmetric_forces_conserve_momentum() {
        let domain = Domain::unit();
        let mut ps = init::uniform(32, &domain, 11);
        accumulate_forces(
            &mut ps,
            &RepulsiveInverseSquare::default(),
            &domain,
            Boundary::Open,
        );
        let net: Vec2 = ps.iter().map(|p| p.force).sum();
        assert!(net.norm() < 1e-12, "net force {net:?}");
    }

    #[test]
    fn two_body_gravity_orbit_conserves_momentum_over_steps() {
        let domain = Domain::square(10.0);
        let mut engine = SerialEngine::new(
            vec![
                Particle::moving(0, Vec2::new(4.0, 5.0), Vec2::new(0.0, 0.25)),
                Particle::moving(1, Vec2::new(6.0, 5.0), Vec2::new(0.0, -0.25)),
            ],
            Gravity {
                g: 1.0,
                softening: 0.0,
            },
            SemiImplicitEuler,
            0.01,
            domain,
            Boundary::Open,
        );
        engine.run(500);
        assert_eq!(engine.steps_run(), 500);
        let total: Vec2 = engine.particles.iter().map(|p| p.momentum()).sum();
        assert!(total.norm() < 1e-12, "momentum drift {total:?}");
    }

    #[test]
    fn reflective_boundary_keeps_particles_inside() {
        let domain = Domain::unit();
        let mut engine = SerialEngine::new(
            init::uniform(25, &domain, 5),
            RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 1e-3,
            },
            SemiImplicitEuler,
            0.05,
            domain,
            Boundary::Reflective,
        );
        engine.run(100);
        for p in &engine.particles {
            assert!(
                p.pos.x >= 0.0 && p.pos.x <= 1.0 && p.pos.y >= 0.0 && p.pos.y <= 1.0,
                "escaped: {:?}",
                p.pos
            );
            assert!(p.pos.is_finite() && p.vel.is_finite());
        }
    }

    #[test]
    fn periodic_cutoff_uses_minimum_image() {
        let domain = Domain::unit();
        // Two particles near opposite edges: distance 0.9 directly, 0.1
        // through the wrap. With r_c = 0.2 they interact only periodically.
        let mut ps = vec![
            Particle::at(0, Vec2::new(0.05, 0.5)),
            Particle::at(1, Vec2::new(0.95, 0.5)),
        ];
        let law = Cutoff::new(Counting, 0.2);
        accumulate_forces(&mut ps, &law, &domain, Boundary::Periodic);
        assert_eq!(ps[0].force.x, 1.0);
        assert_eq!(ps[1].force.x, 1.0);

        let mut ps2 = ps.clone();
        reset_forces(&mut ps2);
        accumulate_forces(&mut ps2, &law, &domain, Boundary::Open);
        assert_eq!(ps2[0].force.x, 0.0, "no interaction without wrap");
    }

    #[test]
    fn forces_accumulate_on_top_of_existing() {
        // accumulate_forces adds; the step driver is responsible for the
        // reset. Verify additive semantics explicitly.
        let domain = Domain::unit();
        let mut ps = init::uniform(5, &domain, 1);
        accumulate_forces(&mut ps, &Counting, &domain, Boundary::Open);
        accumulate_forces(&mut ps, &Counting, &domain, Boundary::Open);
        assert!(ps.iter().all(|p| p.force.x == 8.0));
    }
}

/// Shared-memory parallel force accumulation (within-node data
/// parallelism — the single-node analogue of MPI+OpenMP hybrid codes).
///
/// Parallelizes over *targets*: each particle's accumulation loop runs on
/// one thread with the source order unchanged, so results are **bitwise
/// identical** to [`accumulate_forces`]. Useful for large serial
/// references and single-process production runs; the distributed
/// algorithms keep their rank-level parallelism instead.
pub fn accumulate_forces_parallel<F: ForceLaw>(
    particles: &mut [Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) {
    use rayon::prelude::*;
    let snapshot: Vec<Particle> = particles.to_vec();
    particles.par_iter_mut().for_each(|target| {
        let mut acc = target.force;
        for source in &snapshot {
            if target.id == source.id {
                continue;
            }
            let disp = boundary.displacement(domain, target.pos, source.pos);
            acc += law.force(target, source, disp);
        }
        target.force = acc;
    });
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::force::{Counting, Gravity};
    use crate::init;

    #[test]
    fn parallel_reference_is_bitwise_identical() {
        let domain = Domain::unit();
        for n in [1usize, 7, 64, 257] {
            let mut serial = init::uniform(n, &domain, 9);
            let mut parallel = serial.clone();
            accumulate_forces(&mut serial, &Gravity::default(), &domain, Boundary::Open);
            accumulate_forces_parallel(
                &mut parallel,
                &Gravity::default(),
                &domain,
                Boundary::Open,
            );
            assert_eq!(serial, parallel, "n={n}");
        }
    }

    #[test]
    fn parallel_reference_counting_exact() {
        let domain = Domain::unit();
        let mut ps = init::uniform(100, &domain, 2);
        accumulate_forces_parallel(&mut ps, &Counting, &domain, Boundary::Periodic);
        assert!(ps.iter().all(|p| p.force.x == 99.0));
    }
}
