//! Cell lists (linked-cell method) for O(n) neighbor finding under a cutoff.
//!
//! This is the substrate behind the fast serial cutoff engine and the
//! spatial-reassignment step of the distributed cutoff algorithms. Cells are
//! at least `r_c` wide, so all neighbors of a particle lie in the 3x3 block
//! of cells around it (or the 3-cell window in 1D mode).

use crate::domain::{Boundary, Domain};
use crate::force::ForceLaw;
use crate::particle::Particle;

/// A uniform grid of cells over a domain, indexing particles by position.
#[derive(Debug)]
pub struct CellList {
    domain: Domain,
    nx: usize,
    ny: usize,
    /// `cells[cy * nx + cx]` holds indices into the particle slice.
    cells: Vec<Vec<usize>>,
    periodic: bool,
}

impl CellList {
    /// Build a cell list whose cells are at least `min_cell` wide in each
    /// axis. `periodic` controls whether neighbor stencils wrap.
    pub fn build(
        particles: &[Particle],
        domain: &Domain,
        min_cell: f64,
        periodic: bool,
    ) -> Self {
        assert!(min_cell > 0.0, "cell size must be positive");
        let ext = domain.extent();
        let nx = ((ext.x / min_cell).floor() as usize).max(1);
        let ny = ((ext.y / min_cell).floor() as usize).max(1);
        let mut cells = vec![Vec::new(); nx * ny];
        for (idx, p) in particles.iter().enumerate() {
            let (cx, cy) = Self::cell_of(domain, nx, ny, p.pos.x, p.pos.y);
            cells[cy * nx + cx].push(idx);
        }
        CellList {
            domain: *domain,
            nx,
            ny,
            cells,
            periodic,
        }
    }

    fn cell_of(domain: &Domain, nx: usize, ny: usize, x: f64, y: f64) -> (usize, usize) {
        let ext = domain.extent();
        let fx = ((x - domain.min.x) / ext.x * nx as f64).floor();
        let fy = ((y - domain.min.y) / ext.y * ny as f64).floor();
        let cx = (fx as isize).clamp(0, nx as isize - 1) as usize;
        let cy = (fy as isize).clamp(0, ny as isize - 1) as usize;
        (cx, cy)
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Indices of particles in the 3x3 stencil around the cell containing
    /// `(x, y)` (clipped or wrapped at the boundary), including the center
    /// cell. The same particle is never yielded twice.
    pub fn neighborhood(&self, x: f64, y: f64) -> Vec<usize> {
        let (cx, cy) = Self::cell_of(&self.domain, self.nx, self.ny, x, y);
        let mut out = Vec::new();
        let mut visited = Vec::with_capacity(9);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let (gx, gy) = if self.periodic {
                    (
                        (cx as i64 + dx).rem_euclid(self.nx as i64) as usize,
                        (cy as i64 + dy).rem_euclid(self.ny as i64) as usize,
                    )
                } else {
                    let gx = cx as i64 + dx;
                    let gy = cy as i64 + dy;
                    if gx < 0 || gy < 0 || gx >= self.nx as i64 || gy >= self.ny as i64 {
                        continue;
                    }
                    (gx as usize, gy as usize)
                };
                let key = gy * self.nx + gx;
                if visited.contains(&key) {
                    continue; // wrap-around can alias cells on tiny grids
                }
                visited.push(key);
                out.extend_from_slice(&self.cells[key]);
            }
        }
        out
    }
}

/// Accumulate cutoff forces using a cell list. Produces the same interaction
/// set as the O(n^2) reference when the law's cutoff fits in one cell width;
/// per-particle accumulation order may differ, so floating-point results can
/// differ in the last bits.
pub fn accumulate_forces_cell_list<F: ForceLaw>(
    particles: &mut [Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) {
    let r_c = law
        .cutoff()
        .expect("cell-list accumulation requires a force law with a cutoff");
    let periodic = boundary == Boundary::Periodic;
    let cl = CellList::build(particles, domain, r_c, periodic);
    for i in 0..particles.len() {
        let target = particles[i];
        let mut acc = target.force;
        for j in cl.neighborhood(target.pos.x, target.pos.y) {
            if j == i {
                continue;
            }
            let source = &particles[j];
            let disp = boundary.displacement(domain, target.pos, source.pos);
            acc += law.force(&target, source, disp);
        }
        particles[i].force = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::{Counting, Cutoff};
    use crate::init;
    use crate::particle::reset_forces;
    use crate::reference;

    #[test]
    fn dims_respect_min_cell() {
        let d = Domain::square(1.0);
        let ps = init::uniform(10, &d, 0);
        let cl = CellList::build(&ps, &d, 0.25, false);
        assert_eq!(cl.dims(), (4, 4));
        let cl2 = CellList::build(&ps, &d, 0.3, false);
        assert_eq!(cl2.dims(), (3, 3));
        // min_cell larger than the domain: a single cell.
        let cl3 = CellList::build(&ps, &d, 5.0, false);
        assert_eq!(cl3.dims(), (1, 1));
    }

    #[test]
    fn neighborhood_covers_all_in_single_cell() {
        let d = Domain::square(1.0);
        let ps = init::uniform(20, &d, 0);
        let cl = CellList::build(&ps, &d, 5.0, false);
        let hood = cl.neighborhood(0.5, 0.5);
        assert_eq!(hood.len(), 20);
    }

    #[test]
    fn matches_reference_counts_open() {
        let d = Domain::square(1.0);
        let mut a = init::uniform(120, &d, 42);
        let mut b = a.clone();
        let law = Cutoff::new(Counting, 0.19);

        reference::accumulate_forces(&mut a, &law, &d, Boundary::Open);
        accumulate_forces_cell_list(&mut b, &law, &d, Boundary::Open);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.force, y.force, "particle {}", x.id);
        }
    }

    #[test]
    fn matches_reference_counts_periodic() {
        let d = Domain::square(1.0);
        let mut a = init::uniform(100, &d, 7);
        let mut b = a.clone();
        let law = Cutoff::new(Counting, 0.24);

        reference::accumulate_forces(&mut a, &law, &d, Boundary::Periodic);
        accumulate_forces_cell_list(&mut b, &law, &d, Boundary::Periodic);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.force, y.force, "particle {}", x.id);
        }
    }

    #[test]
    fn periodic_tiny_grid_no_double_count() {
        // 2-cell-wide periodic grid: the wrap stencil aliases; ensure no
        // particle is visited twice.
        let d = Domain::square(1.0);
        let mut a = init::uniform(30, &d, 3);
        let mut b = a.clone();
        let law = Cutoff::new(Counting, 0.45); // 2x2 cells

        reference::accumulate_forces(&mut a, &law, &d, Boundary::Periodic);
        accumulate_forces_cell_list(&mut b, &law, &d, Boundary::Periodic);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.force, y.force, "particle {}", x.id);
        }
    }

    #[test]
    fn repeated_accumulation_is_additive() {
        let d = Domain::square(1.0);
        let mut ps = init::uniform(25, &d, 9);
        let law = Cutoff::new(Counting, 0.2);
        accumulate_forces_cell_list(&mut ps, &law, &d, Boundary::Open);
        let first: Vec<f64> = ps.iter().map(|p| p.force.x).collect();
        accumulate_forces_cell_list(&mut ps, &law, &d, Boundary::Open);
        for (p, f) in ps.iter().zip(&first) {
            assert_eq!(p.force.x, 2.0 * f);
        }
        reset_forces(&mut ps);
        assert!(ps.iter().all(|p| p.force.x == 0.0));
    }
}
