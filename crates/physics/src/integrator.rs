//! Time integrators.
//!
//! Integrators are split around the force evaluation so that distributed
//! force algorithms can be slotted in between: a step driver calls
//! [`Integrator::pre_force`], clears the accumulators, computes forces (by
//! any serial or distributed algorithm), then calls
//! [`Integrator::post_force`]. Velocity Verlet exploits this split by
//! carrying the previous step's forces across the boundary.

use crate::domain::{Boundary, Domain};
use crate::particle::Particle;

/// A time integrator, split around the force evaluation.
pub trait Integrator: Sync {
    /// Phase run *before* forces are recomputed. `particles[i].force` still
    /// holds the previous step's accumulated forces at this point.
    fn pre_force(&self, _particles: &mut [Particle], _dt: f64) {}

    /// Phase run *after* the force accumulators have been filled for this
    /// step. Responsible for applying the boundary condition.
    fn post_force(&self, particles: &mut [Particle], dt: f64, domain: &Domain, boundary: Boundary);
}

fn apply_boundary(p: &mut Particle, domain: &Domain, boundary: Boundary) {
    let (pos, vel) = boundary.apply(domain, p.pos, p.vel);
    p.pos = pos;
    p.vel = vel;
}

/// Explicit (forward) Euler: `x += v dt; v += a dt`. First order; used when
/// matching simple reference codes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExplicitEuler;

impl Integrator for ExplicitEuler {
    fn post_force(&self, particles: &mut [Particle], dt: f64, domain: &Domain, boundary: Boundary) {
        for p in particles {
            let a = p.force / p.mass;
            p.pos += p.vel * dt;
            p.vel += a * dt;
            apply_boundary(p, domain, boundary);
        }
    }
}

/// Semi-implicit (symplectic) Euler: `v += a dt; x += v dt`. First order but
/// symplectic, so energy drift is bounded; the default integrator.
#[derive(Debug, Clone, Copy, Default)]
pub struct SemiImplicitEuler;

impl Integrator for SemiImplicitEuler {
    fn post_force(&self, particles: &mut [Particle], dt: f64, domain: &Domain, boundary: Boundary) {
        for p in particles {
            let a = p.force / p.mass;
            p.vel += a * dt;
            p.pos += p.vel * dt;
            apply_boundary(p, domain, boundary);
        }
    }
}

/// Velocity Verlet (second order, symplectic):
///
/// ```text
/// v += a(t) dt/2        (pre_force; a(t) carried in the force accumulator)
/// x += v dt             (pre_force)
/// ... recompute forces -> a(t+dt) ...
/// v += a(t+dt) dt/2     (post_force)
/// ```
///
/// On the very first step the accumulator holds zero force, which is
/// equivalent to starting from a state where forces have been evaluated once;
/// call your force routine once before the first step for full second-order
/// accuracy from step one.
#[derive(Debug, Clone, Copy, Default)]
pub struct VelocityVerlet;

impl Integrator for VelocityVerlet {
    fn pre_force(&self, particles: &mut [Particle], dt: f64) {
        for p in particles {
            let a = p.force / p.mass;
            p.vel += a * (0.5 * dt);
            p.pos += p.vel * dt;
        }
    }

    fn post_force(&self, particles: &mut [Particle], dt: f64, domain: &Domain, boundary: Boundary) {
        for p in particles {
            let a = p.force / p.mass;
            p.vel += a * (0.5 * dt);
            apply_boundary(p, domain, boundary);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec2::Vec2;

    fn free_particle() -> Vec<Particle> {
        vec![Particle::moving(0, Vec2::new(0.5, 0.5), Vec2::new(0.1, 0.0))]
    }

    #[test]
    fn euler_free_flight() {
        let domain = Domain::unit();
        let mut ps = free_particle();
        ExplicitEuler.post_force(&mut ps, 1.0, &domain, Boundary::Open);
        assert_eq!(ps[0].pos, Vec2::new(0.6, 0.5));
        assert_eq!(ps[0].vel, Vec2::new(0.1, 0.0));
    }

    #[test]
    fn semi_implicit_applies_velocity_first() {
        let domain = Domain::unit();
        let mut ps = free_particle();
        ps[0].force = Vec2::new(0.1, 0.0); // a = 0.1
        SemiImplicitEuler.post_force(&mut ps, 1.0, &domain, Boundary::Open);
        assert!((ps[0].vel.x - 0.2).abs() < 1e-15);
        assert!((ps[0].pos.x - 0.7).abs() < 1e-15, "uses updated velocity");
    }

    #[test]
    fn verlet_harmonic_oscillator_energy_bounded() {
        // x'' = -x; velocity Verlet should keep energy bounded over many
        // periods while explicit Euler visibly gains energy.
        let domain = Domain::square(100.0);
        let dt = 0.05;
        let steps = 4000; // ~30 periods
        let spring = |p: &Particle| -(p.pos - Vec2::new(50.0, 50.0));

        let run = |integrator: &dyn Integrator| -> f64 {
            let mut ps = vec![Particle::moving(
                0,
                Vec2::new(51.0, 50.0),
                Vec2::new(0.0, 0.0),
            )];
            ps[0].force = spring(&ps[0]);
            for _ in 0..steps {
                integrator.pre_force(&mut ps, dt);
                ps[0].force = spring(&ps[0]);
                integrator.post_force(&mut ps, dt, &domain, Boundary::Open);
            }
            let x = ps[0].pos - Vec2::new(50.0, 50.0);
            0.5 * ps[0].vel.norm_sq() + 0.5 * x.norm_sq()
        };

        let e_verlet = run(&VelocityVerlet);
        let e_euler = run(&ExplicitEuler);
        let e0 = 0.5; // initial energy
        assert!(
            (e_verlet - e0).abs() < 0.01,
            "Verlet energy {e_verlet} should stay near {e0}"
        );
        assert!(
            (e_euler - e0).abs() > 0.1,
            "explicit Euler should drift noticeably, got {e_euler}"
        );
    }

    #[test]
    fn verlet_second_order_convergence() {
        // Constant acceleration: exact x(t) = x0 + v0 t + a t^2 / 2.
        // Verlet should reproduce it exactly (it is exact for constant a).
        let domain = Domain::square(100.0);
        let mut ps = vec![Particle::moving(0, Vec2::zero(), Vec2::new(1.0, 0.0))];
        let a = Vec2::new(0.5, 0.0);
        ps[0].force = a;
        let dt = 0.1;
        for _ in 0..10 {
            VelocityVerlet.pre_force(&mut ps, dt);
            ps[0].force = a;
            VelocityVerlet.post_force(&mut ps, dt, &domain, Boundary::Open);
        }
        let t: f64 = 1.0;
        let exact = t + 0.25 * t * t;
        assert!(
            (ps[0].pos.x - exact).abs() < 1e-12,
            "got {}, want {exact}",
            ps[0].pos.x
        );
    }

    #[test]
    fn boundary_applied_after_step() {
        let domain = Domain::unit();
        let mut ps = vec![Particle::moving(0, Vec2::new(0.95, 0.5), Vec2::new(0.1, 0.0))];
        SemiImplicitEuler.post_force(&mut ps, 1.0, &domain, Boundary::Reflective);
        assert!(domain.contains(ps[0].pos));
        assert!(ps[0].vel.x < 0.0, "bounced");
    }
}
