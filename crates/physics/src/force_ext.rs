//! Additional force laws and cutoff treatments beyond the paper's minimum.
//!
//! * [`Yukawa`] — screened Coulomb interaction `k·e^{-r/λ}/r²`-style decay;
//!   its exponential screening is the physical situation where the paper's
//!   "constant or zero effect" beyond `r_c` is a controlled approximation.
//! * [`ShiftedForce`] — the standard MD smoothing of a truncated law:
//!   subtracts the force value at the cutoff so the force goes to zero
//!   continuously at `r_c` (removing the energy drift a bare truncation
//!   injects at every boundary crossing).

use crate::force::ForceLaw;
use crate::particle::Particle;
use crate::vec2::Vec2;

/// Screened (Yukawa/Debye) repulsion:
/// `F = k m_i m_j e^{-r/λ} (1/r² + 1/(λ r))`, directed away from the
/// source — the force derived from the potential `U = k m_i m_j e^{-r/λ}/r`.
#[derive(Debug, Clone, Copy)]
pub struct Yukawa {
    /// Coupling constant `k`.
    pub strength: f64,
    /// Screening length `λ`.
    pub screening_length: f64,
    /// Plummer softening.
    pub softening: f64,
}

impl Default for Yukawa {
    fn default() -> Self {
        Yukawa {
            strength: 1e-3,
            screening_length: 0.1,
            softening: 1e-6,
        }
    }
}

impl ForceLaw for Yukawa {
    #[inline]
    fn force(&self, target: &Particle, source: &Particle, disp: Vec2) -> Vec2 {
        let r2 = disp.norm_sq() + self.softening * self.softening;
        if r2 == 0.0 {
            return Vec2::zero();
        }
        let r = r2.sqrt();
        let screen = (-r / self.screening_length).exp();
        let mag = self.strength * target.mass * source.mass
            * screen
            * (1.0 / r2 + 1.0 / (self.screening_length * r));
        -disp.normalized() * mag
    }

    #[inline]
    fn potential(&self, target: &Particle, source: &Particle, disp: Vec2) -> f64 {
        let r = (disp.norm_sq() + self.softening * self.softening).sqrt();
        if r == 0.0 {
            return 0.0;
        }
        self.strength * target.mass * source.mass * (-r / self.screening_length).exp() / r
    }

    // The inverse-square mix plus a sqrt and an exp (costed at ~20 FLOPs
    // for its polynomial expansion).
    fn flops_per_interaction(&self) -> u64 {
        45
    }
}

/// Force-shifted truncation: `F'(r) = F(r) − F(r_c)·r̂` for `r ≤ r_c`, zero
/// beyond. The force is continuous at the cutoff, which keeps symplectic
/// integrators well-behaved when pairs cross `r_c`.
#[derive(Debug, Clone, Copy)]
pub struct ShiftedForce<F> {
    /// The truncated law.
    pub inner: F,
    /// Cutoff radius.
    pub r_c: f64,
}

impl<F: ForceLaw> ShiftedForce<F> {
    /// Wrap `inner` with a force-shifted cutoff at `r_c`.
    pub fn new(inner: F, r_c: f64) -> Self {
        assert!(r_c > 0.0, "cutoff radius must be positive");
        ShiftedForce { inner, r_c }
    }

    /// Magnitude of the inner force between unit masses at the cutoff,
    /// along the pair axis (the shift constant).
    fn shift_magnitude(&self, target: &Particle, source: &Particle) -> f64 {
        // Probe the inner law at distance r_c along x; by isotropy of the
        // supported laws the magnitude is direction-independent.
        let disp = Vec2::new(self.r_c, 0.0);
        self.inner.force(target, source, disp).norm()
    }
}

impl<F: ForceLaw> ForceLaw for ShiftedForce<F> {
    #[inline]
    fn force(&self, target: &Particle, source: &Particle, disp: Vec2) -> Vec2 {
        let r2 = disp.norm_sq();
        if r2 > self.r_c * self.r_c || r2 == 0.0 {
            return Vec2::zero();
        }
        let f = self.inner.force(target, source, disp);
        // Subtract the cutoff-value force along the same direction.
        let shift = self.shift_magnitude(target, source);
        let dir = f.normalized();
        let mag = f.norm() - shift;
        dir * mag
    }

    #[inline]
    fn potential(&self, target: &Particle, source: &Particle, disp: Vec2) -> f64 {
        let r2 = disp.norm_sq();
        if r2 > self.r_c * self.r_c {
            return 0.0;
        }
        // U'(r) = U(r) - U(rc) + (r - rc) F(rc): both value- and
        // slope-matched at the cutoff.
        let r = r2.sqrt();
        let at = |d: f64| {
            let probe = Vec2::new(d, 0.0);
            self.inner.potential(target, source, probe)
        };
        let f_rc = self.shift_magnitude(target, source);
        at(r) - at(self.r_c) + (r - self.r_c) * f_rc
    }

    fn cutoff(&self) -> Option<f64> {
        Some(self.r_c)
    }

    fn is_symmetric(&self) -> bool {
        self.inner.is_symmetric()
    }

    // Probes the inner law twice (live value + shift constant) plus the
    // range test, renormalization, and the shift subtraction.
    fn flops_per_interaction(&self) -> u64 {
        2 * self.inner.flops_per_interaction() + 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::RepulsiveInverseSquare;

    fn pair(r: f64) -> (Particle, Particle, Vec2) {
        let a = Particle::at(0, Vec2::zero());
        let b = Particle::at(1, Vec2::new(r, 0.0));
        let disp = b.pos - a.pos;
        (a, b, disp)
    }

    #[test]
    fn yukawa_decays_faster_than_unscreened() {
        let law = Yukawa {
            strength: 1.0,
            screening_length: 0.1,
            softening: 0.0,
        };
        let bare = RepulsiveInverseSquare {
            strength: 1.0,
            softening: 0.0,
        };
        let (a, b, d1) = pair(0.1);
        let (_, b2, d2) = pair(0.5);
        let ratio_yukawa = law.force(&a, &b2, d2).norm() / law.force(&a, &b, d1).norm();
        let ratio_bare = bare.force(&a, &b2, d2).norm() / bare.force(&a, &b, d1).norm();
        assert!(ratio_yukawa < ratio_bare / 10.0, "{ratio_yukawa} vs {ratio_bare}");
    }

    #[test]
    fn yukawa_is_repulsive_and_symmetric() {
        let law = Yukawa::default();
        let (a, b, d) = pair(0.2);
        let f = law.force(&a, &b, d);
        assert!(f.x < 0.0, "pushes target away from source");
        let f_ba = law.force(&b, &a, -d);
        assert!((f + f_ba).norm() < 1e-15);
        assert!(law.potential(&a, &b, d) > 0.0);
    }

    #[test]
    fn yukawa_matches_coulomb_at_zero_screening_limit() {
        // With lambda >> r, the screen factor ~ 1 and the 1/(lambda r)
        // term vanishes: Yukawa -> inverse square.
        let law = Yukawa {
            strength: 1.0,
            screening_length: 1e6,
            softening: 0.0,
        };
        let bare = RepulsiveInverseSquare {
            strength: 1.0,
            softening: 0.0,
        };
        let (a, b, d) = pair(0.3);
        let fy = law.force(&a, &b, d).norm();
        let fb = bare.force(&a, &b, d).norm();
        assert!((fy - fb).abs() / fb < 1e-5, "{fy} vs {fb}");
    }

    #[test]
    fn shifted_force_is_zero_at_cutoff() {
        let law = ShiftedForce::new(
            RepulsiveInverseSquare {
                strength: 1.0,
                softening: 0.0,
            },
            0.5,
        );
        let (a, b, d) = pair(0.5 - 1e-12);
        assert!(law.force(&a, &b, d).norm() < 1e-9, "continuous at r_c");
        let (_, b2, d2) = pair(0.500001);
        assert_eq!(law.force(&a, &b2, d2), Vec2::zero());
        assert_eq!(law.cutoff(), Some(0.5));
    }

    #[test]
    fn shifted_force_approaches_inner_at_short_range() {
        let inner = RepulsiveInverseSquare {
            strength: 1.0,
            softening: 0.0,
        };
        let law = ShiftedForce::new(inner, 0.5);
        let (a, b, d) = pair(0.05);
        let f_shift = law.force(&a, &b, d).norm();
        let f_inner = inner.force(&a, &b, d).norm();
        // At r << r_c the constant shift (4.0) is small next to 1/r² (400).
        assert!((f_shift - f_inner).abs() / f_inner < 0.02);
    }

    #[test]
    fn shifted_potential_is_continuous_at_cutoff() {
        let law = ShiftedForce::new(
            RepulsiveInverseSquare {
                strength: 1.0,
                softening: 0.0,
            },
            0.4,
        );
        let (a, b, d) = pair(0.4 - 1e-9);
        assert!(law.potential(&a, &b, d).abs() < 1e-6);
        let (_, b2, d2) = pair(0.41);
        assert_eq!(law.potential(&a, &b2, d2), 0.0);
    }
}
