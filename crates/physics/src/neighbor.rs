//! Verlet neighbor lists.
//!
//! The standard MD acceleration for cutoff interactions: build the pair
//! list once with an enlarged radius `r_c + skin` (via the cell list), and
//! reuse it across timesteps until some particle has moved farther than
//! `skin / 2` — at which point pairs could have crossed the true cutoff
//! undetected and the list must be rebuilt. Complements the cell list as
//! the serial engine's fast path for the paper's cutoff workloads.

use crate::cell_list::CellList;
use crate::domain::{Boundary, Domain};
use crate::force::ForceLaw;
use crate::particle::Particle;
use crate::vec2::Vec2;

/// A reusable pair list with a skin margin.
#[derive(Debug)]
pub struct NeighborList {
    /// Candidate pairs `(i, j)` with `i < j`, within `r_c + skin` at build
    /// time (indices into the particle slice the list was built from).
    pairs: Vec<(u32, u32)>,
    /// Positions at build time, for displacement tracking.
    reference_pos: Vec<Vec2>,
    /// True interaction cutoff.
    r_c: f64,
    /// Skin margin.
    skin: f64,
    periodic: bool,
}

impl NeighborList {
    /// Build a list for `particles` with cutoff `r_c` and margin `skin`.
    pub fn build(
        particles: &[Particle],
        domain: &Domain,
        boundary: Boundary,
        r_c: f64,
        skin: f64,
    ) -> Self {
        assert!(r_c > 0.0 && skin >= 0.0);
        let periodic = boundary == Boundary::Periodic;
        let reach = r_c + skin;
        let cl = CellList::build(particles, domain, reach, periodic);
        let reach2 = reach * reach;
        let mut pairs = Vec::new();
        for (i, p) in particles.iter().enumerate() {
            for j in cl.neighborhood(p.pos.x, p.pos.y) {
                if j <= i {
                    continue;
                }
                let disp = boundary.displacement(domain, p.pos, particles[j].pos);
                if disp.norm_sq() <= reach2 {
                    pairs.push((i as u32, j as u32));
                }
            }
        }
        NeighborList {
            pairs,
            reference_pos: particles.iter().map(|p| p.pos).collect(),
            r_c,
            skin,
            periodic,
        }
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the list holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether the list is still guaranteed valid: no particle has moved
    /// more than `skin / 2` since the build (the classic conservative
    /// criterion — two particles approaching each other can close at most
    /// `skin` together).
    pub fn is_valid(&self, particles: &[Particle], domain: &Domain, boundary: Boundary) -> bool {
        if particles.len() != self.reference_pos.len() {
            return false;
        }
        let limit2 = (self.skin / 2.0) * (self.skin / 2.0);
        particles.iter().zip(&self.reference_pos).all(|(p, &r)| {
            boundary.displacement(domain, r, p.pos).norm_sq() <= limit2
        })
    }

    /// Accumulate forces over the candidate pairs (both directions, no
    /// symmetry exploited — matching the paper's policy). The law's own
    /// cutoff filters pairs that drifted outside `r_c` but are still on
    /// the list. Panics if the list was built for a different boundary.
    pub fn accumulate_forces<F: ForceLaw>(
        &self,
        particles: &mut [Particle],
        law: &F,
        domain: &Domain,
        boundary: Boundary,
    ) {
        assert_eq!(
            boundary == Boundary::Periodic,
            self.periodic,
            "list built under a different boundary condition"
        );
        debug_assert!(
            law.cutoff().is_some_and(|rc| rc <= self.r_c + 1e-12),
            "force law cutoff exceeds the list's build cutoff"
        );
        for &(i, j) in &self.pairs {
            let (i, j) = (i as usize, j as usize);
            let (a, b) = (particles[i], particles[j]);
            let disp = boundary.displacement(domain, a.pos, b.pos);
            let f_on_a = law.force(&a, &b, disp);
            let f_on_b = law.force(&b, &a, -disp);
            particles[i].force += f_on_a;
            particles[j].force += f_on_b;
        }
    }
}

/// A self-managing wrapper: rebuilds the list when the validity criterion
/// fails, otherwise reuses it. Returns rebuild statistics for tuning.
#[derive(Debug)]
pub struct AutoNeighborList {
    list: NeighborList,
    /// Times the list was rebuilt (including the initial build).
    pub rebuilds: usize,
    /// Force evaluations served since construction.
    pub reuses: usize,
}

impl AutoNeighborList {
    /// Build the initial list.
    pub fn new(
        particles: &[Particle],
        domain: &Domain,
        boundary: Boundary,
        r_c: f64,
        skin: f64,
    ) -> Self {
        AutoNeighborList {
            list: NeighborList::build(particles, domain, boundary, r_c, skin),
            rebuilds: 1,
            reuses: 0,
        }
    }

    /// Accumulate forces, rebuilding first if required.
    pub fn accumulate_forces<F: ForceLaw>(
        &mut self,
        particles: &mut [Particle],
        law: &F,
        domain: &Domain,
        boundary: Boundary,
    ) {
        if !self.list.is_valid(particles, domain, boundary) {
            let (r_c, skin) = (self.list.r_c, self.list.skin);
            self.list = NeighborList::build(particles, domain, boundary, r_c, skin);
            self.rebuilds += 1;
        } else {
            self.reuses += 1;
        }
        self.list.accumulate_forces(particles, law, domain, boundary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::{Counting, Cutoff, RepulsiveInverseSquare};
    use crate::init;
    use crate::particle::reset_forces;
    use crate::reference;

    #[test]
    fn fresh_list_matches_reference_exactly() {
        let domain = Domain::unit();
        let r_c = 0.2;
        let law = Cutoff::new(Counting, r_c);
        for (boundary, seed) in [(Boundary::Open, 3u64), (Boundary::Periodic, 4)] {
            let mut a = init::uniform(80, &domain, seed);
            let mut b = a.clone();
            reference::accumulate_forces(&mut a, &law, &domain, boundary);
            let list = NeighborList::build(&b, &domain, boundary, r_c, 0.05);
            list.accumulate_forces(&mut b, &law, &domain, boundary);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.force, y.force, "{boundary:?} id={}", x.id);
            }
        }
    }

    #[test]
    fn validity_tracks_displacement() {
        let domain = Domain::unit();
        let mut ps = init::uniform(30, &domain, 7);
        let list = NeighborList::build(&ps, &domain, Boundary::Open, 0.2, 0.1);
        assert!(list.is_valid(&ps, &domain, Boundary::Open));
        // Move one particle by less than skin/2: still valid.
        ps[3].pos.x = (ps[3].pos.x + 0.04).min(0.999);
        assert!(list.is_valid(&ps, &domain, Boundary::Open));
        // Beyond skin/2: invalid.
        ps[3].pos.y = (ps[3].pos.y + 0.06).min(0.999);
        assert!(!list.is_valid(&ps, &domain, Boundary::Open));
    }

    #[test]
    fn stale_but_valid_list_is_still_exact() {
        // Particles drift within skin/2; the enlarged list plus the law's
        // own cutoff must reproduce the reference on the *moved* positions.
        let domain = Domain::unit();
        let r_c = 0.2;
        let skin = 0.08;
        let law = Cutoff::new(Counting, r_c);
        let mut ps = init::uniform(60, &domain, 11);
        let list = NeighborList::build(&ps, &domain, Boundary::Open, r_c, skin);
        // Drift everyone by up to skin/2 (deterministically).
        for (k, p) in ps.iter_mut().enumerate() {
            let d = 0.9 * skin / 2.0;
            p.pos.x = (p.pos.x + if k % 2 == 0 { d } else { -d }).clamp(0.0, 0.999);
        }
        assert!(list.is_valid(&ps, &domain, Boundary::Open));
        let mut want = ps.clone();
        reference::accumulate_forces(&mut want, &law, &domain, Boundary::Open);
        list.accumulate_forces(&mut ps, &law, &domain, Boundary::Open);
        for (x, y) in want.iter().zip(&ps) {
            assert_eq!(x.force, y.force, "id={}", x.id);
        }
    }

    #[test]
    fn auto_list_rebuilds_only_when_needed() {
        let domain = Domain::unit();
        let r_c = 0.15;
        let law = Cutoff::new(
            RepulsiveInverseSquare {
                strength: 1e-6,
                softening: 1e-3,
            },
            r_c,
        );
        let mut ps = init::uniform(50, &domain, 5);
        let mut auto = AutoNeighborList::new(&ps, &domain, Boundary::Open, r_c, 0.1);
        // Static particles: many reuses, one build.
        for _ in 0..5 {
            reset_forces(&mut ps);
            auto.accumulate_forces(&mut ps, &law, &domain, Boundary::Open);
        }
        assert_eq!(auto.rebuilds, 1);
        assert_eq!(auto.reuses, 5);
        // Teleport a particle: next call must rebuild.
        ps[0].pos = crate::vec2::Vec2::new(0.9, 0.9);
        reset_forces(&mut ps);
        auto.accumulate_forces(&mut ps, &law, &domain, Boundary::Open);
        assert_eq!(auto.rebuilds, 2);
    }

    #[test]
    fn empty_and_single_particle_lists() {
        let domain = Domain::unit();
        let empty: Vec<Particle> = Vec::new();
        let list = NeighborList::build(&empty, &domain, Boundary::Open, 0.1, 0.0);
        assert!(list.is_empty());
        let one = init::uniform(1, &domain, 0);
        let list = NeighborList::build(&one, &domain, Boundary::Open, 0.1, 0.0);
        assert_eq!(list.len(), 0);
    }
}
