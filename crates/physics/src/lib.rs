//! # nbody-physics
//!
//! Physics substrate for the reproduction of *“A Communication-Optimal
//! N-Body Algorithm for Direct Interactions”* (Driscoll, Georganas,
//! Koanantakool, Solomonik, Yelick — IPDPS 2013).
//!
//! This crate contains everything the distributed algorithms treat as a
//! black box: particle representation (the paper's particles are 52 bytes on
//! the wire — see [`particle::PARTICLE_WIRE_BYTES`]), pairwise force laws
//! including the paper's inverse-square repulsion and finite-cutoff wrappers,
//! time integrators, boundary conditions (the paper uses reflective walls),
//! deterministic initial-condition generators, cell lists, and — crucially —
//! the serial O(n²) reference engines that every distributed algorithm is
//! validated against.

#![warn(missing_docs)]

pub mod cell_list;
pub mod diagnostics;
pub mod domain;
pub mod force;
pub mod force_ext;
pub mod init;
pub mod integrator;
pub mod neighbor;
pub mod particle;
pub mod reference;
pub mod vec2;

pub use domain::{Boundary, Domain};
pub use force::{Counting, Cutoff, ForceLaw, Gravity, LennardJones, RepulsiveInverseSquare};
pub use force_ext::{ShiftedForce, Yukawa};
pub use integrator::{ExplicitEuler, Integrator, SemiImplicitEuler, VelocityVerlet};
pub use particle::{Particle, PARTICLE_WIRE_BYTES};
pub use vec2::Vec2;
