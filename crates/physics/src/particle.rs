//! The particle representation.
//!
//! The paper's experiments use a 52-byte particle record (§III.C: "The
//! particles are 52 bytes in size"). Our in-memory representation keeps
//! `f64` components for numerical quality, so it is larger than 52 bytes;
//! all *communication-cost accounting* (the netsim machine model and the
//! analytic cost model) instead uses [`PARTICLE_WIRE_BYTES`] so bandwidth
//! terms match the paper's exactly.

use crate::vec2::Vec2;

/// Bytes per particle on the wire, matching the paper's 52-byte particles.
/// Used by the cost model and the discrete-event network simulator.
pub const PARTICLE_WIRE_BYTES: usize = 52;

/// A simulated particle.
///
/// `force` is the force *accumulator* for the current timestep: distributed
/// algorithms add partial contributions into it (possibly on several
/// processors, later combined by a sum-reduction) and the integrator consumes
/// and resets it.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct Particle {
    /// Position in simulation space.
    pub pos: Vec2,
    /// Velocity.
    pub vel: Vec2,
    /// Force accumulator for the current timestep.
    pub force: Vec2,
    /// Particle mass (must be positive).
    pub mass: f64,
    /// Stable global identifier; used to skip self-interactions and to
    /// compare distributed results against the serial reference.
    pub id: u64,
}

impl Particle {
    /// A unit-mass particle at rest at `pos`.
    pub fn at(id: u64, pos: Vec2) -> Self {
        Particle {
            pos,
            vel: Vec2::zero(),
            force: Vec2::zero(),
            mass: 1.0,
            id,
        }
    }

    /// A particle with explicit position and velocity, unit mass.
    pub fn moving(id: u64, pos: Vec2, vel: Vec2) -> Self {
        Particle {
            pos,
            vel,
            force: Vec2::zero(),
            mass: 1.0,
            id,
        }
    }

    /// Builder-style mass override.
    pub fn with_mass(mut self, mass: f64) -> Self {
        assert!(mass > 0.0, "particle mass must be positive, got {mass}");
        self.mass = mass;
        self
    }

    /// Clear the force accumulator (start of a timestep).
    #[inline]
    pub fn reset_force(&mut self) {
        self.force = Vec2::zero();
    }

    /// Kinetic energy `m |v|^2 / 2`.
    #[inline]
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self.mass * self.vel.norm_sq()
    }

    /// Momentum `m v`.
    #[inline]
    pub fn momentum(&self) -> Vec2 {
        self.vel * self.mass
    }
}

/// Clear every force accumulator in a slice.
pub fn reset_forces(particles: &mut [Particle]) {
    for p in particles {
        p.reset_force();
    }
}

/// Total wire bytes for a message of `n` particles, using the paper's
/// 52-byte particle size.
#[inline]
pub const fn wire_bytes(n: usize) -> usize {
    n * PARTICLE_WIRE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_matches_paper() {
        assert_eq!(PARTICLE_WIRE_BYTES, 52);
        assert_eq!(wire_bytes(196_608), 196_608 * 52);
    }

    #[test]
    fn constructors() {
        let p = Particle::at(3, Vec2::new(1.0, 2.0));
        assert_eq!(p.id, 3);
        assert_eq!(p.mass, 1.0);
        assert_eq!(p.vel, Vec2::zero());
        assert_eq!(p.force, Vec2::zero());

        let q = Particle::moving(4, Vec2::zero(), Vec2::new(1.0, -1.0)).with_mass(2.5);
        assert_eq!(q.mass, 2.5);
        assert_eq!(q.vel, Vec2::new(1.0, -1.0));
    }

    #[test]
    #[should_panic(expected = "mass must be positive")]
    fn zero_mass_rejected() {
        let _ = Particle::at(0, Vec2::zero()).with_mass(0.0);
    }

    #[test]
    fn energy_and_momentum() {
        let p = Particle::moving(0, Vec2::zero(), Vec2::new(3.0, 4.0)).with_mass(2.0);
        assert_eq!(p.kinetic_energy(), 25.0);
        assert_eq!(p.momentum(), Vec2::new(6.0, 8.0));
    }

    #[test]
    fn reset_forces_clears_all() {
        let mut ps = vec![Particle::at(0, Vec2::zero()); 4];
        for p in &mut ps {
            p.force = Vec2::new(1.0, 1.0);
        }
        reset_forces(&mut ps);
        assert!(ps.iter().all(|p| p.force == Vec2::zero()));
    }
}
