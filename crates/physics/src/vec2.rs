//! Fixed-size 2D vector used for positions, velocities, and forces.
//!
//! The paper's experiments simulate particles "moving in a two-dimensional
//! space" (§III.C), so 2D is the native geometry of this reproduction. The
//! 1D-cutoff experiments embed a 1D simulation by ignoring the `y` component
//! (see [`Vec2::from_x`]).

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2D vector of `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec2 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
}

/// The zero vector.
pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

impl Vec2 {
    /// Create a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// A vector along the x axis only; used to embed 1D simulations.
    #[inline]
    pub const fn from_x(x: f64) -> Self {
        Vec2 { x, y: 0.0 }
    }

    /// The zero vector.
    #[inline]
    pub const fn zero() -> Self {
        ZERO
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Squared Euclidean norm. Prefer this over `norm()` in cutoff tests to
    /// avoid the square root on the hot path.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in the direction of `self`; returns zero for the zero
    /// vector (a deliberate choice so coincident particles exert no force
    /// rather than NaN-poisoning the simulation).
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n == 0.0 {
            ZERO
        } else {
            self / n
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (self - other).norm_sq()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, v: Vec2) -> Vec2 {
        v * self
    }
}

impl MulAssign<f64> for Vec2 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        self.x *= s;
        self.y *= s;
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl DivAssign<f64> for Vec2 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        self.x /= s;
        self.y /= s;
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Sum for Vec2 {
    fn sum<I: Iterator<Item = Vec2>>(iter: I) -> Vec2 {
        iter.fold(ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -4.0);
        assert_eq!(a + b, Vec2::new(4.0, -2.0));
        assert_eq!(a - b, Vec2::new(-2.0, 6.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -2.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn compound_assignment() {
        let mut v = Vec2::new(1.0, 1.0);
        v += Vec2::new(2.0, 3.0);
        assert_eq!(v, Vec2::new(3.0, 4.0));
        v -= Vec2::new(1.0, 1.0);
        assert_eq!(v, Vec2::new(2.0, 3.0));
        v *= 2.0;
        assert_eq!(v, Vec2::new(4.0, 6.0));
        v /= 4.0;
        assert_eq!(v, Vec2::new(1.0, 1.5));
    }

    #[test]
    fn norms_and_dot() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dot(Vec2::new(1.0, 1.0)), 7.0);
        assert_eq!(v.normalized(), Vec2::new(0.6, 0.8));
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vec2::zero().normalized(), Vec2::zero());
    }

    #[test]
    fn distance() {
        let a = Vec2::new(1.0, 1.0);
        let b = Vec2::new(4.0, 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn min_max_components() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(2.0, 3.0);
        assert_eq!(a.min(b), Vec2::new(1.0, 3.0));
        assert_eq!(a.max(b), Vec2::new(2.0, 5.0));
    }

    #[test]
    fn sum_iterator() {
        let total: Vec2 = (0..4).map(|i| Vec2::new(i as f64, 1.0)).sum();
        assert_eq!(total, Vec2::new(6.0, 4.0));
    }

    #[test]
    fn from_x_is_one_dimensional() {
        let v = Vec2::from_x(7.5);
        assert_eq!(v.y, 0.0);
        assert_eq!(v.x, 7.5);
    }

    #[test]
    fn finite_detection() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }
}
