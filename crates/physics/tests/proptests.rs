//! Property-based tests of the physics substrate.

use nbody_physics::{
    cell_list, diagnostics, init, reference, Boundary, Counting, Cutoff, Domain, Gravity,
    LennardJones, Particle, RepulsiveInverseSquare, Vec2,
};
use proptest::prelude::*;

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    range.prop_filter("finite", |x| x.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reflective_boundary_always_returns_inside(
        x in finite_f64(-50.0..50.0),
        y in finite_f64(-50.0..50.0),
        vx in finite_f64(-10.0..10.0),
        vy in finite_f64(-10.0..10.0),
    ) {
        let d = Domain::unit();
        let (pos, vel) = Boundary::Reflective.apply(&d, Vec2::new(x, y), Vec2::new(vx, vy));
        prop_assert!((0.0..=1.0).contains(&pos.x), "{pos:?}");
        prop_assert!((0.0..=1.0).contains(&pos.y), "{pos:?}");
        // Reflection preserves speed.
        let v_in = Vec2::new(vx, vy).norm();
        prop_assert!((vel.norm() - v_in).abs() < 1e-9 * v_in.max(1.0));
    }

    #[test]
    fn periodic_boundary_wraps_into_domain(
        x in finite_f64(-50.0..50.0),
        y in finite_f64(-50.0..50.0),
    ) {
        let d = Domain::unit();
        let (pos, _) = Boundary::Periodic.apply(&d, Vec2::new(x, y), Vec2::zero());
        prop_assert!((0.0..1.0).contains(&pos.x), "{pos:?}");
        prop_assert!((0.0..1.0).contains(&pos.y), "{pos:?}");
        // Wrapping preserves position modulo the box.
        prop_assert!(((pos.x - x).abs() % 1.0) < 1e-9 || ((pos.x - x).abs() % 1.0) > 1.0 - 1e-9);
    }

    #[test]
    fn minimum_image_displacement_is_shortest(
        ax in 0.0..1.0f64, ay in 0.0..1.0f64,
        bx in 0.0..1.0f64, by in 0.0..1.0f64,
    ) {
        let d = Domain::unit();
        let a = Vec2::new(ax, ay);
        let b = Vec2::new(bx, by);
        let disp = Boundary::Periodic.displacement(&d, a, b);
        // No image can be closer than the minimum image.
        for ix in -1i32..=1 {
            for iy in -1i32..=1 {
                let image = b + Vec2::new(ix as f64, iy as f64);
                prop_assert!(disp.norm_sq() <= (image - a).norm_sq() + 1e-12);
            }
        }
        // Components at most half the box.
        prop_assert!(disp.x.abs() <= 0.5 + 1e-12 && disp.y.abs() <= 0.5 + 1e-12);
    }

    #[test]
    fn cell_list_always_matches_reference(
        n in 1usize..80,
        rc_percent in 5u32..50,
        seed in 0u64..500,
        periodic in any::<bool>(),
    ) {
        let d = Domain::unit();
        let r_c = rc_percent as f64 / 100.0;
        let law = Cutoff::new(Counting, r_c);
        let boundary = if periodic { Boundary::Periodic } else { Boundary::Open };
        let mut a = init::uniform(n, &d, seed);
        let mut b = a.clone();
        reference::accumulate_forces(&mut a, &law, &d, boundary);
        cell_list::accumulate_forces_cell_list(&mut b, &law, &d, boundary);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.force, y.force, "id={}", x.id);
        }
    }

    #[test]
    fn symmetric_laws_yield_zero_net_force(
        n in 2usize..40,
        seed in 0u64..500,
        which in 0u8..3,
    ) {
        let d = Domain::unit();
        let mut ps = init::uniform(n, &d, seed);
        match which {
            0 => reference::accumulate_forces(
                &mut ps, &RepulsiveInverseSquare::default(), &d, Boundary::Open),
            1 => reference::accumulate_forces(
                &mut ps, &Gravity::default(), &d, Boundary::Open),
            _ => reference::accumulate_forces(
                &mut ps,
                &Cutoff::new(LennardJones { epsilon: 1e-6, sigma: 0.05 }, 0.2),
                &d,
                Boundary::Open,
            ),
        }
        let net: Vec2 = ps.iter().map(|p| p.force).sum();
        let scale: f64 = ps.iter().map(|p| p.force.norm()).fold(0.0, f64::max);
        prop_assert!(net.norm() <= 1e-10 * scale.max(1e-10), "net {net:?} scale {scale}");
    }

    #[test]
    fn thermalize_always_zeroes_momentum(
        n in 1usize..64,
        temp in 0.0..10.0f64,
        seed in 0u64..500,
    ) {
        let d = Domain::unit();
        let mut ps = init::uniform(n, &d, seed);
        // Mixed masses.
        for (i, p) in ps.iter_mut().enumerate() {
            *p = p.with_mass(1.0 + (i % 7) as f64 * 0.5);
        }
        init::thermalize(&mut ps, temp, seed.wrapping_add(1));
        prop_assert!(diagnostics::total_momentum(&ps).norm() < 1e-9);
    }

    #[test]
    fn initializers_stay_in_domain(
        n in 1usize..100,
        seed in 0u64..500,
        side in 0.5..20.0f64,
    ) {
        let d = Domain::square(side);
        for ps in [
            init::uniform(n, &d, seed),
            init::uniform_1d(n, &d, seed),
            init::lattice(n, &d),
            init::gaussian_clusters(n, &d, 1 + (seed % 4) as usize, side / 10.0, seed),
        ] {
            prop_assert_eq!(ps.len(), n);
            for p in &ps {
                prop_assert!(p.pos.x >= d.min.x && p.pos.x <= d.max.x);
                prop_assert!(p.pos.y >= d.min.y && p.pos.y <= d.max.y);
            }
            // Unique consecutive ids.
            for (i, p) in ps.iter().enumerate() {
                prop_assert_eq!(p.id, i as u64);
            }
        }
    }

    #[test]
    fn force_accumulation_is_order_independent_for_counting(
        n in 2usize..30,
        seed in 0u64..200,
    ) {
        // Shuffling particle order must not change per-id counts.
        let d = Domain::unit();
        let mut a = init::uniform(n, &d, seed);
        let mut b: Vec<Particle> = a.iter().rev().copied().collect();
        reference::accumulate_forces(&mut a, &Counting, &d, Boundary::Open);
        reference::accumulate_forces(&mut b, &Counting, &d, Boundary::Open);
        b.sort_by_key(|p| p.id);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.force, y.force);
        }
    }
}
