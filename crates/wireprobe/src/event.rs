//! Probe event vocabulary: one record per message-level transport action.

use nbody_trace::{Json, Phase};

/// What a probe event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// A payload was handed to the transport (enqueue side).
    Send,
    /// A payload was taken off the transport (dequeue side).
    Recv,
    /// An injected fault silently discarded a send.
    FaultDrop,
    /// An injected fault delayed a send before forwarding it.
    FaultDelay,
    /// An injected fault forwarded a send twice.
    FaultDup,
    /// An injected kill suppressed traffic from a dead rank.
    FaultKill,
}

/// Every probe kind, for iteration and label round-trips.
pub const ALL_PROBE_KINDS: [ProbeKind; 6] = [
    ProbeKind::Send,
    ProbeKind::Recv,
    ProbeKind::FaultDrop,
    ProbeKind::FaultDelay,
    ProbeKind::FaultDup,
    ProbeKind::FaultKill,
];

impl ProbeKind {
    /// Stable label used in serialized logs.
    pub fn label(self) -> &'static str {
        match self {
            ProbeKind::Send => "send",
            ProbeKind::Recv => "recv",
            ProbeKind::FaultDrop => "fault_drop",
            ProbeKind::FaultDelay => "fault_delay",
            ProbeKind::FaultDup => "fault_dup",
            ProbeKind::FaultKill => "fault_kill",
        }
    }

    /// Inverse of [`label`](ProbeKind::label).
    pub fn from_label(label: &str) -> Option<ProbeKind> {
        ALL_PROBE_KINDS.into_iter().find(|k| k.label() == label)
    }

    /// Whether this kind records an injected fault rather than real traffic.
    pub fn is_fault(self) -> bool {
        !matches!(self, ProbeKind::Send | ProbeKind::Recv)
    }
}

/// One message-level probe record.
///
/// `count` is the payload length in *elements* (particles for the CA
/// pipeline phases), `bytes` the in-memory payload size the transport
/// actually moved. Conformance checking matches on counts because the
/// schedule's byte predictions use the paper's wire format, not Rust's
/// in-memory layout. `t_secs` is relative to the run's shared probe epoch,
/// so send/recv stamps from different rank threads are directly comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct MsgEvent {
    /// What happened.
    pub kind: ProbeKind,
    /// Global rank of the sender.
    pub src: u32,
    /// Global rank of the receiver.
    pub dst: u32,
    /// Communicator the message travelled on (0 = world).
    pub comm: u64,
    /// Message tag.
    pub tag: u64,
    /// Pipeline phase active when the event fired.
    pub phase: Phase,
    /// Payload length in elements.
    pub count: u64,
    /// Payload size in bytes as moved by the transport.
    pub bytes: u64,
    /// Seconds since the shared probe epoch.
    pub t_secs: f64,
    /// Pipeline step, when known (fault events carry it).
    pub step: Option<u64>,
}

impl MsgEvent {
    pub(crate) fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.label().into())),
            ("src".into(), Json::Num(self.src as f64)),
            ("dst".into(), Json::Num(self.dst as f64)),
            ("comm".into(), Json::Num(self.comm as f64)),
            ("tag".into(), Json::Num(self.tag as f64)),
            ("phase".into(), Json::Str(self.phase.label().into())),
            ("count".into(), Json::Num(self.count as f64)),
            ("bytes".into(), Json::Num(self.bytes as f64)),
            ("t".into(), Json::Num(self.t_secs)),
            (
                "step".into(),
                match self.step {
                    Some(s) => Json::Num(s as f64),
                    None => Json::Null,
                },
            ),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<MsgEvent, String> {
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("probe event missing numeric '{key}'"))
        };
        let kind_label = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("probe event missing 'kind'")?;
        let phase_label = v
            .get("phase")
            .and_then(Json::as_str)
            .ok_or("probe event missing 'phase'")?;
        Ok(MsgEvent {
            kind: ProbeKind::from_label(kind_label)
                .ok_or_else(|| format!("unknown probe kind '{kind_label}'"))?,
            src: num("src")? as u32,
            dst: num("dst")? as u32,
            comm: num("comm")? as u64,
            tag: num("tag")? as u64,
            phase: Phase::from_label(phase_label)
                .ok_or_else(|| format!("unknown phase '{phase_label}'"))?,
            count: num("count")? as u64,
            bytes: num("bytes")? as u64,
            t_secs: num("t")?,
            step: v.get("step").and_then(Json::as_f64).map(|s| s as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_kind_labels_round_trip() {
        for kind in ALL_PROBE_KINDS {
            assert_eq!(ProbeKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(ProbeKind::from_label("bogus"), None);
    }

    #[test]
    fn fault_kinds_are_flagged() {
        assert!(!ProbeKind::Send.is_fault());
        assert!(!ProbeKind::Recv.is_fault());
        assert!(ProbeKind::FaultDrop.is_fault());
        assert!(ProbeKind::FaultKill.is_fault());
    }

    #[test]
    fn msg_event_json_round_trips() {
        let e = MsgEvent {
            kind: ProbeKind::Send,
            src: 3,
            dst: 1,
            comm: 0,
            tag: 0x3000,
            phase: Phase::Shift,
            count: 128,
            bytes: 128 * 56,
            t_secs: 0.125,
            step: Some(7),
        };
        let back = MsgEvent::from_json(&e.to_json()).unwrap();
        assert_eq!(back, e);
        // `step: None` survives too.
        let mut e2 = e;
        e2.step = None;
        let back2 = MsgEvent::from_json(&e2.to_json()).unwrap();
        assert_eq!(back2, e2);
    }
}
