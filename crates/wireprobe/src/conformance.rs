//! Schedule conformance: diff observed wire traffic against the message
//! multiset the CA algorithm predicts, attributing discrepancies to
//! injected faults.

use std::collections::BTreeMap;

use nbody_trace::Phase;

use crate::event::ProbeKind;
use crate::log::WireLog;

/// One point-to-point message the schedule predicts.
///
/// `count` is in payload *elements* (particles): the transport's byte
/// counts reflect Rust's in-memory particle layout while the schedule's
/// byte math uses the paper's wire format, so sizes are compared as
/// element counts, which both sides agree on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectedMsg {
    /// Sender's global rank.
    pub src: u32,
    /// Receiver's global rank.
    pub dst: u32,
    /// Pipeline phase the message belongs to.
    pub phase: Phase,
    /// Payload length in elements.
    pub count: u64,
}

/// The full expected message multiset for a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedSchedule {
    /// Predicted messages, in per-rank program order.
    pub msgs: Vec<ExpectedMsg>,
    /// Whether payload sizes are predicted exactly. When `false` (e.g.
    /// cutoff methods, whose block sizes drift with re-assignment) only
    /// per-channel message counts are checked.
    pub size_checked: bool,
    /// Human-readable description of the schedule's parameters.
    pub detail: String,
}

/// Pipeline phases whose point-to-point traffic is conformance-checked.
/// Broadcast/reduce ride collectives (not probed per-message), re-assign
/// traffic is data-dependent, and recovery traffic is fault-driven.
pub const CHECKED_PHASES: [Phase; 2] = [Phase::Skew, Phase::Shift];

/// A fault the checker may attribute discrepancies to. Derived from the
/// `FaultPlan` driving a chaos run (and/or from fault probe events in the
/// log itself) — defined here so the checker needs no dependency on the
/// comm layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultNote {
    /// Fault kind (one of the `ProbeKind::Fault*` variants).
    pub kind: ProbeKind,
    /// World rank the fault was injected at.
    pub rank: u32,
    /// Pipeline step the fault fired on, when known.
    pub step: Option<u64>,
}

impl FaultNote {
    /// Human-readable tag, e.g. `fault_drop:rank1@step0`.
    pub fn describe(&self) -> String {
        match self.step {
            Some(s) => format!("{}:rank{}@step{}", self.kind.label(), self.rank, s),
            None => format!("{}:rank{}", self.kind.label(), self.rank),
        }
    }

    /// Collect deduplicated fault notes from the fault events a chaos
    /// backend recorded into the wire log.
    pub fn from_log(log: &WireLog) -> Vec<FaultNote> {
        let mut notes: Vec<FaultNote> = Vec::new();
        for e in log.fault_events() {
            let note = FaultNote {
                kind: e.kind,
                rank: e.src,
                step: e.step,
            };
            if !notes.contains(&note) {
                notes.push(note);
            }
        }
        notes
    }
}

/// How observed traffic deviated from the schedule on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A predicted message never appeared.
    Missing,
    /// A message appeared that the schedule does not predict.
    Unexpected,
    /// A message appeared with a payload size the schedule does not
    /// predict at that slot.
    WrongSize,
    /// The channel carried the right multiset in the wrong order.
    OutOfOrder,
}

impl ViolationKind {
    /// Stable label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::Missing => "missing",
            ViolationKind::Unexpected => "unexpected",
            ViolationKind::WrongSize => "wrong-size",
            ViolationKind::OutOfOrder => "out-of-order",
        }
    }
}

/// One conformance discrepancy, possibly attributed to an injected fault.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Discrepancy class.
    pub kind: ViolationKind,
    /// Sender's global rank of the affected channel.
    pub src: u32,
    /// Receiver's global rank of the affected channel.
    pub dst: u32,
    /// Phase of the affected channel.
    pub phase: Phase,
    /// Predicted element count, when the class carries one.
    pub expected_count: Option<u64>,
    /// Observed element count, when the class carries one.
    pub observed_count: Option<u64>,
    /// Fault attribution: `Some(reason)` means the discrepancy is
    /// explained by the fault plan and is not a bug.
    pub explained: Option<String>,
}

/// The conformance checker's verdict over a whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceReport {
    /// Schedule parameters the expectations came from.
    pub detail: String,
    /// Messages the schedule predicts (in checked phases).
    pub expected_msgs: u64,
    /// Protocol sends observed (in checked phases).
    pub observed_msgs: u64,
    /// Channels compared.
    pub channels: usize,
    /// Every discrepancy found, explained or not.
    pub violations: Vec<Violation>,
    /// Fault notes consulted for attribution.
    pub faults_consulted: usize,
    /// Whether any probe ring overflowed: the log is incomplete, so
    /// unexplained findings degrade from failure to warning.
    pub saturated: bool,
}

impl ConformanceReport {
    /// Discrepancies attributed to the fault plan.
    pub fn explained(&self) -> usize {
        self.violations.iter().filter(|v| v.explained.is_some()).count()
    }

    /// Discrepancies with no fault to blame — real conformance failures.
    pub fn unexplained(&self) -> usize {
        self.violations.len() - self.explained()
    }

    /// Whether the run conforms to the schedule (no unexplained
    /// discrepancies).
    pub fn passed(&self) -> bool {
        self.unexplained() == 0
    }

    /// `PASS`, `WARN` (unexplained findings but the probe ring overflowed,
    /// so the log may simply be missing events), or `FAIL`.
    pub fn verdict(&self) -> &'static str {
        if self.passed() {
            "PASS"
        } else if self.saturated {
            "WARN"
        } else {
            "FAIL"
        }
    }
}

type Channel = (u32, u32, Phase);

/// Multiset difference: returns (in `a` but not `b`, in `b` but not `a`).
fn multiset_diff(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut counts: BTreeMap<u64, i64> = BTreeMap::new();
    for &x in a {
        *counts.entry(x).or_default() += 1;
    }
    for &x in b {
        *counts.entry(x).or_default() -= 1;
    }
    let mut only_a = Vec::new();
    let mut only_b = Vec::new();
    for (x, n) in counts {
        for _ in 0..n.abs() {
            if n > 0 {
                only_a.push(x);
            } else {
                only_b.push(x);
            }
        }
    }
    (only_a, only_b)
}

/// Diff observed wire traffic against the expected schedule.
///
/// Per channel `(src, dst, phase)` the checker compares the ordered
/// sequence of payload sizes the schedule predicts against the sends the
/// log recorded (ordered by timestamp). Sequences equal → conformant;
/// multisets equal but reordered → one [`ViolationKind::OutOfOrder`];
/// otherwise leftover expected/observed sizes pair up as
/// [`ViolationKind::WrongSize`] with the remainder classified missing or
/// unexpected. Fault attribution then explains: missing traffic from a
/// rank with an injected drop/kill; surplus traffic that duplicates
/// legitimate sizes when faults forced retries (recovery re-runs a whole
/// pipeline attempt, re-sending byte-identical messages on every
/// channel); injected duplicates; and reordering under relaxed chaos
/// matching.
pub fn check_conformance(
    expected: &ExpectedSchedule,
    log: &WireLog,
    faults: &[FaultNote],
) -> ConformanceReport {
    let mut exp_by_channel: BTreeMap<Channel, Vec<u64>> = BTreeMap::new();
    for m in &expected.msgs {
        if CHECKED_PHASES.contains(&m.phase) {
            exp_by_channel
                .entry((m.src, m.dst, m.phase))
                .or_default()
                .push(m.count);
        }
    }
    // Observed protocol sends in checked phases, ordered by timestamp
    // within each channel (each sender is single-threaded, so its stamps
    // reflect program order).
    let mut obs_by_channel: BTreeMap<Channel, Vec<(f64, u64)>> = BTreeMap::new();
    for r in &log.ranks {
        for e in &r.events {
            if e.kind == ProbeKind::Send && CHECKED_PHASES.contains(&e.phase) {
                obs_by_channel
                    .entry((e.src, e.dst, e.phase))
                    .or_default()
                    .push((e.t_secs, e.count));
            }
        }
    }
    for obs in obs_by_channel.values_mut() {
        obs.sort_by(|a, b| a.0.total_cmp(&b.0));
    }

    let mut channels: Vec<Channel> = exp_by_channel.keys().copied().collect();
    for ch in obs_by_channel.keys() {
        if !exp_by_channel.contains_key(ch) {
            channels.push(*ch);
        }
    }
    channels.sort_by_key(|&(s, d, p)| (s, d, p.index()));

    let empty_exp: Vec<u64> = Vec::new();
    let mut report = ConformanceReport {
        detail: expected.detail.clone(),
        expected_msgs: exp_by_channel.values().map(|v| v.len() as u64).sum(),
        observed_msgs: obs_by_channel.values().map(|v| v.len() as u64).sum(),
        channels: channels.len(),
        violations: Vec::new(),
        faults_consulted: faults.len(),
        saturated: log.saturated(),
    };

    for ch in channels {
        let (src, dst, phase) = ch;
        let exp = exp_by_channel.get(&ch).unwrap_or(&empty_exp);
        let obs: Vec<u64> = obs_by_channel
            .get(&ch)
            .map(|v| v.iter().map(|&(_, c)| c).collect())
            .unwrap_or_default();
        let violation = |kind, expected_count, observed_count| Violation {
            kind,
            src,
            dst,
            phase,
            expected_count,
            observed_count,
            explained: None,
        };
        if expected.size_checked {
            if *exp == obs {
                continue;
            }
            let (missing, extra) = multiset_diff(exp, &obs);
            if missing.is_empty() && extra.is_empty() {
                report
                    .violations
                    .push(violation(ViolationKind::OutOfOrder, None, None));
                continue;
            }
            let paired = missing.len().min(extra.len());
            for i in 0..paired {
                report.violations.push(violation(
                    ViolationKind::WrongSize,
                    Some(missing[i]),
                    Some(extra[i]),
                ));
            }
            for &m in &missing[paired..] {
                report
                    .violations
                    .push(violation(ViolationKind::Missing, Some(m), None));
            }
            for &x in &extra[paired..] {
                report
                    .violations
                    .push(violation(ViolationKind::Unexpected, None, Some(x)));
            }
        } else {
            // Count-only mode: sizes are data-dependent, compare volumes.
            use std::cmp::Ordering;
            match obs.len().cmp(&exp.len()) {
                Ordering::Less => {
                    for _ in 0..(exp.len() - obs.len()) {
                        report
                            .violations
                            .push(violation(ViolationKind::Missing, None, None));
                    }
                }
                Ordering::Greater => {
                    for _ in 0..(obs.len() - exp.len()) {
                        report
                            .violations
                            .push(violation(ViolationKind::Unexpected, None, None));
                    }
                }
                Ordering::Equal => {}
            }
        }
    }

    attribute_faults(&mut report, &exp_by_channel, faults);
    report
}

/// Mark violations the fault plan explains.
fn attribute_faults(
    report: &mut ConformanceReport,
    exp_by_channel: &BTreeMap<Channel, Vec<u64>>,
    faults: &[FaultNote],
) {
    if faults.is_empty() {
        return;
    }
    let lossy_at = |rank: u32| {
        faults
            .iter()
            .find(|f| {
                f.rank == rank && matches!(f.kind, ProbeKind::FaultDrop | ProbeKind::FaultKill)
            })
            .map(FaultNote::describe)
    };
    let dup_at = |rank: u32| {
        faults
            .iter()
            .find(|f| f.rank == rank && f.kind == ProbeKind::FaultDup)
            .map(FaultNote::describe)
    };
    let any_fault = faults
        .first()
        .map(FaultNote::describe)
        .unwrap_or_default();
    for v in &mut report.violations {
        let channel_expects = |count: Option<u64>| match count {
            // Count-only mode carries no sizes; any expected traffic on
            // the channel makes surplus a plausible retransmission.
            None => exp_by_channel.contains_key(&(v.src, v.dst, v.phase)),
            Some(c) => exp_by_channel
                .get(&(v.src, v.dst, v.phase))
                .is_some_and(|exp| exp.contains(&c)),
        };
        v.explained = match v.kind {
            ViolationKind::Missing => {
                lossy_at(v.src).map(|f| format!("message suppressed by injected {f}"))
            }
            ViolationKind::Unexpected => {
                if let Some(f) = dup_at(v.src) {
                    Some(format!("surplus copy from injected {f}"))
                } else if channel_expects(v.observed_count) {
                    Some(format!(
                        "retransmission from recovery retry triggered by {any_fault}"
                    ))
                } else {
                    None
                }
            }
            ViolationKind::WrongSize => {
                lossy_at(v.src).map(|f| format!("attempt truncated by injected {f}"))
            }
            ViolationKind::OutOfOrder => Some(format!(
                "reordering under relaxed chaos matching and retries ({any_fault})"
            )),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MsgEvent;
    use crate::log::RankWireLog;

    fn send(src: u32, dst: u32, phase: Phase, count: u64, t: f64) -> MsgEvent {
        MsgEvent {
            kind: ProbeKind::Send,
            src,
            dst,
            comm: 0,
            tag: 0,
            phase,
            count,
            bytes: count * 56,
            t_secs: t,
            step: None,
        }
    }

    fn expected(msgs: Vec<ExpectedMsg>) -> ExpectedSchedule {
        ExpectedSchedule {
            msgs,
            size_checked: true,
            detail: "test".into(),
        }
    }

    fn log_of(events: Vec<MsgEvent>) -> WireLog {
        WireLog::from_ranks(vec![RankWireLog {
            rank: 0,
            events,
            dropped_events: 0,
        }])
    }

    fn exp_msg(src: u32, dst: u32, count: u64) -> ExpectedMsg {
        ExpectedMsg {
            src,
            dst,
            phase: Phase::Shift,
            count,
        }
    }

    #[test]
    fn matching_traffic_conforms() {
        let exp = expected(vec![exp_msg(0, 1, 10), exp_msg(0, 1, 12)]);
        let log = log_of(vec![
            send(0, 1, Phase::Shift, 10, 0.1),
            send(0, 1, Phase::Shift, 12, 0.2),
        ]);
        let report = check_conformance(&exp, &log, &[]);
        assert!(report.passed());
        assert_eq!(report.verdict(), "PASS");
        assert_eq!(report.expected_msgs, 2);
        assert_eq!(report.observed_msgs, 2);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn unchecked_phases_are_ignored() {
        let exp = expected(vec![exp_msg(0, 1, 10)]);
        let log = log_of(vec![
            send(0, 1, Phase::Shift, 10, 0.1),
            send(0, 2, Phase::Reassign, 99, 0.2),
            send(0, 2, Phase::Recovery, 99, 0.3),
        ]);
        let report = check_conformance(&exp, &log, &[]);
        assert!(report.passed());
        assert_eq!(report.observed_msgs, 1);
    }

    #[test]
    fn missing_message_fails_without_faults() {
        let exp = expected(vec![exp_msg(0, 1, 10), exp_msg(0, 1, 12)]);
        let log = log_of(vec![send(0, 1, Phase::Shift, 10, 0.1)]);
        let report = check_conformance(&exp, &log, &[]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::Missing);
        assert_eq!(report.violations[0].expected_count, Some(12));
        assert_eq!(report.unexplained(), 1);
        assert_eq!(report.verdict(), "FAIL");
    }

    #[test]
    fn drop_fault_explains_missing_message() {
        let exp = expected(vec![exp_msg(0, 1, 10)]);
        let log = log_of(vec![]);
        let faults = [FaultNote {
            kind: ProbeKind::FaultDrop,
            rank: 0,
            step: Some(0),
        }];
        let report = check_conformance(&exp, &log, &faults);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0]
            .explained
            .as_deref()
            .unwrap()
            .contains("fault_drop:rank0@step0"));
        assert!(report.passed(), "explained violations still pass");
        assert_eq!(report.verdict(), "PASS");
        // A drop at a *different* rank explains nothing.
        let other = [FaultNote {
            kind: ProbeKind::FaultDrop,
            rank: 3,
            step: Some(0),
        }];
        let report = check_conformance(&exp, &log, &other);
        assert_eq!(report.unexplained(), 1);
    }

    #[test]
    fn retry_duplicates_are_attributed_to_faults() {
        // Recovery re-runs the attempt: the channel carries its expected
        // size twice. With a fault on record that's a retransmission.
        let exp = expected(vec![exp_msg(0, 1, 10)]);
        let log = log_of(vec![
            send(0, 1, Phase::Shift, 10, 0.1),
            send(0, 1, Phase::Shift, 10, 0.2),
        ]);
        let faults = [FaultNote {
            kind: ProbeKind::FaultDrop,
            rank: 2,
            step: Some(1),
        }];
        let report = check_conformance(&exp, &log, &faults);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::Unexpected);
        assert!(report.passed());
        // The same surplus without any fault on record is a real bug.
        let report = check_conformance(&exp, &log, &[]);
        assert_eq!(report.unexplained(), 1);
        assert_eq!(report.verdict(), "FAIL");
    }

    #[test]
    fn never_predicted_size_stays_unexplained_even_with_faults() {
        let exp = expected(vec![exp_msg(0, 1, 10)]);
        let log = log_of(vec![
            send(0, 1, Phase::Shift, 10, 0.1),
            send(0, 1, Phase::Shift, 777, 0.2),
        ]);
        let faults = [FaultNote {
            kind: ProbeKind::FaultDrop,
            rank: 2,
            step: Some(0),
        }];
        let report = check_conformance(&exp, &log, &faults);
        // Surplus message pairs with nothing expected: with one expected
        // and two observed, the diff yields one unexpected size (777),
        // which no fault rule covers.
        assert_eq!(report.unexplained(), 1);
    }

    #[test]
    fn wrong_size_is_classified() {
        let exp = expected(vec![exp_msg(0, 1, 10)]);
        let log = log_of(vec![send(0, 1, Phase::Shift, 11, 0.1)]);
        let report = check_conformance(&exp, &log, &[]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::WrongSize);
        assert_eq!(report.violations[0].expected_count, Some(10));
        assert_eq!(report.violations[0].observed_count, Some(11));
    }

    #[test]
    fn reordered_multiset_is_out_of_order() {
        let exp = expected(vec![exp_msg(0, 1, 10), exp_msg(0, 1, 12)]);
        let log = log_of(vec![
            send(0, 1, Phase::Shift, 12, 0.1),
            send(0, 1, Phase::Shift, 10, 0.2),
        ]);
        let report = check_conformance(&exp, &log, &[]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::OutOfOrder);
        assert_eq!(report.unexplained(), 1);
    }

    #[test]
    fn saturation_degrades_failures_to_warnings() {
        let exp = expected(vec![exp_msg(0, 1, 10)]);
        let log = WireLog::from_ranks(vec![RankWireLog {
            rank: 0,
            events: vec![],
            dropped_events: 5,
        }]);
        let report = check_conformance(&exp, &log, &[]);
        assert_eq!(report.unexplained(), 1);
        assert!(report.saturated);
        assert_eq!(report.verdict(), "WARN", "saturated ring is not a FAIL");
    }

    #[test]
    fn count_only_mode_checks_volumes_not_sizes() {
        let exp = ExpectedSchedule {
            msgs: vec![exp_msg(0, 1, 10), exp_msg(0, 1, 10)],
            size_checked: false,
            detail: "test".into(),
        };
        // Two sends with "wrong" sizes: fine in count-only mode.
        let ok = log_of(vec![
            send(0, 1, Phase::Shift, 3, 0.1),
            send(0, 1, Phase::Shift, 4, 0.2),
        ]);
        assert!(check_conformance(&exp, &ok, &[]).passed());
        // A missing message is still caught.
        let short = log_of(vec![send(0, 1, Phase::Shift, 3, 0.1)]);
        let report = check_conformance(&exp, &short, &[]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::Missing);
    }

    #[test]
    fn fault_notes_dedupe_from_log() {
        let mut drop1 = send(1, 2, Phase::Shift, 10, 0.1);
        drop1.kind = ProbeKind::FaultDrop;
        drop1.step = Some(3);
        let drop2 = drop1.clone();
        let mut kill = send(2, 0, Phase::Skew, 5, 0.2);
        kill.kind = ProbeKind::FaultKill;
        kill.step = Some(4);
        let log = log_of(vec![drop1, drop2, kill]);
        let notes = FaultNote::from_log(&log);
        assert_eq!(notes.len(), 2);
        assert_eq!(notes[0].kind, ProbeKind::FaultDrop);
        assert_eq!(notes[0].rank, 1);
        assert_eq!(notes[1].describe(), "fault_kill:rank2@step4");
    }
}
