//! Drained wire logs: per-rank event lists and the run-level bundle.

use nbody_trace::Json;

use crate::event::MsgEvent;

/// Schema tag written into every serialized wire log.
pub const WIRE_SCHEMA: &str = "nbody-wireprobe/v1";

/// One rank's drained probe ring.
#[derive(Debug, Clone, PartialEq)]
pub struct RankWireLog {
    /// World rank the events belong to.
    pub rank: u32,
    /// Probe events, oldest first.
    pub events: Vec<MsgEvent>,
    /// Events evicted from the bounded ring before the drain.
    pub dropped_events: u64,
}

/// The whole run's wire log: every rank's probe events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireLog {
    /// Per-rank logs, ordered by rank.
    pub ranks: Vec<RankWireLog>,
}

impl WireLog {
    /// Assemble a run log from drained per-rank recorders.
    pub fn from_ranks(mut ranks: Vec<RankWireLog>) -> WireLog {
        ranks.sort_by_key(|r| r.rank);
        WireLog { ranks }
    }

    /// Total number of retained probe events across ranks.
    pub fn total_events(&self) -> usize {
        self.ranks.iter().map(|r| r.events.len()).sum()
    }

    /// Total number of events evicted from saturated rings.
    pub fn total_dropped(&self) -> u64 {
        self.ranks.iter().map(|r| r.dropped_events).sum()
    }

    /// Whether any rank's probe ring overflowed. A saturated log is
    /// incomplete, so conformance findings degrade to warnings.
    pub fn saturated(&self) -> bool {
        self.total_dropped() > 0
    }

    /// All fault events across ranks (for `FaultPlan` attribution).
    pub fn fault_events(&self) -> impl Iterator<Item = &MsgEvent> {
        self.ranks
            .iter()
            .flat_map(|r| r.events.iter())
            .filter(|e| e.kind.is_fault())
    }

    /// Serialize to a single JSON document.
    pub fn to_json(&self) -> String {
        let ranks = self
            .ranks
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("rank".into(), Json::Num(r.rank as f64)),
                    ("dropped_events".into(), Json::Num(r.dropped_events as f64)),
                    (
                        "events".into(),
                        Json::Arr(r.events.iter().map(MsgEvent::to_json).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(WIRE_SCHEMA.into())),
            ("ranks".into(), Json::Arr(ranks)),
        ])
        .to_string()
    }

    /// Parse a document produced by [`to_json`](WireLog::to_json).
    pub fn parse(src: &str) -> Result<WireLog, String> {
        let v = Json::parse(src)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("wire log missing 'schema'")?;
        if schema != WIRE_SCHEMA {
            return Err(format!("unsupported wire log schema '{schema}'"));
        }
        let mut ranks = Vec::new();
        for r in v
            .get("ranks")
            .and_then(Json::as_array)
            .ok_or("wire log missing 'ranks'")?
        {
            let mut events = Vec::new();
            for e in r
                .get("events")
                .and_then(Json::as_array)
                .ok_or("rank entry missing 'events'")?
            {
                events.push(MsgEvent::from_json(e)?);
            }
            ranks.push(RankWireLog {
                rank: r
                    .get("rank")
                    .and_then(Json::as_f64)
                    .ok_or("rank entry missing 'rank'")? as u32,
                events,
                dropped_events: r
                    .get("dropped_events")
                    .and_then(Json::as_f64)
                    .ok_or("rank entry missing 'dropped_events'")?
                    as u64,
            });
        }
        Ok(WireLog { ranks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProbeKind;
    use nbody_trace::Phase;

    fn event(kind: ProbeKind, tag: u64) -> MsgEvent {
        MsgEvent {
            kind,
            src: 0,
            dst: 1,
            comm: 0,
            tag,
            phase: Phase::Shift,
            count: 8,
            bytes: 448,
            t_secs: 0.5,
            step: None,
        }
    }

    #[test]
    fn json_round_trips_and_sorts_ranks() {
        let log = WireLog::from_ranks(vec![
            RankWireLog {
                rank: 1,
                events: vec![event(ProbeKind::Recv, 3)],
                dropped_events: 2,
            },
            RankWireLog {
                rank: 0,
                events: vec![event(ProbeKind::Send, 3), event(ProbeKind::FaultDrop, 4)],
                dropped_events: 0,
            },
        ]);
        assert_eq!(log.ranks[0].rank, 0, "ranks are sorted");
        assert_eq!(log.total_events(), 3);
        assert_eq!(log.total_dropped(), 2);
        assert!(log.saturated());
        assert_eq!(log.fault_events().count(), 1);
        let back = WireLog::parse(&log.to_json()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        assert!(WireLog::parse("{}").is_err());
        assert!(WireLog::parse("not json").is_err());
        let other = r#"{"schema":"something/v9","ranks":[]}"#;
        assert!(WireLog::parse(other).is_err());
    }
}
