//! Wire-level transport observability for the CA N-body communicators.
//!
//! Every `Communicator` backend records a [`MsgEvent`] per point-to-point
//! send/recv (and per injected fault) into a bounded per-rank
//! [`ProbeRecorder`] ring. Drained rings form a [`WireLog`], which feeds:
//!
//! * [`match_events`] — joins send→recv pairs per channel into latency
//!   summaries, in-flight gauges, and drop accounting ([`WireReport`]);
//! * [`check_conformance`] — diffs observed traffic against the expected
//!   per-step message multiset derived from the CA schedule, attributing
//!   discrepancies to injected faults ([`ConformanceReport`]).
//!
//! The crate is transport-agnostic: `ThreadComm`, `SelfComm`, `ChaosComm`,
//! and any future process/TCP backend emit the same probe stream, so the
//! conformance checker doubles as an acceptance harness for new backends.

#![warn(missing_docs)]

mod conformance;
mod event;
mod log;
mod matching;
mod recorder;

pub use conformance::{
    check_conformance, ConformanceReport, ExpectedMsg, ExpectedSchedule, FaultNote, Violation,
    ViolationKind,
};
pub use event::{MsgEvent, ProbeKind, ALL_PROBE_KINDS};
pub use log::{RankWireLog, WireLog, WIRE_SCHEMA};
pub use matching::{causal_log, match_events, ChannelStats, LatencySummary, WireReport};
pub use recorder::{ProbeRecorder, DEFAULT_PROBE_CAP};
