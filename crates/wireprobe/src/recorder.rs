//! Per-rank bounded probe ring, recording message events as they happen.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Instant;

use nbody_trace::Phase;

use crate::event::{MsgEvent, ProbeKind};
use crate::log::RankWireLog;

/// Default per-rank probe ring capacity. Sized so short runs never evict
/// (a p=4, c=2, 2-step smoke emits well under a hundred events per rank)
/// while long runs stay bounded.
pub const DEFAULT_PROBE_CAP: usize = 4096;

#[derive(Debug)]
struct Inner {
    rank: u32,
    /// Shared across all ranks of a run so send/recv stamps are comparable.
    epoch: Instant,
    events: VecDeque<MsgEvent>,
    event_cap: usize,
    dropped_events: u64,
}

/// A cheap cloneable handle to one rank's probe ring.
///
/// Mirrors the timeline `TimelineRecorder` pattern: a disabled handle is a
/// no-op with near-zero cost, clones share storage (so communicator splits
/// keep recording into the same ring), and [`finish`](ProbeRecorder::finish)
/// drains the ring into a [`RankWireLog`].
#[derive(Debug, Clone)]
pub struct ProbeRecorder {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl ProbeRecorder {
    /// A no-op recorder: every probe call returns immediately.
    pub fn disabled() -> ProbeRecorder {
        ProbeRecorder { inner: None }
    }

    /// A live recorder for `rank` with the default ring capacity. `epoch`
    /// MUST be the same `Instant` for every rank of the run — cross-rank
    /// send→recv latency is the difference of two stamps against it.
    pub fn for_rank(rank: u32, epoch: Instant) -> ProbeRecorder {
        Self::with_capacity(rank, epoch, DEFAULT_PROBE_CAP)
    }

    /// A live recorder with an explicit ring capacity (>= 1).
    pub fn with_capacity(rank: u32, epoch: Instant, event_cap: usize) -> ProbeRecorder {
        assert!(event_cap >= 1, "probe ring capacity must be >= 1");
        ProbeRecorder {
            inner: Some(Rc::new(RefCell::new(Inner {
                rank,
                epoch,
                events: VecDeque::with_capacity(event_cap.min(1024)),
                event_cap,
                dropped_events: 0,
            }))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record a payload handed to the transport by this rank.
    #[allow(clippy::too_many_arguments)]
    pub fn send(&self, dst: u32, comm: u64, tag: u64, phase: Phase, count: u64, bytes: u64) {
        self.record(ProbeKind::Send, None, Some(dst), comm, tag, phase, count, bytes, None);
    }

    /// Record a payload taken off the transport by this rank.
    pub fn recv(&self, src: u32, comm: u64, tag: u64, phase: Phase, count: u64, bytes: u64) {
        self.record(ProbeKind::Recv, Some(src), None, comm, tag, phase, count, bytes, None);
    }

    /// Record an injected fault acting on traffic from this rank to `dst`.
    #[allow(clippy::too_many_arguments)]
    pub fn fault(
        &self,
        kind: ProbeKind,
        dst: u32,
        tag: u64,
        phase: Phase,
        count: u64,
        bytes: u64,
        step: u64,
    ) {
        debug_assert!(kind.is_fault(), "fault() takes only Fault* probe kinds");
        self.record(kind, None, Some(dst), 0, tag, phase, count, bytes, Some(step));
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        kind: ProbeKind,
        src: Option<u32>,
        dst: Option<u32>,
        comm: u64,
        tag: u64,
        phase: Phase,
        count: u64,
        bytes: u64,
        step: Option<u64>,
    ) {
        let Some(inner) = &self.inner else { return };
        let mut inner = inner.borrow_mut();
        let t_secs = inner.epoch.elapsed().as_secs_f64();
        let me = inner.rank;
        if inner.events.len() == inner.event_cap {
            inner.events.pop_front();
            inner.dropped_events += 1;
        }
        let event = MsgEvent {
            kind,
            src: src.unwrap_or(me),
            dst: dst.unwrap_or(me),
            comm,
            tag,
            phase,
            count,
            bytes,
            t_secs,
            step,
        };
        inner.events.push_back(event);
    }

    /// Drain the ring into a per-rank log. Returns `None` for disabled
    /// handles. Other clones of this recorder see an empty ring afterwards.
    pub fn finish(&self) -> Option<RankWireLog> {
        let inner = self.inner.as_ref()?;
        let mut inner = inner.borrow_mut();
        Some(RankWireLog {
            rank: inner.rank,
            events: std::mem::take(&mut inner.events).into(),
            dropped_events: std::mem::take(&mut inner.dropped_events),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_noop() {
        let r = ProbeRecorder::disabled();
        assert!(!r.is_enabled());
        r.send(1, 0, 7, Phase::Shift, 10, 560);
        r.recv(1, 0, 7, Phase::Shift, 10, 560);
        r.fault(ProbeKind::FaultDrop, 1, 7, Phase::Shift, 10, 560, 0);
        assert!(r.finish().is_none());
    }

    #[test]
    fn probe_ring_is_bounded_and_counts_drops() {
        let r = ProbeRecorder::with_capacity(0, Instant::now(), 4);
        for i in 0..10u64 {
            r.send(1, 0, i, Phase::Shift, 1, 56);
        }
        let log = r.finish().unwrap();
        assert_eq!(log.events.len(), 4);
        assert_eq!(log.dropped_events, 6, "evictions are counted, not silent");
        // Oldest events were evicted; the newest survive in order.
        let tags: Vec<u64> = log.events.iter().map(|e| e.tag).collect();
        assert_eq!(tags, vec![6, 7, 8, 9]);
    }

    #[test]
    fn clones_share_storage_and_finish_drains() {
        let r = ProbeRecorder::for_rank(2, Instant::now());
        let split = r.clone();
        r.send(3, 0, 1, Phase::Skew, 5, 280);
        split.recv(1, 4, 2, Phase::Shift, 6, 336);
        let log = r.finish().unwrap();
        assert_eq!(log.rank, 2);
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].src, 2, "send fills src with own rank");
        assert_eq!(log.events[1].dst, 2, "recv fills dst with own rank");
        assert_eq!(log.events[1].comm, 4, "split comm id is preserved");
        let drained = split.finish().unwrap();
        assert!(drained.events.is_empty(), "finish drains shared storage");
    }

    #[test]
    fn timestamps_are_monotone_against_the_shared_epoch() {
        let epoch = Instant::now();
        let r = ProbeRecorder::for_rank(0, epoch);
        r.send(1, 0, 1, Phase::Skew, 1, 56);
        r.recv(1, 0, 1, Phase::Skew, 1, 56);
        let log = r.finish().unwrap();
        assert!(log.events[0].t_secs >= 0.0);
        assert!(log.events[1].t_secs >= log.events[0].t_secs);
    }
}
