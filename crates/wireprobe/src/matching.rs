//! Send→recv matching: per-channel latency, in-flight gauges, drop
//! accounting, and the causal message log.

use std::collections::BTreeMap;

use crate::event::{MsgEvent, ProbeKind};
use crate::log::WireLog;

/// Summary statistics over matched send→recv latencies on one channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of matched pairs the summary covers.
    pub count: u64,
    /// Fastest observed delivery, seconds.
    pub min_s: f64,
    /// Mean delivery time, seconds.
    pub mean_s: f64,
    /// Median delivery time, seconds.
    pub p50_s: f64,
    /// 90th-percentile delivery time, seconds.
    pub p90_s: f64,
    /// Slowest observed delivery, seconds.
    pub max_s: f64,
}

impl LatencySummary {
    fn from_sorted(latencies: &[f64]) -> LatencySummary {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        let n = latencies.len();
        let pct = |q: f64| latencies[(((n - 1) as f64) * q).round() as usize];
        LatencySummary {
            count: n as u64,
            min_s: latencies[0],
            mean_s: latencies.iter().sum::<f64>() / n as f64,
            p50_s: pct(0.5),
            p90_s: pct(0.9),
            max_s: latencies[n - 1],
        }
    }
}

/// Matched traffic statistics for one channel `(comm, src, dst, tag)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelStats {
    /// Communicator the channel lives on (0 = world).
    pub comm: u64,
    /// Sender's global rank.
    pub src: u32,
    /// Receiver's global rank.
    pub dst: u32,
    /// Message tag.
    pub tag: u64,
    /// Pipeline phase of the channel's traffic (from its first event).
    pub phase: nbody_trace::Phase,
    /// Sends observed on the channel.
    pub sends: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Send→recv pairs joined in FIFO order.
    pub matched: u64,
    /// Sends with no matching recv (lost, dropped, or unprobed receiver).
    pub unmatched_sends: u64,
    /// Recvs with no matching send (unprobed sender or evicted ring entry).
    pub unmatched_recvs: u64,
    /// Latency distribution over matched pairs.
    pub latency: LatencySummary,
    /// Peak number of messages simultaneously in flight on the channel.
    pub max_in_flight: u64,
}

/// The matcher's run-level output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireReport {
    /// Per-channel statistics, ordered by `(comm, src, dst, tag)`.
    pub channels: Vec<ChannelStats>,
    /// Total send events observed.
    pub total_sends: u64,
    /// Total recv events observed.
    pub total_recvs: u64,
    /// Total matched send→recv pairs.
    pub matched: u64,
    /// Sends that never matched a recv.
    pub unmatched_sends: u64,
    /// Recvs that never matched a send.
    pub unmatched_recvs: u64,
    /// Injected-fault events present in the log.
    pub fault_events: u64,
    /// Probe events evicted from saturated rings (incomplete log).
    pub dropped_probe_events: u64,
}

impl WireReport {
    /// Whether the underlying log lost events to ring overflow.
    pub fn saturated(&self) -> bool {
        self.dropped_probe_events > 0
    }
}

/// Join send and recv probe events into per-channel latency statistics.
///
/// Transports guarantee FIFO delivery per `(comm, src, dst)` pair, so the
/// i-th send on a channel pairs with the i-th recv. Unmatched events are
/// counted, never silently discarded; with a saturated ring the counts are
/// lower bounds.
pub fn match_events(log: &WireLog) -> WireReport {
    type Key = (u64, u32, u32, u64);
    #[derive(Default)]
    struct Lane {
        sends: Vec<MsgEvent>,
        recvs: Vec<MsgEvent>,
    }
    let mut lanes: BTreeMap<Key, Lane> = BTreeMap::new();
    let mut fault_events = 0u64;
    for r in &log.ranks {
        for e in &r.events {
            match e.kind {
                ProbeKind::Send => lanes
                    .entry((e.comm, e.src, e.dst, e.tag))
                    .or_default()
                    .sends
                    .push(e.clone()),
                ProbeKind::Recv => lanes
                    .entry((e.comm, e.src, e.dst, e.tag))
                    .or_default()
                    .recvs
                    .push(e.clone()),
                _ => fault_events += 1,
            }
        }
    }

    let mut report = WireReport {
        fault_events,
        dropped_probe_events: log.total_dropped(),
        ..WireReport::default()
    };
    for ((comm, src, dst, tag), mut lane) in lanes {
        lane.sends
            .sort_by(|a, b| a.t_secs.total_cmp(&b.t_secs));
        lane.recvs
            .sort_by(|a, b| a.t_secs.total_cmp(&b.t_secs));
        let matched_n = lane.sends.len().min(lane.recvs.len());
        let mut latencies: Vec<f64> = (0..matched_n)
            .map(|i| (lane.recvs[i].t_secs - lane.sends[i].t_secs).max(0.0))
            .collect();
        latencies.sort_by(f64::total_cmp);

        // Peak queue depth: +1 at each send, -1 at each matched recv,
        // swept in time order (sends first on ties).
        let mut edges: Vec<(f64, i64)> = lane.sends.iter().map(|e| (e.t_secs, 1)).collect();
        edges.extend(lane.recvs.iter().take(matched_n).map(|e| (e.t_secs, -1)));
        edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
        let (mut depth, mut max_depth) = (0i64, 0i64);
        for (_, d) in edges {
            depth += d;
            max_depth = max_depth.max(depth);
        }

        let phase = lane
            .sends
            .first()
            .or(lane.recvs.first())
            .map(|e| e.phase)
            .unwrap_or(nbody_trace::Phase::Other);
        let stats = ChannelStats {
            comm,
            src,
            dst,
            tag,
            phase,
            sends: lane.sends.len() as u64,
            bytes: lane.sends.iter().map(|e| e.bytes).sum(),
            matched: matched_n as u64,
            unmatched_sends: (lane.sends.len() - matched_n) as u64,
            unmatched_recvs: (lane.recvs.len() - matched_n) as u64,
            latency: LatencySummary::from_sorted(&latencies),
            max_in_flight: max_depth.max(0) as u64,
        };
        report.total_sends += stats.sends;
        report.total_recvs += lane.recvs.len() as u64;
        report.matched += stats.matched;
        report.unmatched_sends += stats.unmatched_sends;
        report.unmatched_recvs += stats.unmatched_recvs;
        report.channels.push(stats);
    }
    report
}

/// All probe events across ranks merged into one causally-ordered log
/// (ascending shared-epoch timestamps).
pub fn causal_log(log: &WireLog) -> Vec<MsgEvent> {
    let mut all: Vec<MsgEvent> = log
        .ranks
        .iter()
        .flat_map(|r| r.events.iter().cloned())
        .collect();
    all.sort_by(|a, b| a.t_secs.total_cmp(&b.t_secs));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::RankWireLog;
    use nbody_trace::Phase;

    fn ev(kind: ProbeKind, src: u32, dst: u32, tag: u64, t: f64) -> MsgEvent {
        MsgEvent {
            kind,
            src,
            dst,
            comm: 0,
            tag,
            phase: Phase::Shift,
            count: 4,
            bytes: 224,
            t_secs: t,
            step: None,
        }
    }

    #[test]
    fn fifo_pairs_yield_latencies_and_depth() {
        // Two back-to-back sends on one channel, received later: the
        // channel briefly holds 2 messages in flight.
        let log = WireLog::from_ranks(vec![
            RankWireLog {
                rank: 0,
                events: vec![
                    ev(ProbeKind::Send, 0, 1, 7, 0.010),
                    ev(ProbeKind::Send, 0, 1, 7, 0.020),
                ],
                dropped_events: 0,
            },
            RankWireLog {
                rank: 1,
                events: vec![
                    ev(ProbeKind::Recv, 0, 1, 7, 0.030),
                    ev(ProbeKind::Recv, 0, 1, 7, 0.050),
                ],
                dropped_events: 0,
            },
        ]);
        let report = match_events(&log);
        assert_eq!(report.channels.len(), 1);
        let ch = &report.channels[0];
        assert_eq!((ch.src, ch.dst, ch.tag), (0, 1, 7));
        assert_eq!(ch.matched, 2);
        assert_eq!(ch.unmatched_sends, 0);
        assert!((ch.latency.min_s - 0.020).abs() < 1e-9);
        assert!((ch.latency.max_s - 0.030).abs() < 1e-9);
        assert_eq!(ch.max_in_flight, 2);
        assert_eq!(report.matched, 2);
        assert!(!report.saturated());
    }

    #[test]
    fn unmatched_sends_and_recvs_are_counted() {
        let log = WireLog::from_ranks(vec![RankWireLog {
            rank: 0,
            events: vec![
                ev(ProbeKind::Send, 0, 1, 1, 0.0),
                ev(ProbeKind::Recv, 1, 0, 2, 0.1),
                ev(ProbeKind::FaultDrop, 0, 1, 1, 0.0),
            ],
            dropped_events: 3,
        }]);
        let report = match_events(&log);
        assert_eq!(report.unmatched_sends, 1);
        assert_eq!(report.unmatched_recvs, 1);
        assert_eq!(report.matched, 0);
        assert_eq!(report.fault_events, 1);
        assert_eq!(report.dropped_probe_events, 3);
        assert!(report.saturated());
    }

    #[test]
    fn causal_log_merges_ranks_in_time_order() {
        let log = WireLog::from_ranks(vec![
            RankWireLog {
                rank: 1,
                events: vec![ev(ProbeKind::Recv, 0, 1, 1, 0.5)],
                dropped_events: 0,
            },
            RankWireLog {
                rank: 0,
                events: vec![ev(ProbeKind::Send, 0, 1, 1, 0.1)],
                dropped_events: 0,
            },
        ]);
        let merged = causal_log(&log);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].kind, ProbeKind::Send);
        assert_eq!(merged[1].kind, ProbeKind::Recv);
    }
}
