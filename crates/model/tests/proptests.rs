//! Property tests of the analytic model: the Eq. 1 lower bounds must be
//! monotone in each argument, and the Eq. 5 cost of the CA all-pairs
//! algorithm must degenerate to Plimpton's particle decomposition at
//! `c = 1` and to his force decomposition at `c = √p` (§III.B).

use nbody_model::{
    bandwidth_lower_bound, ca_all_pairs, force_decomposition, latency_lower_bound,
    particle_decomposition,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lower_bounds_monotone_in_flops(
        flops in 1.0f64..1e12,
        p in 1.0f64..1e6,
        m in 1.0f64..1e6,
        factor in 1.0f64..1e3,
    ) {
        // More work to communicate for: the bounds cannot drop.
        prop_assert!(latency_lower_bound(flops * factor, p, m) >= latency_lower_bound(flops, p, m));
        prop_assert!(bandwidth_lower_bound(flops * factor, p, m) >= bandwidth_lower_bound(flops, p, m));
    }

    #[test]
    fn lower_bounds_monotone_in_processors_and_memory(
        flops in 1.0f64..1e12,
        p in 1.0f64..1e6,
        m in 1.0f64..1e6,
        factor in 1.0f64..1e3,
    ) {
        // More processors or more memory per processor: the bounds cannot
        // rise (the "lower lower bound" of §II.A).
        prop_assert!(latency_lower_bound(flops, p * factor, m) <= latency_lower_bound(flops, p, m));
        prop_assert!(bandwidth_lower_bound(flops, p * factor, m) <= bandwidth_lower_bound(flops, p, m));
        prop_assert!(latency_lower_bound(flops, p, m * factor) <= latency_lower_bound(flops, p, m));
        prop_assert!(bandwidth_lower_bound(flops, p, m * factor) <= bandwidth_lower_bound(flops, p, m));
    }

    #[test]
    fn lower_bound_scaling_is_exact_in_memory(
        flops in 1.0f64..1e12,
        p in 1.0f64..1e6,
        m in 1.0f64..1e6,
    ) {
        // S scales as 1/M², W as 1/M: doubling M (a power of two, so f64
        // division is exact) quarters S and halves W.
        prop_assert_eq!(
            latency_lower_bound(flops, p, 2.0 * m) * 4.0,
            latency_lower_bound(flops, p, m)
        );
        prop_assert_eq!(
            bandwidth_lower_bound(flops, p, 2.0 * m) * 2.0,
            bandwidth_lower_bound(flops, p, m)
        );
    }

    #[test]
    fn eq5_at_c1_recovers_particle_decomposition(
        n_exp in 8u32..24,
        p_exp in 2u32..12,
    ) {
        let n = 1u64 << n_exp;
        let p = 1u64 << p_exp;
        let ca = ca_all_pairs(n, p, 1);
        let pd = particle_decomposition(n, p);
        // c = 1: one row per team, a pure ring pipeline. Eq. 5 carries one
        // extra skew message; the word count gains only the O(n/p) copy
        // terms.
        prop_assert_eq!(ca.messages, pd.messages + 1.0);
        prop_assert!(ca.words >= pd.words);
        prop_assert!(ca.words <= pd.words * (1.0 + 3.0 / p as f64));
    }

    #[test]
    fn eq5_at_c_sqrt_p_recovers_force_decomposition(
        n_exp in 8u32..24,
        k in 1u32..8,
    ) {
        // p = 4^k so that √p = 2^k is exact.
        let n = 1u64 << n_exp;
        let p = 1u64 << (2 * k);
        let c = 1u64 << k;
        let ca = ca_all_pairs(n, p, c);
        let fd = force_decomposition(n, p);
        // Messages: a single shift plus 2·log₂c collective messages vs the
        // force decomposition's log₂p = 2k — same O(log p) shape.
        prop_assert_eq!(ca.messages, 2.0 + 2.0 * k as f64);
        prop_assert_eq!(fd.messages, 2.0 * k as f64);
        // Words: n/√p shift + 3·n/√p collective copies = 4× the force
        // decomposition's n/√p, exactly (powers of two divide exactly).
        prop_assert_eq!(ca.words, 4.0 * fd.words);
    }
}
