//! Asymptotic algorithm costs (§II.B, §III.B, §IV.B of the paper), in
//! messages (`S`) and words (`W`) along the critical path, constants set
//! to the leading terms of the paper's analyses.

/// Latency and bandwidth cost of one timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCost {
    /// Messages along the critical path.
    pub messages: f64,
    /// Words (particles) along the critical path.
    pub words: f64,
}

/// Particle decomposition (§II.B): `S = O(p)`, `W = O(n)`.
pub fn particle_decomposition(n: u64, p: u64) -> CommCost {
    CommCost {
        messages: p as f64,
        words: n as f64,
    }
}

/// Force decomposition (§II.B): `S = O(log p)`, `W = O(n/√p)`.
pub fn force_decomposition(n: u64, p: u64) -> CommCost {
    CommCost {
        messages: (p as f64).log2().max(1.0),
        words: n as f64 / (p as f64).sqrt(),
    }
}

/// The CA all-pairs algorithm (Eq. 5): `S = O(p/c²)`, `W = O(n/c)`, plus
/// the `log c` collective terms the paper's analysis carries:
/// broadcast/reduce of `cn/p` words in `log c` messages each.
pub fn ca_all_pairs(n: u64, p: u64, c: u64) -> CommCost {
    let (n, p, c) = (n as f64, p as f64, c as f64);
    let collective_msgs = 2.0 * c.log2().max(0.0);
    let collective_words = 2.0 * c * n / p;
    CommCost {
        messages: p / (c * c) + 1.0 + collective_msgs,
        words: n / c + c * n / p + collective_words,
    }
}

/// Spatial decomposition with a cutoff (§II.C): `S = O(m^d)`,
/// `W = O(n·m^d/p)`, where `m` is the processor span of the cutoff and `d`
/// the dimensionality.
pub fn spatial_decomposition(n: u64, p: u64, m: u64, d: u32) -> CommCost {
    let neighbors = (m as f64).powi(d as i32);
    CommCost {
        messages: neighbors,
        words: n as f64 * neighbors / p as f64,
    }
}

/// Neutral-territory methods (§II.D): `S = O(1)`, `W = O(n·m^d/p^1.5)`.
pub fn neutral_territory(n: u64, p: u64, m: u64, d: u32) -> CommCost {
    CommCost {
        messages: 1.0,
        words: n as f64 * (m as f64).powi(d as i32) / (p as f64).powf(1.5),
    }
}

/// The CA 1D-cutoff algorithm (§IV.B): `S = O(m/c)`, `W = O(m·n/p)`, plus
/// collective terms.
pub fn ca_cutoff_1d(n: u64, p: u64, c: u64, m: u64) -> CommCost {
    let (n, p, c, m) = (n as f64, p as f64, c as f64, m as f64);
    let collective_msgs = 2.0 * c.log2().max(0.0);
    let collective_words = 2.0 * c * n / p;
    CommCost {
        messages: 2.0 * m / c + 1.0 + collective_msgs,
        words: 2.0 * m * n / p + c * n / p + collective_words,
    }
}

/// Ratio of an algorithm's cost to the lower bound; bounded ratios across
/// sweeps certify communication-optimality (tests below and in
/// `tests/optimality.rs`).
pub fn optimality_ratio(cost: CommCost, s_bound: f64, w_bound: f64) -> (f64, f64) {
    (cost.messages / s_bound.max(1e-300), cost.words / w_bound.max(1e-300))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::*;

    #[test]
    fn ca_interpolates_between_plimpton_decompositions() {
        let (n, p) = (1 << 16, 1 << 12);
        // c = 1: particle decomposition shape.
        let ca1 = ca_all_pairs(n, p, 1);
        let pd = particle_decomposition(n, p);
        assert!((ca1.messages - (pd.messages + 1.0)).abs() < 2.0);
        assert!(ca1.words / pd.words < 1.1);
        // c = sqrt(p): force decomposition shape (log p msgs, n/sqrt(p) words).
        let sqrt_p = 1 << 6;
        let ca_max = ca_all_pairs(n, p, sqrt_p);
        let fd = force_decomposition(n, p);
        assert!(ca_max.messages <= 3.0 * fd.messages + 3.0);
        assert!(ca_max.words <= 4.0 * fd.words);
    }

    #[test]
    fn ca_all_pairs_meets_lower_bound_for_all_c() {
        // The optimality proof of §III.B: with M = cn/p, the leading terms
        // of Eq. 5 match Eq. 2 within constants.
        let (n, p) = (1u64 << 18, 1u64 << 12);
        for c in [1u64, 2, 4, 8, 16, 32, 64] {
            let m = memory_per_proc(n, p, c);
            let cost = ca_all_pairs(n, p, c);
            let (rs, rw) = optimality_ratio(cost, s_direct(n, p, m), w_direct(n, p, m));
            assert!(
                (0.9..20.0).contains(&rs),
                "latency ratio out of band: c={c} ratio={rs}"
            );
            assert!(
                (0.9..20.0).contains(&rw),
                "bandwidth ratio out of band: c={c} ratio={rw}"
            );
        }
    }

    #[test]
    fn ca_cutoff_meets_lower_bound_for_all_c() {
        // §IV.B: S_1D = O(nk/(pM²)), W_1D = O(nk/(pM)) with k = 2mc n/p·...
        // Using k from Eq. 7 with m teams of span: rc/l = mc/p.
        let (n, p) = (1u64 << 18, 1u64 << 10);
        for c in [1u64, 2, 4, 8] {
            let teams = p / c;
            let m = teams / 4; // rc = l/4 of each team row
            let rc_over_l = m as f64 / teams as f64;
            let k = k_cutoff_1d(n, rc_over_l);
            let mem = memory_per_proc(n, p, c);
            let cost = ca_cutoff_1d(n, p, c, m);
            let (rs, rw) = optimality_ratio(
                cost,
                s_cutoff(n, k, p, mem),
                w_cutoff(n, k, p, mem),
            );
            assert!((0.5..40.0).contains(&rs), "c={c} rs={rs}");
            assert!((0.5..40.0).contains(&rw), "c={c} rw={rw}");
        }
    }

    #[test]
    fn spatial_is_optimal_only_at_minimal_memory() {
        let (n, p, m, d) = (1u64 << 18, 1u64 << 10, 4u64, 1u32);
        let k = n as f64 * m as f64 / p as f64 * 2.0;
        let cost = spatial_decomposition(n, p, m, d);
        // Optimal at M = n/p…
        let mem1 = memory_per_proc(n, p, 1);
        let (_, rw1) = optimality_ratio(cost, s_cutoff(n, k, p, mem1), w_cutoff(n, k, p, mem1));
        assert!(rw1 < 4.0, "rw1={rw1}");
        // …but far from the bound with sqrt(p) replication memory.
        let memx = memory_per_proc(n, p, (p as f64).sqrt() as u64);
        let (_, rwx) = optimality_ratio(cost, s_cutoff(n, k, p, memx), w_cutoff(n, k, p, memx));
        assert!(rwx > 8.0, "rwx={rwx}");
    }

    #[test]
    fn neutral_territory_beats_spatial_in_bandwidth() {
        let (n, p, m, d) = (1u64 << 18, 1u64 << 10, 4u64, 3u32);
        let nt = neutral_territory(n, p, m, d);
        let sp = spatial_decomposition(n, p, m, d);
        assert!(nt.words < sp.words);
        assert!(nt.messages < sp.messages);
    }

    #[test]
    fn replication_reduces_messages_quadratically() {
        let (n, p) = (1u64 << 16, 1u64 << 12);
        let s1 = ca_all_pairs(n, p, 1).messages;
        let s4 = ca_all_pairs(n, p, 4).messages;
        // Leading term p/c²: ratio close to 16 (collective terms shave a bit).
        let ratio = s1 / s4;
        assert!(ratio > 10.0, "ratio={ratio}");
    }
}
