//! Communication lower bounds (§II.A of the paper).
//!
//! From the Ballard et al. framework: with memory for `M` particles per
//! processor and `H(M) = O(M²)` force evaluations computable from `M`
//! operands, a computation of `F` total force evaluations on `p` processors
//! needs at least
//!
//! ```text
//! S = Ω(F / (p·M²))    messages   (latency,   Eq. 1/2/3)
//! W = Ω(F / (p·M))     words      (bandwidth, Eq. 1/2/3)
//! ```
//!
//! All quantities here are in *particles* (words) and *messages*; constant
//! factors are 1 by convention, so "meets the bound within a constant"
//! checks compare against these expressions directly.

/// Total force evaluations of an all-pairs timestep (`F = n²`).
pub fn flops_all_pairs(n: u64) -> u64 {
    n * n
}

/// Total force evaluations with a cutoff, `F = n·k`, where `k` is the
/// per-particle neighbor count.
pub fn flops_cutoff(n: u64, k: u64) -> u64 {
    n * k
}

/// Per-particle interaction count `k` for a 1D cutoff (Eq. 7):
/// `k = (2 r_c / l) · n`.
pub fn k_cutoff_1d(n: u64, rc_over_l: f64) -> f64 {
    2.0 * rc_over_l * n as f64
}

/// Generic latency lower bound `S = F / (p·M²)` (Eq. 1).
pub fn latency_lower_bound(flops: f64, p: f64, memory: f64) -> f64 {
    flops / (p * memory * memory)
}

/// Generic bandwidth lower bound `W = F / (p·M)` (Eq. 1).
pub fn bandwidth_lower_bound(flops: f64, p: f64, memory: f64) -> f64 {
    flops / (p * memory)
}

/// Memory per processor under `c`-fold replication (Eq. 4/8):
/// `M = c·n/p` particles.
pub fn memory_per_proc(n: u64, p: u64, c: u64) -> f64 {
    c as f64 * n as f64 / p as f64
}

/// Latency lower bound of a direct all-pairs timestep (Eq. 2).
pub fn s_direct(n: u64, p: u64, memory: f64) -> f64 {
    latency_lower_bound(flops_all_pairs(n) as f64, p as f64, memory)
}

/// Bandwidth lower bound of a direct all-pairs timestep (Eq. 2).
pub fn w_direct(n: u64, p: u64, memory: f64) -> f64 {
    bandwidth_lower_bound(flops_all_pairs(n) as f64, p as f64, memory)
}

/// Latency lower bound with a cutoff (Eq. 3).
pub fn s_cutoff(n: u64, k: f64, p: u64, memory: f64) -> f64 {
    latency_lower_bound(n as f64 * k, p as f64, memory)
}

/// Bandwidth lower bound with a cutoff (Eq. 3).
pub fn w_cutoff(n: u64, k: f64, p: u64, memory: f64) -> f64 {
    bandwidth_lower_bound(n as f64 * k, p as f64, memory)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pairs_bounds_with_minimal_memory() {
        // M = n/p (c = 1): S = p, W = n — the particle-decomposition costs.
        let (n, p) = (1 << 16, 1 << 8);
        let m = memory_per_proc(n, p, 1);
        assert_eq!(s_direct(n, p, m), p as f64);
        assert_eq!(w_direct(n, p, m), n as f64);
    }

    #[test]
    fn all_pairs_bounds_with_max_replication() {
        // M = n/sqrt(p) (c = sqrt(p)): S = 1, W = n/sqrt(p) — the force
        // decomposition costs.
        let (n, p) = (1 << 16, 1 << 8);
        let sqrt_p = 1 << 4;
        let m = memory_per_proc(n, p, sqrt_p);
        assert_eq!(s_direct(n, p, m), 1.0);
        assert_eq!(w_direct(n, p, m), (n / sqrt_p) as f64);
    }

    #[test]
    fn more_memory_lowers_both_bounds() {
        let (n, p) = (1 << 14, 1 << 6);
        let mut last_s = f64::INFINITY;
        let mut last_w = f64::INFINITY;
        for c in [1u64, 2, 4, 8] {
            let m = memory_per_proc(n, p, c);
            let s = s_direct(n, p, m);
            let w = w_direct(n, p, m);
            assert!(s < last_s && w < last_w, "c={c}");
            // The "lower" lower bound: S drops as c², W as c.
            assert_eq!(s * (c * c) as f64, s_direct(n, p, memory_per_proc(n, p, 1)));
            assert_eq!(w * c as f64, w_direct(n, p, memory_per_proc(n, p, 1)));
            last_s = s;
            last_w = w;
        }
    }

    #[test]
    fn cutoff_bounds_scale_with_k() {
        let (n, p) = (1 << 16, 1 << 8);
        let m = memory_per_proc(n, p, 1);
        let k_full = (n - 1) as f64;
        // With k ~ n the cutoff bound approaches the direct bound.
        let s_full = s_cutoff(n, k_full, p, m);
        assert!((s_full - s_direct(n, p, m)).abs() / s_direct(n, p, m) < 0.01);
        // Halving the cutoff halves k and both bounds.
        let k = k_cutoff_1d(n, 0.25);
        let k2 = k_cutoff_1d(n, 0.125);
        assert_eq!(k2 * 2.0, k);
        assert_eq!(s_cutoff(n, k2, p, m) * 2.0, s_cutoff(n, k, p, m));
        assert_eq!(w_cutoff(n, k2, p, m) * 2.0, w_cutoff(n, k, p, m));
    }

    #[test]
    fn k_cutoff_formula() {
        // r_c = l/4 (the paper's experimental choice) gives k = n/2.
        assert_eq!(k_cutoff_1d(1000, 0.25), 500.0);
    }
}
