//! # nbody-model
//!
//! The analytic machinery of *“A Communication-Optimal N-Body Algorithm for
//! Direct Interactions”* (IPDPS 2013): communication lower bounds
//! (Eqs. 1–3), per-algorithm cost expressions (§II.B–D, Eq. 5, §IV.B),
//! the replicated memory model (Eqs. 4/8), and closed-form time/efficiency
//! predictions used to cross-validate the discrete-event simulator.

#![warn(missing_docs)]

pub mod bounds;
pub mod costs;
pub mod efficiency;
pub mod optima;

pub use bounds::{
    bandwidth_lower_bound, k_cutoff_1d, latency_lower_bound, memory_per_proc, s_cutoff, s_direct,
    w_cutoff, w_direct,
};
pub use costs::{
    ca_all_pairs, ca_cutoff_1d, force_decomposition, neutral_territory, optimality_ratio,
    particle_decomposition, spatial_decomposition, CommCost,
};
pub use efficiency::{efficiency, time_all_pairs, time_cutoff_1d, ModelParams};
pub use optima::CommModel;
