//! Closed-form execution-time and parallel-efficiency predictions.
//!
//! A lightweight alpha-beta-gamma evaluation of the cost expressions in
//! [`costs`](crate::costs), used to sanity-check the discrete-event
//! simulator and to show the strong-scaling trends of Figs. 3 and 7
//! analytically. Words are particles; `beta` is seconds per particle.

use crate::costs::{ca_all_pairs, ca_cutoff_1d, CommCost};

/// Per-machine scalar parameters for the closed-form model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Seconds per message.
    pub alpha: f64,
    /// Seconds per particle-word moved.
    pub beta: f64,
    /// Seconds per force evaluation.
    pub gamma: f64,
}

impl ModelParams {
    /// Time of a communication cost under this parameterization.
    pub fn comm_time(&self, cost: CommCost) -> f64 {
        self.alpha * cost.messages + self.beta * cost.words
    }
}

/// Predicted time per all-pairs timestep: `γ·n²/p` compute plus Eq. 5
/// communication.
pub fn time_all_pairs(mp: ModelParams, n: u64, p: u64, c: u64) -> f64 {
    let compute = mp.gamma * (n as f64) * (n as f64) / p as f64;
    compute + mp.comm_time(ca_all_pairs(n, p, c))
}

/// Predicted time per 1D-cutoff timestep with span `m` (teams).
pub fn time_cutoff_1d(mp: ModelParams, n: u64, p: u64, c: u64, m: u64) -> f64 {
    let teams = p / c;
    let k = 2.0 * (m as f64 / teams as f64) * n as f64;
    let compute = mp.gamma * n as f64 * k / p as f64;
    compute + mp.comm_time(ca_cutoff_1d(n, p, c, m))
}

/// Parallel efficiency vs. one core: `T₁ / (p · T_p)` with
/// `T₁ = γ·F` (no communication on one core).
pub fn efficiency(serial_time: f64, p: u64, parallel_time: f64) -> f64 {
    serial_time / (p as f64 * parallel_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP: ModelParams = ModelParams {
        alpha: 1e-6,
        beta: 5e-8,
        gamma: 4e-8,
    };

    #[test]
    fn replication_helps_in_comm_dominated_regime() {
        // Small n, large p: communication dominates; Eq. 5 predicts
        // monotone improvement with c (the ideal-collectives regime of
        // Fig. 2a).
        let (n, p) = (24_576, 6_144);
        let t1 = time_all_pairs(MP, n, p, 1);
        let t4 = time_all_pairs(MP, n, p, 4);
        let t16 = time_all_pairs(MP, n, p, 16);
        assert!(t4 < t1 && t16 < t4, "{t1} {t4} {t16}");
    }

    #[test]
    fn strong_scaling_efficiency_improves_with_c() {
        // Fig. 3's message: at large machine sizes, higher replication
        // keeps efficiency near 1 while c=1 collapses.
        let n = 196_608u64;
        let serial = MP.gamma * (n as f64) * (n as f64);
        let p = 24_576u64;
        let e1 = efficiency(serial, p, time_all_pairs(MP, n, p, 1));
        let e16 = efficiency(serial, p, time_all_pairs(MP, n, p, 16));
        assert!(e16 > e1, "e16={e16} e1={e1}");
        assert!(e16 > 0.8, "near-perfect scaling with the right c: {e16}");
        assert!(e1 < 0.7, "c=1 suffers at scale: {e1}");
    }

    #[test]
    fn efficiency_degrades_with_machine_size_for_fixed_c() {
        let n = 196_608u64;
        let serial = MP.gamma * (n as f64) * (n as f64);
        let e_small = efficiency(serial, 1536, time_all_pairs(MP, n, 1536, 1));
        let e_large = efficiency(serial, 24_576, time_all_pairs(MP, n, 24_576, 1));
        assert!(e_small > e_large);
    }

    #[test]
    fn cutoff_time_positive_and_improves_with_c() {
        let (n, p, m_frac) = (196_608u64, 24_576u64, 4u64);
        let t1 = {
            let teams = p;
            time_cutoff_1d(MP, n, p, 1, teams / m_frac)
        };
        let t4 = {
            let teams = p / 4;
            time_cutoff_1d(MP, n, p, 4, teams / m_frac)
        };
        assert!(t1 > 0.0 && t4 > 0.0);
        assert!(t4 < t1, "replication helps the cutoff algorithm too");
    }

    #[test]
    fn comm_time_is_linear_in_costs() {
        let c = CommCost {
            messages: 10.0,
            words: 1000.0,
        };
        let t = MP.comm_time(c);
        assert!((t - (10.0 * 1e-6 + 1000.0 * 5e-8)).abs() < 1e-18);
    }
}
