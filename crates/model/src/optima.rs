//! Closed-form analysis of the replication optimum and the machine-size
//! crossover — the quantitative version of the paper's §V observation that
//! `c` "should be treated as a tuning parameter".
//!
//! The all-pairs communication time under a saturating-collective machine
//! model is
//!
//! ```text
//! T(c) = α·p/c² + β·n/c + κ·(c·n/p)·√c
//!        shifts    shift    reduce (saturation)
//!        (latency) (words)
//! ```
//!
//! The first two terms fall with `c` (the paper's `c²`/`c` gains); the
//! saturation term grows as `c^{3/2}`, producing the interior optimum of
//! Fig. 2.

/// Machine scalars for the closed-form optimum (seconds; words are
/// particles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    /// Seconds per point-to-point message.
    pub alpha: f64,
    /// Seconds per particle-word moved point-to-point.
    pub beta: f64,
    /// Reduce saturation: seconds per particle-word per √(team size).
    pub kappa: f64,
}

impl CommModel {
    /// All-pairs communication time at replication `c` (continuous).
    pub fn comm_time_all_pairs(&self, n: f64, p: f64, c: f64) -> f64 {
        assert!(c >= 1.0);
        self.alpha * p / (c * c) + self.beta * n / c + self.kappa * (c * n / p) * c.sqrt()
    }

    /// The continuous minimizer of [`Self::comm_time_all_pairs`] over
    /// `c ∈ [1, √p]`, found by golden-section search (the objective is
    /// unimodal: a sum of decreasing and increasing power laws).
    pub fn optimal_c_all_pairs(&self, n: f64, p: f64) -> f64 {
        let f = |c: f64| self.comm_time_all_pairs(n, p, c);
        golden_min(f, 1.0, p.sqrt())
    }

    /// The smallest power-of-two machine size at which replication `c = 2`
    /// beats `c = 1` for the given problem size; `None` if it never does
    /// below `p_max`. Locates the Fig. 3 crossover.
    pub fn replication_crossover(&self, n: f64, p_max: u64) -> Option<u64> {
        let mut p = 4u64;
        while p <= p_max {
            let pf = p as f64;
            if self.comm_time_all_pairs(n, pf, 2.0) < self.comm_time_all_pairs(n, pf, 1.0) {
                return Some(p);
            }
            p *= 2;
        }
        None
    }
}

/// Golden-section minimization of a unimodal function on `[lo, hi]`.
fn golden_min(f: impl Fn(f64) -> f64, lo: f64, hi: f64) -> f64 {
    assert!(hi >= lo);
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..200 {
        if (b - a).abs() < 1e-10 * hi.max(1.0) {
            break;
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    (a + b) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: CommModel = CommModel {
        alpha: 1.5e-6,
        beta: 52.0 * 3.0e-10,
        kappa: 52.0 * 5.0e-8,
    };

    #[test]
    fn golden_min_finds_parabola_vertex() {
        let x = golden_min(|x| (x - 3.7) * (x - 3.7), 0.0, 10.0);
        assert!((x - 3.7).abs() < 1e-6);
    }

    #[test]
    fn continuous_optimum_matches_discrete_sweep() {
        let (n, p) = (196_608.0, 24_576.0);
        let c_star = M.optimal_c_all_pairs(n, p);
        assert!(c_star > 1.0 && c_star < p.sqrt());
        // The discrete best power of two brackets the continuous optimum.
        let mut best = (1.0, f64::INFINITY);
        let mut c = 1.0;
        while c * c <= p {
            let t = M.comm_time_all_pairs(n, p, c);
            if t < best.1 {
                best = (c, t);
            }
            c *= 2.0;
        }
        assert!(
            best.0 / 2.0 <= c_star && c_star <= best.0 * 2.0,
            "continuous {c_star} vs discrete {}",
            best.0
        );
        // The optimum really is interior (the paper's tuning message).
        assert!(
            M.comm_time_all_pairs(n, p, c_star)
                < M.comm_time_all_pairs(n, p, 1.0).min(M.comm_time_all_pairs(n, p, p.sqrt()))
        );
    }

    #[test]
    fn optimum_grows_with_machine_size() {
        // Bigger machines shift more: the optimal replication rises.
        let n = 196_608.0;
        let c_small = M.optimal_c_all_pairs(n, 1_536.0);
        let c_large = M.optimal_c_all_pairs(n, 24_576.0);
        assert!(c_large > c_small, "{c_large} vs {c_small}");
    }

    #[test]
    fn no_saturation_pushes_optimum_to_max() {
        let ideal = CommModel { kappa: 0.0, ..M };
        let (n, p) = (196_608.0, 24_576.0);
        let c_star = ideal.optimal_c_all_pairs(n, p);
        assert!(
            c_star > 0.9 * p.sqrt(),
            "without saturation, maximize replication: c* = {c_star}, sqrt(p) = {}",
            p.sqrt()
        );
    }

    #[test]
    fn crossover_exists_and_moves_with_n() {
        // Larger problems are compute/bandwidth heavy: replication pays off
        // at larger machines only (latency term needs to dominate).
        let small = M.replication_crossover(16_384.0, 1 << 22).unwrap();
        let large = M.replication_crossover(1_048_576.0, 1 << 22).unwrap();
        assert!(small <= large, "{small} vs {large}");
        // And at the crossover, c=2 really wins.
        let pf = large as f64;
        assert!(M.comm_time_all_pairs(1_048_576.0, pf, 2.0) < M.comm_time_all_pairs(1_048_576.0, pf, 1.0));
    }

    #[test]
    fn comm_time_components_have_expected_monotonicity() {
        let (n, p) = (65_536.0, 4_096.0);
        // Doubling c: shift latency /4, shift words /2, reduce x ~2.8.
        let t1 = M.comm_time_all_pairs(n, p, 4.0);
        let t2 = M.comm_time_all_pairs(n, p, 8.0);
        // Sanity only: both positive, finite.
        assert!(t1 > 0.0 && t2 > 0.0 && t1.is_finite() && t2.is_finite());
    }
}
