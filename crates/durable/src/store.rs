//! Atomic persistence: temp-file + rename writes, latest-bundle discovery.

use std::fs;
use std::path::{Path, PathBuf};

use crate::bundle::{CheckpointBundle, CheckpointError};

fn io_err(path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// The on-disk name for the bundle at `step` (zero-padded so lexicographic
/// and numeric order agree).
pub fn checkpoint_path(dir: &Path, step: u64) -> PathBuf {
    dir.join(format!("ckpt-{step:08}.json"))
}

/// Atomically persist `bundle` into `dir` (created if absent): the text is
/// written to a `.tmp` sibling and renamed into place, so readers only ever
/// observe complete bundles. Returns the final path and the byte count.
pub fn write_atomic(dir: &Path, bundle: &CheckpointBundle) -> Result<(PathBuf, u64), CheckpointError> {
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let path = checkpoint_path(dir, bundle.step);
    let tmp = path.with_extension("json.tmp");
    let text = bundle.to_json_string();
    fs::write(&tmp, text.as_bytes()).map_err(|e| io_err(&tmp, e))?;
    fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    Ok((path, text.len() as u64))
}

/// Load and validate the bundle at `path`.
pub fn load_path(path: &Path) -> Result<CheckpointBundle, CheckpointError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    CheckpointBundle::from_json_str(&text)
}

/// Find the highest-step `ckpt-*.json` bundle in `dir` and load it.
/// Leftover `.tmp` files from an interrupted write are ignored.
pub fn load_latest(dir: &Path) -> Result<CheckpointBundle, CheckpointError> {
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let step = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok());
        if let Some(step) = step {
            if best.as_ref().is_none_or(|(s, _)| step > *s) {
                best = Some((step, entry.path()));
            }
        }
    }
    let (_, path) = best.ok_or_else(|| CheckpointError::NoCheckpoint {
        dir: dir.display().to_string(),
    })?;
    load_path(&path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::ColumnBlock;
    use nbody_physics::{Particle, Vec2};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nbody-durable-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn bundle_at(step: u64) -> CheckpointBundle {
        CheckpointBundle {
            fingerprint: "deadbeefdeadbeef".to_string(),
            step,
            seed: 7,
            blocks: vec![ColumnBlock {
                team: 0,
                particles: vec![Particle::at(step, Vec2::new(0.5, 0.5))],
            }],
        }
    }

    #[test]
    fn write_then_load_latest_picks_highest_step() {
        let dir = tmp_dir("latest");
        for step in [1u64, 12, 7] {
            write_atomic(&dir, &bundle_at(step)).unwrap();
        }
        // A stale temp file from a torn write must not confuse discovery.
        fs::write(dir.join("ckpt-00000099.json.tmp"), b"{garbage").unwrap();
        let got = load_latest(&dir).unwrap();
        assert_eq!(got.step, 12);
        assert_eq!(got, bundle_at(12));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_reports_no_checkpoint() {
        let dir = tmp_dir("empty");
        fs::create_dir_all(&dir).unwrap();
        match load_latest(&dir) {
            Err(CheckpointError::NoCheckpoint { .. }) => {}
            other => panic!("expected NoCheckpoint, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_an_io_error() {
        let dir = tmp_dir("missing");
        match load_latest(&dir) {
            Err(CheckpointError::Io { .. }) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_file_on_disk_is_rejected() {
        let dir = tmp_dir("corrupt");
        let (path, bytes) = write_atomic(&dir, &bundle_at(3)).unwrap();
        assert!(bytes > 0);
        let mut text = fs::read_to_string(&path).unwrap();
        text.truncate(text.len() / 3);
        fs::write(&path, text).unwrap();
        match load_latest(&dir) {
            Err(CheckpointError::Parse { .. }) => {}
            other => panic!("expected Parse, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
