//! The `nbody-checkpoint/v1` bundle: schema, checksum, and fingerprint.

use std::fmt;

use nbody_physics::{Particle, Vec2};
use nbody_trace::Json;

/// Schema identifier carried by every bundle this crate writes.
pub const SCHEMA: &str = "nbody-checkpoint/v1";

/// Structured reasons a checkpoint bundle can fail to load or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error text.
        detail: String,
    },
    /// The file is not well-formed bundle JSON (truncation lands here).
    Parse {
        /// What the parser objected to.
        detail: String,
    },
    /// The file parsed but declares a schema this crate does not speak.
    BadSchema {
        /// The schema string found in the file.
        found: String,
    },
    /// A required bundle field is missing or has the wrong type.
    MissingField {
        /// The field name.
        field: &'static str,
    },
    /// The payload does not hash to the recorded checksum (bit rot or a
    /// hand-edited bundle).
    ChecksumMismatch {
        /// Checksum recorded in the file.
        recorded: String,
        /// Checksum computed from the payload.
        computed: String,
    },
    /// The bundle was written by a differently-configured run.
    FingerprintMismatch {
        /// Fingerprint of the run attempting the resume.
        expected: String,
        /// Fingerprint recorded in the bundle.
        found: String,
    },
    /// The directory holds no checkpoint bundles at all.
    NoCheckpoint {
        /// The directory scanned.
        dir: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => {
                write!(f, "checkpoint io error at {path}: {detail}")
            }
            CheckpointError::Parse { detail } => {
                write!(f, "checkpoint bundle is not valid (truncated or corrupt): {detail}")
            }
            CheckpointError::BadSchema { found } => {
                write!(f, "checkpoint schema {found:?} is not {SCHEMA:?}")
            }
            CheckpointError::MissingField { field } => {
                write!(f, "checkpoint bundle is missing required field {field:?}")
            }
            CheckpointError::ChecksumMismatch { recorded, computed } => write!(
                f,
                "checkpoint checksum mismatch: file records {recorded}, payload hashes to {computed}"
            ),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint was written by a different run configuration: \
                 expected fingerprint {expected}, bundle has {found}"
            ),
            CheckpointError::NoCheckpoint { dir } => {
                write!(f, "no checkpoint bundle found in {dir}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a over a byte string. Same rationale as the netsim `FastHasher`:
/// keys are under our control and the goal is corruption detection, not
/// adversarial collision resistance. Public so the numerical-health layer
/// (`nbody-simhealth`) builds its replica state fingerprints from the same
/// hash the checkpoint checksums use.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hex_of_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn f64_of_hex(s: &str) -> Result<f64, CheckpointError> {
    if s.len() != 16 {
        return Err(CheckpointError::Parse {
            detail: format!("f64 bit pattern {s:?} is not 16 hex digits"),
        });
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError::Parse {
            detail: format!("f64 bit pattern {s:?} is not 16 hex digits"),
        })
}

/// The run-configuration facts that must match for restored state to be
/// meaningful. Hashed into a short digest stored in every bundle and
/// re-derived (from CLI flags) on resume.
#[derive(Debug, Clone, PartialEq)]
pub struct RunFingerprint {
    /// Particle count the run started with.
    pub n: usize,
    /// Rank count.
    pub p: usize,
    /// Replication factor.
    pub c: usize,
    /// Method name (CLI spelling, e.g. `ca` or `ca-cutoff-1d`).
    pub method: String,
    /// Force-law name.
    pub law: String,
    /// Boundary-condition name.
    pub boundary: String,
    /// Timestep size.
    pub dt: f64,
    /// Total steps the run is configured for.
    pub steps: usize,
    /// Initialization seed.
    pub seed: u64,
    /// Cutoff radius (0.0 for all-pairs methods).
    pub cutoff: f64,
    /// Domain extent as `[min_x, min_y, max_x, max_y]`.
    pub domain: [f64; 4],
}

impl RunFingerprint {
    /// The 16-hex-digit digest stored in (and checked against) bundles.
    pub fn digest(&self) -> String {
        let canonical = format!(
            "n={};p={};c={};method={};law={};boundary={};dt={};steps={};seed={};cutoff={};domain={},{},{},{}",
            self.n,
            self.p,
            self.c,
            self.method,
            self.law,
            self.boundary,
            hex_of_f64(self.dt),
            self.steps,
            self.seed,
            hex_of_f64(self.cutoff),
            hex_of_f64(self.domain[0]),
            hex_of_f64(self.domain[1]),
            hex_of_f64(self.domain[2]),
            hex_of_f64(self.domain[3]),
        );
        format!("{:016x}", fnv1a(canonical.as_bytes()))
    }
}

/// One column (team) of particles as owned by its leader at a timestep
/// boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBlock {
    /// The team (grid column) index the block belongs to.
    pub team: usize,
    /// The team's particles, in the leader's storage order.
    pub particles: Vec<Particle>,
}

/// A full `nbody-checkpoint/v1` bundle: everything needed to continue a
/// run from a timestep boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointBundle {
    /// [`RunFingerprint::digest`] of the writing run's configuration.
    pub fingerprint: String,
    /// Completed timesteps at the moment of the checkpoint; a resume
    /// continues with step `step`.
    pub step: u64,
    /// Initialization seed of the writing run (schedule/RNG state — the
    /// run's only random input, so recording it pins the whole schedule).
    pub seed: u64,
    /// Per-column particle blocks.
    pub blocks: Vec<ColumnBlock>,
}

fn vec2_json(v: Vec2) -> Json {
    Json::Arr(vec![Json::Str(hex_of_f64(v.x)), Json::Str(hex_of_f64(v.y))])
}

fn particle_json(p: &Particle) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::Str(p.id.to_string())),
        ("pos".to_string(), vec2_json(p.pos)),
        ("vel".to_string(), vec2_json(p.vel)),
        ("force".to_string(), vec2_json(p.force)),
        ("mass".to_string(), Json::Str(hex_of_f64(p.mass))),
    ])
}

fn vec2_of_json(v: Option<&Json>, field: &'static str) -> Result<Vec2, CheckpointError> {
    let parts = v
        .and_then(Json::as_array)
        .ok_or(CheckpointError::MissingField { field })?;
    if parts.len() != 2 {
        return Err(CheckpointError::MissingField { field });
    }
    let x = f64_of_hex(parts[0].as_str().ok_or(CheckpointError::MissingField { field })?)?;
    let y = f64_of_hex(parts[1].as_str().ok_or(CheckpointError::MissingField { field })?)?;
    Ok(Vec2::new(x, y))
}

fn particle_of_json(v: &Json) -> Result<Particle, CheckpointError> {
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or(CheckpointError::MissingField { field: "id" })?;
    let mass = f64_of_hex(
        v.get("mass")
            .and_then(Json::as_str)
            .ok_or(CheckpointError::MissingField { field: "mass" })?,
    )?;
    Ok(Particle {
        pos: vec2_of_json(v.get("pos"), "pos")?,
        vel: vec2_of_json(v.get("vel"), "vel")?,
        force: vec2_of_json(v.get("force"), "force")?,
        mass,
        id,
    })
}

impl CheckpointBundle {
    // The canonical payload (everything except the checksum). Both the
    // writer and the loader serialize through this one builder, so the
    // checksum is always computed over identical bytes.
    fn payload_json(&self) -> Json {
        let blocks = self
            .blocks
            .iter()
            .map(|b| {
                Json::Obj(vec![
                    ("team".to_string(), Json::Num(b.team as f64)),
                    (
                        "particles".to_string(),
                        Json::Arr(b.particles.iter().map(particle_json).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("fingerprint".to_string(), Json::Str(self.fingerprint.clone())),
            // u64 counters travel as decimal strings: Json numbers are f64
            // and cannot hold every u64 exactly.
            ("step".to_string(), Json::Str(self.step.to_string())),
            ("seed".to_string(), Json::Str(self.seed.to_string())),
            ("blocks".to_string(), Json::Arr(blocks)),
        ])
    }

    /// FNV-1a digest (16 hex digits) of the canonical payload text.
    pub fn checksum(&self) -> String {
        format!("{:016x}", fnv1a(self.payload_json().to_string().as_bytes()))
    }

    /// Serialize to the on-disk JSON form, checksum included.
    pub fn to_json_string(&self) -> String {
        let checksum = self.checksum();
        let mut members = match self.payload_json() {
            Json::Obj(m) => m,
            _ => unreachable!("payload is always an object"),
        };
        members.push(("checksum".to_string(), Json::Str(checksum)));
        Json::Obj(members).to_string()
    }

    /// Parse and validate a bundle: schema, required fields, checksum.
    pub fn from_json_str(text: &str) -> Result<CheckpointBundle, CheckpointError> {
        let v = Json::parse(text).map_err(|detail| CheckpointError::Parse { detail })?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or(CheckpointError::MissingField { field: "schema" })?;
        if schema != SCHEMA {
            return Err(CheckpointError::BadSchema {
                found: schema.to_string(),
            });
        }
        let fingerprint = v
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or(CheckpointError::MissingField { field: "fingerprint" })?
            .to_string();
        let step = v
            .get("step")
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or(CheckpointError::MissingField { field: "step" })?;
        let seed = v
            .get("seed")
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or(CheckpointError::MissingField { field: "seed" })?;
        let raw_blocks = v
            .get("blocks")
            .and_then(Json::as_array)
            .ok_or(CheckpointError::MissingField { field: "blocks" })?;
        let mut blocks = Vec::with_capacity(raw_blocks.len());
        for rb in raw_blocks {
            let team = rb
                .get("team")
                .and_then(Json::as_f64)
                .ok_or(CheckpointError::MissingField { field: "team" })? as usize;
            let raw_particles = rb
                .get("particles")
                .and_then(Json::as_array)
                .ok_or(CheckpointError::MissingField { field: "particles" })?;
            let particles = raw_particles
                .iter()
                .map(particle_of_json)
                .collect::<Result<Vec<_>, _>>()?;
            blocks.push(ColumnBlock { team, particles });
        }
        let recorded = v
            .get("checksum")
            .and_then(Json::as_str)
            .ok_or(CheckpointError::MissingField { field: "checksum" })?
            .to_string();
        let bundle = CheckpointBundle {
            fingerprint,
            step,
            seed,
            blocks,
        };
        let computed = bundle.checksum();
        if computed != recorded {
            return Err(CheckpointError::ChecksumMismatch { recorded, computed });
        }
        Ok(bundle)
    }

    /// Refuse the bundle unless it was written by a run with `expected`'s
    /// fingerprint digest.
    pub fn validate_fingerprint(&self, expected: &str) -> Result<(), CheckpointError> {
        if self.fingerprint != expected {
            return Err(CheckpointError::FingerprintMismatch {
                expected: expected.to_string(),
                found: self.fingerprint.clone(),
            });
        }
        Ok(())
    }

    /// All particles across blocks, sorted by id — the canonical full-state
    /// vector a resume re-decomposes from.
    pub fn all_particles(&self) -> Vec<Particle> {
        let mut out: Vec<Particle> = self
            .blocks
            .iter()
            .flat_map(|b| b.particles.iter().copied())
            .collect();
        out.sort_by_key(|q| q.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fingerprint() -> RunFingerprint {
        RunFingerprint {
            n: 64,
            p: 8,
            c: 2,
            method: "ca".to_string(),
            law: "gravity".to_string(),
            boundary: "reflective".to_string(),
            dt: 1e-3,
            steps: 10,
            seed: 42,
            cutoff: 0.0,
            domain: [0.0, 0.0, 1.0, 1.0],
        }
    }

    fn sample_bundle() -> CheckpointBundle {
        let mk = |id: u64| Particle {
            pos: Vec2::new(0.1 * id as f64, -0.25),
            vel: Vec2::new(f64::MIN_POSITIVE, 3.5e10),
            force: Vec2::new(-0.0, 1.0 / 3.0),
            mass: 1.5,
            id,
        };
        CheckpointBundle {
            fingerprint: fingerprint().digest(),
            step: 3,
            seed: 42,
            blocks: vec![
                ColumnBlock {
                    team: 0,
                    particles: vec![mk(0), mk(2)],
                },
                ColumnBlock {
                    team: 1,
                    particles: vec![mk(1), mk(3)],
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let b = sample_bundle();
        let text = b.to_json_string();
        let back = CheckpointBundle::from_json_str(&text).unwrap();
        assert_eq!(back, b);
        // -0.0 survives: PartialEq treats it as 0.0, so check bits too.
        assert_eq!(
            back.blocks[0].particles[0].force.x.to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn corrupt_payload_is_rejected_by_checksum() {
        let text = sample_bundle().to_json_string();
        // Flip one hex digit inside a bit pattern (still valid JSON).
        let needle = hex_of_f64(1.5);
        let tampered = text.replacen(&needle, &format!("{:016x}", 1.5f64.to_bits() ^ 1), 1);
        assert_ne!(text, tampered, "tampering found its target");
        match CheckpointBundle::from_json_str(&tampered) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_bundle_is_a_parse_error() {
        let text = sample_bundle().to_json_string();
        let truncated = &text[..text.len() / 2];
        match CheckpointBundle::from_json_str(truncated) {
            Err(CheckpointError::Parse { .. }) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn foreign_schema_is_rejected() {
        let text = sample_bundle()
            .to_json_string()
            .replace(SCHEMA, "nbody-checkpoint/v999");
        match CheckpointBundle::from_json_str(&text) {
            Err(CheckpointError::BadSchema { found }) => {
                assert_eq!(found, "nbody-checkpoint/v999");
            }
            other => panic!("expected bad schema, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_guards_resume() {
        let b = sample_bundle();
        b.validate_fingerprint(&fingerprint().digest()).unwrap();
        let mut other = fingerprint();
        other.dt = 2e-3;
        match b.validate_fingerprint(&other.digest()) {
            Err(CheckpointError::FingerprintMismatch { .. }) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_digest_is_sensitive_to_every_field() {
        let base = fingerprint().digest();
        let mut variants = Vec::new();
        let mut fp = fingerprint();
        fp.n = 65;
        variants.push(fp.digest());
        let mut fp = fingerprint();
        fp.method = "ca-cutoff-1d".to_string();
        variants.push(fp.digest());
        let mut fp = fingerprint();
        fp.seed = 43;
        variants.push(fp.digest());
        let mut fp = fingerprint();
        fp.domain[2] = 2.0;
        variants.push(fp.digest());
        for v in variants {
            assert_ne!(v, base);
        }
    }

    #[test]
    fn all_particles_concatenates_and_sorts() {
        let ids: Vec<u64> = sample_bundle().all_particles().iter().map(|q| q.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
