//! Durable checkpoint bundles for restartable N-body runs.
//!
//! PR 4's recovery layer keeps its checkpoints in memory: enough to retry a
//! force evaluation, useless against a process crash. This crate is the
//! third availability tier — a versioned, checksummed on-disk bundle
//! (`nbody-checkpoint/v1`) holding the full simulation state at a timestep
//! boundary, written atomically (temp file + rename) so a crash mid-write
//! can never leave a torn bundle in place of a good one.
//!
//! The format deliberately trades compactness for auditability: it is the
//! workspace's dependency-free JSON, with every `f64` carried as the hex
//! digits of its IEEE-754 bit pattern. Decimal formatting cannot round-trip
//! every double; bit-pattern hex can, so a restored run continues
//! *bit-identically* — the same property the in-memory recovery layer
//! guarantees, extended across a process boundary.
//!
//! A bundle is only as trustworthy as its match to the run that wrote it,
//! so each carries a [`RunFingerprint`] digest of the full run
//! configuration; [`CheckpointBundle::validate_fingerprint`] refuses to
//! restore state into a differently-configured run.

mod bundle;
mod store;

pub use bundle::{fnv1a, CheckpointBundle, CheckpointError, ColumnBlock, RunFingerprint, SCHEMA};
pub use store::{checkpoint_path, load_latest, load_path, write_atomic};
