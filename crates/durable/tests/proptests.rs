//! Property tests: a persisted bundle restores *bit-identical* state.
//!
//! Particles are built from arbitrary `u64` bit patterns (NaNs, infinities,
//! subnormals, negative zero included), so equality is asserted on the bit
//! patterns themselves — the strongest round-trip claim the format makes.

use nbody_durable::{CheckpointBundle, ColumnBlock};
use nbody_physics::{Particle, Vec2};
use proptest::prelude::*;

fn particle_from_bits(id: u64, bits: [u64; 7]) -> Particle {
    Particle {
        pos: Vec2::new(f64::from_bits(bits[0]), f64::from_bits(bits[1])),
        vel: Vec2::new(f64::from_bits(bits[2]), f64::from_bits(bits[3])),
        force: Vec2::new(f64::from_bits(bits[4]), f64::from_bits(bits[5])),
        mass: f64::from_bits(bits[6]),
        id,
    }
}

fn particle_bits(p: &Particle) -> [u64; 8] {
    [
        p.pos.x.to_bits(),
        p.pos.y.to_bits(),
        p.vel.x.to_bits(),
        p.vel.y.to_bits(),
        p.force.x.to_bits(),
        p.force.y.to_bits(),
        p.mass.to_bits(),
        p.id,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bundle_round_trip_restores_bit_identical_state(
        seed in any::<u64>(),
        step in any::<u64>(),
        raw in proptest::collection::vec(any::<u64>(), 7..70),
    ) {
        // Group the raw bit patterns into particles, 7 doubles apiece.
        let particles: Vec<Particle> = raw
            .chunks_exact(7)
            .enumerate()
            .map(|(i, w)| particle_from_bits(i as u64, w.try_into().unwrap()))
            .collect();
        let blocks: Vec<ColumnBlock> = particles
            .chunks(3)
            .enumerate()
            .map(|(team, chunk)| ColumnBlock { team, particles: chunk.to_vec() })
            .collect();
        let bundle = CheckpointBundle {
            fingerprint: format!("{seed:016x}"),
            step,
            seed,
            blocks,
        };

        let restored = CheckpointBundle::from_json_str(&bundle.to_json_string()).unwrap();

        prop_assert_eq!(restored.step, bundle.step);
        prop_assert_eq!(restored.seed, bundle.seed);
        prop_assert_eq!(&restored.fingerprint, &bundle.fingerprint);
        prop_assert_eq!(restored.blocks.len(), bundle.blocks.len());
        for (rb, wb) in restored.blocks.iter().zip(&bundle.blocks) {
            prop_assert_eq!(rb.team, wb.team);
            prop_assert_eq!(rb.particles.len(), wb.particles.len());
            for (rp, wp) in rb.particles.iter().zip(&wb.particles) {
                prop_assert_eq!(particle_bits(rp), particle_bits(wp));
            }
        }
    }
}
