//! The live observability endpoints: a dependency-free HTTP server.
//!
//! One background thread, blocking handlers, `Connection: close` — the
//! minimum HTTP/1.1 a Prometheus scraper (or `curl`) needs, and nothing
//! more. Four endpoints:
//!
//! * `/metrics` — the Prometheus text exposition of the latest published
//!   [`MetricsSnapshot`] ([`MetricsSnapshot::to_prometheus`]).
//! * `/timeseries` — the latest published [`RunTimeline`] as JSON (the
//!   `nbody-timeline/v1` schema — per-rank step samples + flight events).
//! * `/dashboard` — a self-contained HTML page with SVG sparklines and
//!   drift windows over the same timeline ([`render_dashboard`]); when a
//!   wire log has been published, it grows a channel-latency panel.
//! * `/wire` — the latest published wire-probe log as JSON (the
//!   `nbody-wireprobe/v1` schema — per-rank message events).
//! * `/health` — the numerical-health summary of the latest published
//!   timeline as JSON ([`HealthSummary`]): energy drift, momentum norm,
//!   sentinel and fingerprint-mismatch events with blame.
//! * `/healthz` — liveness probe (the *server*'s health, not the
//!   simulation's — that is `/health`).
//!
//! Non-`GET`/`HEAD` methods get `405 Method Not Allowed` with an `Allow`
//! header; unknown paths get 404. Callers [`publish`](MetricsServer::publish)
//! / [`publish_timeline`](MetricsServer::publish_timeline) whenever they
//! have fresh state, so the endpoints are views of the latest drained
//! registries, not second registries.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nbody_metrics::MetricsSnapshot;
use nbody_simhealth::HealthSummary;
use nbody_timeline::RunTimeline;
use nbody_wireprobe::{match_events, WireLog, WireReport};

use crate::dashboard::render_dashboard_with_wire;

/// How long the accept loop sleeps between polls when idle.
const POLL: Duration = Duration::from_millis(10);

/// Per-connection read/write deadline; a stalled scraper cannot wedge the
/// serving thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The bodies the server can answer with, refreshed by `publish*` calls.
///
/// The last-published timeline and wire report are kept alongside the
/// rendered strings so either `publish_timeline` or `publish_wire` can
/// re-render the dashboard with both halves present.
struct Bodies {
    metrics: String,
    timeseries: String,
    dashboard: String,
    wire: String,
    health: String,
    timeline: RunTimeline,
    wire_report: Option<WireReport>,
}

/// The running observability server. Dropping it stops the serving thread.
pub struct MetricsServer {
    addr: SocketAddr,
    bodies: Arc<Mutex<Bodies>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port) and
    /// start serving. The endpoints initially serve empty state.
    pub fn start<A: ToSocketAddrs>(addr: A) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let empty_tl = RunTimeline::from_ranks(Vec::new());
        let bodies = Arc::new(Mutex::new(Bodies {
            metrics: MetricsSnapshot::empty().to_prometheus(),
            timeseries: empty_tl.to_json().to_string(),
            dashboard: render_dashboard_with_wire(&empty_tl, None),
            wire: WireLog::default().to_json(),
            health: HealthSummary::from_timeline(&empty_tl).to_json(),
            timeline: empty_tl,
            wire_report: None,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let bodies = Arc::clone(&bodies);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("metrics-http".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let _ = handle_connection(stream, &bodies);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL);
                            }
                            Err(_) => std::thread::sleep(POLL),
                        }
                    }
                })?
        };
        Ok(MetricsServer {
            addr,
            bodies,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replace the served `/metrics` body with the Prometheus rendering of
    /// `snapshot`.
    pub fn publish(&self, snapshot: &MetricsSnapshot) {
        if let Ok(mut b) = self.bodies.lock() {
            b.metrics = snapshot.to_prometheus();
        }
    }

    /// Replace the served `/timeseries` JSON and `/dashboard` page with
    /// renderings of `timeline`. Any previously published wire report
    /// stays on the dashboard.
    pub fn publish_timeline(&self, timeline: &RunTimeline) {
        let json = timeline.to_json().to_string();
        let health = HealthSummary::from_timeline(timeline).to_json();
        if let Ok(mut b) = self.bodies.lock() {
            b.timeseries = json;
            b.health = health;
            b.dashboard = render_dashboard_with_wire(timeline, b.wire_report.as_ref());
            b.timeline = timeline.clone();
        }
    }

    /// Replace the served `/wire` JSON with `log` and re-render the
    /// `/dashboard` page so it grows the channel-latency panel derived
    /// from the matched send/recv pairs.
    pub fn publish_wire(&self, log: &WireLog) {
        let report = match_events(log);
        let json = log.to_json();
        if let Ok(mut b) = self.bodies.lock() {
            b.wire = json;
            b.dashboard = render_dashboard_with_wire(&b.timeline, Some(&report));
            b.wire_report = Some(report);
        }
    }

    /// Stop the serving thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serve one request on `stream`; see the module docs for the routes.
fn handle_connection(mut stream: TcpStream, bodies: &Arc<Mutex<Bodies>>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    // Read until the end of the request head (or the buffer limit — the
    // requests we answer have no meaningful body).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    // Method gate first: the resource may exist, but only reads are
    // supported — that is 405 + Allow, not 404.
    if method != "GET" && method != "HEAD" {
        let body = "method not allowed\n";
        write!(
            stream,
            "HTTP/1.1 405 Method Not Allowed\r\nAllow: GET, HEAD\r\n\
             Content-Type: text/plain\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )?;
        return stream.flush();
    }

    // Clone the body out so the lock is not held during the write.
    let (status, content_type, body) = {
        let b = bodies.lock().map_err(|_| std::io::ErrorKind::Other)?;
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                b.metrics.clone(),
            ),
            "/timeseries" => ("200 OK", "application/json", b.timeseries.clone()),
            "/wire" => ("200 OK", "application/json", b.wire.clone()),
            "/health" => ("200 OK", "application/json", b.health.clone()),
            "/dashboard" => (
                "200 OK",
                "text/html; charset=utf-8",
                b.dashboard.clone(),
            ),
            "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let payload = if method == "HEAD" { "" } else { body.as_str() };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_metrics::{MetricsRecorder, MetricsSnapshot};
    use nbody_timeline::{RankTimeline, StepSample};
    use nbody_trace::Phase;

    /// A snapshot with counters, a phase label, a gauge, and a histogram —
    /// enough shape to prove the scrape is lossless.
    fn sample_snapshot() -> MetricsSnapshot {
        let shards = (0..2)
            .map(|rank| {
                let rec = MetricsRecorder::for_rank(rank);
                rec.counter("comm_send_messages", Some(Phase::Shift))
                    .add(3 + rank as u64);
                rec.counter("compute_flops", None).add(12_345);
                rec.counter("compute_nanos", None).add(678);
                rec.gauge("mem_particles_hwm", None).record_max(42);
                rec.histogram("comm_send_bytes_hist", Some(Phase::Shift))
                    .observe(512);
                rec.finish()
            })
            .collect();
        MetricsSnapshot::from_shards(shards)
    }

    fn sample_timeline() -> RunTimeline {
        RunTimeline::from_ranks(vec![RankTimeline {
            rank: 0,
            stride: 1,
            samples: (0..4)
                .map(|step| StepSample {
                    step,
                    t_secs: step as f64 * 0.1,
                    dt_secs: 0.1,
                    send_bytes: 256,
                    coll_bytes: 32,
                    blocked_secs: 0.01,
                    flops: 1000,
                    compute_nanos: 900,
                    particles: 50,
                    ..StepSample::default()
                })
                .collect(),
            events: Vec::new(),
            dropped_events: 0,
            failure: None,
        }])
    }

    fn scrape(addr: SocketAddr, request: &str) -> (String, String) {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn http_scrape_round_trips_the_snapshot() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let snap = sample_snapshot();
        server.publish(&snap);

        // Raw TCP client, as the satellite demands: no HTTP library on
        // either side.
        let (head, body) = scrape(
            server.local_addr(),
            "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"));
        let advertised: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(advertised, body.len());

        // Lossless: parsing the scraped exposition reconstructs the
        // in-memory snapshot exactly.
        let parsed = MetricsSnapshot::parse_prometheus(&body).unwrap();
        assert_eq!(parsed, snap);

        // The new compute gauges are present in the exposition.
        assert!(body.contains("compute_flops"), "{body}");
        server.shutdown();
    }

    #[test]
    fn publish_replaces_the_served_body() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let (_, empty_body) = scrape(
            server.local_addr(),
            "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        let before = MetricsSnapshot::parse_prometheus(&empty_body).unwrap();
        assert!(before.is_empty(), "starts serving an empty snapshot");

        server.publish(&sample_snapshot());
        let (_, body) = scrape(
            server.local_addr(),
            "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(body.contains("comm_send_messages"));
    }

    #[test]
    fn unknown_paths_get_404_and_healthz_answers() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let (head, _) = scrape(
            server.local_addr(),
            "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, body) = scrape(
            server.local_addr(),
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");
    }

    #[test]
    fn non_get_methods_are_405_with_allow_header() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        for request in [
            "POST /metrics HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
            "DELETE /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
            "PUT /nope HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        ] {
            let (head, body) = scrape(server.local_addr(), request);
            assert!(head.starts_with("HTTP/1.1 405"), "{request}: {head}");
            assert!(head.contains("Allow: GET, HEAD"), "{head}");
            assert_eq!(body, "method not allowed\n");
        }
        // HEAD stays allowed: headers only, no payload.
        let (head, body) = scrape(
            server.local_addr(),
            "HEAD /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.is_empty());
    }

    #[test]
    fn timeseries_round_trips_the_timeline_as_json() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let tl = sample_timeline();
        server.publish_timeline(&tl);
        let (head, body) = scrape(
            server.local_addr(),
            "GET /timeseries HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("Content-Type: application/json"));
        let parsed = RunTimeline::parse(&body).expect("served JSON parses back");
        assert_eq!(parsed.ranks.len(), 1);
        assert_eq!(parsed.ranks[0].samples.len(), 4);
        assert_eq!(parsed.ranks[0].samples[2].send_bytes, 256);
    }

    #[test]
    fn wire_endpoint_round_trips_the_log_and_feeds_the_dashboard() {
        use nbody_wireprobe::{MsgEvent, ProbeKind, RankWireLog};
        let ev = |kind, t: f64| MsgEvent {
            kind,
            src: 0,
            dst: 1,
            comm: 0,
            tag: 0x3000,
            phase: Phase::Shift,
            count: 4,
            bytes: 224,
            t_secs: t,
            step: None,
        };
        let log = WireLog::from_ranks(vec![RankWireLog {
            rank: 0,
            events: vec![ev(ProbeKind::Send, 0.000), ev(ProbeKind::Recv, 0.002)],
            dropped_events: 0,
        }]);

        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        server.publish_timeline(&sample_timeline());
        server.publish_wire(&log);

        // /wire serves the log JSON losslessly.
        let (head, body) = scrape(
            server.local_addr(),
            "GET /wire HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("Content-Type: application/json"));
        let parsed = WireLog::parse(&body).expect("served wire JSON parses back");
        assert_eq!(parsed, log);

        // The dashboard gained the channel-latency panel, and a later
        // timeline publish keeps it.
        let dash = "GET /dashboard HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (_, body) = scrape(server.local_addr(), dash);
        assert!(body.contains("channel latency (wire probes)"), "{body}");
        server.publish_timeline(&sample_timeline());
        let (_, body) = scrape(server.local_addr(), dash);
        assert!(body.contains("channel latency (wire probes)"), "{body}");
        server.shutdown();
    }

    #[test]
    fn health_endpoint_serves_the_summary_of_the_latest_timeline() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let req = "GET /health HTTP/1.1\r\nConnection: close\r\n\r\n";

        // Before any publish: an unmeasured summary, still valid JSON.
        let (head, body) = scrape(server.local_addr(), req);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("Content-Type: application/json"));
        assert!(body.contains("\"measured_steps\":0"), "{body}");

        // A health-instrumented timeline flips the summary to measured.
        let mut tl = sample_timeline();
        for s in &mut tl.ranks[0].samples {
            s.energy = -0.5;
            s.momentum = 2e-14;
        }
        server.publish_timeline(&tl);
        let (_, body) = scrape(server.local_addr(), req);
        assert!(body.contains("\"measured_steps\":4"), "{body}");
        assert!(body.contains("\"clean\":true"), "{body}");
        server.shutdown();
    }

    #[test]
    fn dashboard_serves_the_inline_html_page() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        server.publish_timeline(&sample_timeline());
        let (head, body) = scrape(
            server.local_addr(),
            "GET /dashboard HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("Content-Type: text/html"));
        assert!(body.starts_with("<!doctype html>"));
        assert!(body.contains("<svg"), "sparklines present");
    }
}
