//! The live `/metrics` endpoint: a dependency-free HTTP server.
//!
//! One background thread, blocking handlers, `Connection: close` — the
//! minimum HTTP/1.1 a Prometheus scraper (or `curl`) needs, and nothing
//! more. The served body is the text exposition the existing exporter
//! already produces ([`MetricsSnapshot::to_prometheus`]); callers
//! [`publish`](MetricsServer::publish) a snapshot whenever they have a
//! fresh one, so the endpoint is a view of the latest drained registry
//! state, not a second registry. This is the first concrete step toward
//! the ROADMAP's simulation-as-a-service direction.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nbody_metrics::MetricsSnapshot;

/// How long the accept loop sleeps between polls when idle.
const POLL: Duration = Duration::from_millis(10);

/// Per-connection read/write deadline; a stalled scraper cannot wedge the
/// serving thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The running `/metrics` server. Dropping it stops the serving thread.
pub struct MetricsServer {
    addr: SocketAddr,
    body: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port) and
    /// start serving. The endpoint initially serves an empty snapshot.
    pub fn start<A: ToSocketAddrs>(addr: A) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let body = Arc::new(Mutex::new(MetricsSnapshot::empty().to_prometheus()));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let body = Arc::clone(&body);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("metrics-http".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                // Render outside the lock, serve blocking.
                                let text = body.lock().map(|b| b.clone()).unwrap_or_default();
                                let _ = handle_connection(stream, &text);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL);
                            }
                            Err(_) => std::thread::sleep(POLL),
                        }
                    }
                })?
        };
        Ok(MetricsServer {
            addr,
            body,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replace the served body with the Prometheus rendering of
    /// `snapshot`.
    pub fn publish(&self, snapshot: &MetricsSnapshot) {
        if let Ok(mut b) = self.body.lock() {
            *b = snapshot.to_prometheus();
        }
    }

    /// Stop the serving thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serve one request on `stream`: `/metrics` gets the Prometheus text,
/// `/healthz` a liveness probe, anything else a 404.
fn handle_connection(mut stream: TcpStream, metrics_body: &str) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    // Read until the end of the request head (or the buffer limit — the
    // requests we answer have no meaningful body).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") | ("HEAD", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            metrics_body,
        ),
        ("GET", "/healthz") | ("HEAD", "/healthz") => ("200 OK", "text/plain", "ok\n"),
        _ => ("404 Not Found", "text/plain", "not found\n"),
    };
    let payload = if method == "HEAD" { "" } else { body };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_metrics::{MetricsRecorder, MetricsSnapshot};
    use nbody_trace::Phase;

    /// A snapshot with counters, a phase label, a gauge, and a histogram —
    /// enough shape to prove the scrape is lossless.
    fn sample_snapshot() -> MetricsSnapshot {
        let shards = (0..2)
            .map(|rank| {
                let rec = MetricsRecorder::for_rank(rank);
                rec.counter("comm_send_messages", Some(Phase::Shift))
                    .add(3 + rank as u64);
                rec.counter("compute_flops", None).add(12_345);
                rec.counter("compute_nanos", None).add(678);
                rec.gauge("mem_particles_hwm", None).record_max(42);
                rec.histogram("comm_send_bytes_hist", Some(Phase::Shift))
                    .observe(512);
                rec.finish()
            })
            .collect();
        MetricsSnapshot::from_shards(shards)
    }

    fn scrape(addr: SocketAddr, request: &str) -> (String, String) {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn http_scrape_round_trips_the_snapshot() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let snap = sample_snapshot();
        server.publish(&snap);

        // Raw TCP client, as the satellite demands: no HTTP library on
        // either side.
        let (head, body) = scrape(
            server.local_addr(),
            "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"));
        let advertised: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(advertised, body.len());

        // Lossless: parsing the scraped exposition reconstructs the
        // in-memory snapshot exactly.
        let parsed = MetricsSnapshot::parse_prometheus(&body).unwrap();
        assert_eq!(parsed, snap);

        // The new compute gauges are present in the exposition.
        assert!(body.contains("compute_flops"), "{body}");
        server.shutdown();
    }

    #[test]
    fn publish_replaces_the_served_body() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let (_, empty_body) = scrape(
            server.local_addr(),
            "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        let before = MetricsSnapshot::parse_prometheus(&empty_body).unwrap();
        assert!(before.is_empty(), "starts serving an empty snapshot");

        server.publish(&sample_snapshot());
        let (_, body) = scrape(
            server.local_addr(),
            "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(body.contains("comm_send_messages"));
    }

    #[test]
    fn unknown_paths_get_404_and_healthz_answers() {
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let (head, _) = scrape(
            server.local_addr(),
            "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, body) = scrape(
            server.local_addr(),
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");
    }
}
