//! # nbody-perfmon
//!
//! Compute-side observability for the reproduction of *"A
//! Communication-Optimal N-Body Algorithm for Direct Interactions"*
//! (IPDPS 2013).
//!
//! The paper (and the `audit` subcommand) bound *communication*; this crate
//! supplies the matching yardstick for *compute*, in the hardware-efficiency
//! style of Harfst et al.'s direct N-body performance analysis: count
//! interactions, convert to FLOPs, and compare against measured machine
//! peaks.
//!
//! * [`calibrate`] — seedable microbenchmarks measuring the machine's
//!   scalar FMA peak (GFLOP/s) and stream-style memory bandwidth (GB/s),
//!   persisted to `bench_results/machine_calibration.json` so CI gates
//!   compare against a recorded calibration instead of re-measuring on a
//!   noisy runner.
//! * [`roofline`] — joins the `compute_*` counters a metered run records
//!   (see `ca_nbody::kernel::ComputeMeter`) with a calibration into
//!   per-rank roofline points: achieved GFLOP/s, arithmetic intensity,
//!   and %-of-roofline, with table/CSV/JSON renderings and the CI gate.
//! * [`serve`] — a dependency-free single-threaded HTTP server exposing
//!   the Prometheus exporter as a live `/metrics` endpoint
//!   (`ca-nbody run --serve-metrics=<addr>`), plus the `/timeseries` JSON
//!   and `/dashboard` HTML views of the per-step run timeline.
//! * [`dashboard`] — the self-contained HTML + SVG sparkline rendering
//!   behind `/dashboard`.

#![warn(missing_docs)]

pub mod calibrate;
pub mod dashboard;
pub mod roofline;
pub mod serve;

pub use calibrate::{CalibrationConfig, MachineCalibration};
pub use roofline::{
    kernel_compute, roofline, roofline_csv, roofline_json, roofline_table, KernelCompute,
    RooflineGate, RooflinePoint, RooflineReport,
};
pub use dashboard::render_dashboard;
pub use serve::MetricsServer;
