//! The live dashboard: dependency-free inline HTML + SVG sparklines.
//!
//! [`render_dashboard`] turns a [`RunTimeline`] into a single
//! self-contained HTML page — no external scripts, stylesheets, or fonts,
//! so the `/dashboard` endpoint works from `curl ... > d.html && open
//! d.html` on an air-gapped machine. Each tracked metric gets an SVG
//! polyline sparkline; drift windows flagged by the online detector are
//! listed beneath, and a postmortem banner appears when the timeline
//! carries a failure.

use nbody_simhealth::HealthSummary;
use nbody_timeline::{DriftConfig, DriftWindow, MetricSeries, RunTimeline};
use nbody_wireprobe::WireReport;

/// Sparkline viewport in CSS pixels.
const SPARK_W: f64 = 560.0;
const SPARK_H: f64 = 64.0;

/// Most channels shown in the latency panel (slowest first).
const WIRE_PANEL_ROWS: usize = 24;

/// Render `tl` as a self-contained HTML dashboard page.
pub fn render_dashboard(tl: &RunTimeline) -> String {
    render_dashboard_with_wire(tl, None)
}

/// [`render_dashboard`] with an optional channel-latency panel from a
/// probed run's matched wire report.
pub fn render_dashboard_with_wire(tl: &RunTimeline, wire: Option<&WireReport>) -> String {
    let mut out = String::with_capacity(8 * 1024);
    out.push_str(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\
         <title>ca-nbody dashboard</title>\n<style>\n\
         body{font-family:monospace;margin:2em;background:#fafafa;color:#222}\n\
         h1{font-size:1.3em} h2{font-size:1.05em;margin-bottom:0.2em}\n\
         .failure{background:#fee;border:1px solid #c00;padding:0.6em;margin:1em 0}\n\
         .spark{background:#fff;border:1px solid #ccc}\n\
         .meta{color:#666;font-size:0.85em}\n\
         table{border-collapse:collapse;margin:0.5em 0}\n\
         td,th{border:1px solid #ccc;padding:0.2em 0.6em;text-align:left}\n\
         </style></head><body>\n<h1>ca-nbody run dashboard</h1>\n",
    );
    out.push_str(&format!(
        "<p class=\"meta\">{} ranks &middot; {} step samples &middot; refresh to update</p>\n",
        tl.ranks.len(),
        tl.ranks.iter().map(|r| r.samples.len()).sum::<usize>(),
    ));
    if let Some(reason) = &tl.failure {
        out.push_str(&format!(
            "<div class=\"failure\"><b>POSTMORTEM</b>: {}</div>\n",
            escape_html(reason)
        ));
    }

    for series in [
        mean_series(tl, "send bytes / step", |s| s.send_bytes as f64),
        mean_series(tl, "collective bytes / step", |s| s.coll_bytes as f64),
        mean_series(tl, "flops / step", |s| s.flops as f64),
        tl.comm_fraction_series(),
        tl.imbalance_series(),
    ] {
        render_section(&mut out, &series);
    }

    let drift = tl.drift(&DriftConfig::default());
    out.push_str("<h2>drift windows</h2>\n");
    if drift.is_empty() {
        out.push_str("<p class=\"meta\">none flagged</p>\n");
    } else {
        out.push_str(
            "<table><tr><th>metric</th><th>steps</th><th>baseline</th><th>peak</th></tr>\n",
        );
        for w in &drift {
            out.push_str(&render_drift_row(w));
        }
        out.push_str("</table>\n");
    }

    render_health_panel(&mut out, tl);

    if let Some(report) = wire {
        render_wire_panel(&mut out, report);
    }

    render_recent_events(&mut out, tl);
    out.push_str("</body></html>\n");
    out
}

/// The numerical-health panel: verdict, total-energy sparkline, and any
/// sentinel / fingerprint-mismatch events from a health-instrumented run.
fn render_health_panel(out: &mut String, tl: &RunTimeline) {
    let h = HealthSummary::from_timeline(tl);
    out.push_str("<h2>numerical health</h2>\n");
    if h.measured_steps == 0 && h.non_finite.is_empty() && h.mismatches.is_empty() {
        out.push_str(
            "<p class=\"meta\">not instrumented &mdash; run with <code>--health</code> \
             to record conservation monitors</p>\n",
        );
        return;
    }
    let (verdict, color) = if h.is_clean() {
        ("HEALTHY", "#090")
    } else {
        ("UNHEALTHY", "#c00")
    };
    out.push_str(&format!(
        "<p><b style=\"color:{color}\">{verdict}</b> &middot; {} checked steps &middot; \
         max |&Delta;E/E&#8320;| {:.3e} &middot; max |p| {:.3e}</p>\n",
        h.measured_steps, h.max_rel_energy_drift, h.max_momentum_norm,
    ));
    let energy = tl.energy_series();
    if !energy.values.is_empty() {
        out.push_str(&format!(
            "<p class=\"meta\">total energy: first {:.6e} &middot; last {:.6e}</p>\n",
            h.energy_first, h.energy_last
        ));
        out.push_str(&sparkline_svg(&energy.values));
    }
    if !h.energy_drift_windows.is_empty() {
        out.push_str(&format!(
            "<p class=\"meta\">energy drift flagged at step(s) {:?}</p>\n",
            h.energy_drift_windows
        ));
    }
    let blamed = [
        ("non-finite", &h.non_finite),
        ("replica mismatch", &h.mismatches),
    ];
    if blamed.iter().any(|(_, v)| !v.is_empty()) {
        out.push_str(
            "<table><tr><th>kind</th><th>rank</th><th>step</th><th>detail</th></tr>\n",
        );
        for (kind, events) in blamed {
            for (rank, step, detail) in events {
                out.push_str(&format!(
                    "<tr><td>{kind}</td><td>{rank}</td><td>{}</td><td>{}</td></tr>\n",
                    step.map_or(String::new(), |s| s.to_string()),
                    escape_html(detail)
                ));
            }
        }
        out.push_str("</table>\n");
    }
}

/// The channel-latency panel: per-channel send→recv latency percentiles
/// from the wire probes, slowest mean first.
fn render_wire_panel(out: &mut String, report: &WireReport) {
    out.push_str("<h2>channel latency (wire probes)</h2>\n");
    out.push_str(&format!(
        "<p class=\"meta\">{} sends &middot; {} matched pairs &middot; \
         {} channels &middot; {} fault events</p>\n",
        report.total_sends,
        report.matched,
        report.channels.len(),
        report.fault_events,
    ));
    if report.saturated() {
        out.push_str(&format!(
            "<div class=\"failure\"><b>probe rings overflowed</b>: {} events \
             evicted; latencies are lower bounds</div>\n",
            report.dropped_probe_events
        ));
    }
    if report.channels.is_empty() {
        out.push_str("<p class=\"meta\">no probed traffic</p>\n");
        return;
    }
    let mut chans: Vec<_> = report.channels.iter().collect();
    chans.sort_by(|a, b| b.latency.mean_s.total_cmp(&a.latency.mean_s));
    out.push_str(
        "<table><tr><th>channel</th><th>phase</th><th>sends</th>\
         <th>mean &micro;s</th><th>p50 &micro;s</th><th>p90 &micro;s</th>\
         <th>max &micro;s</th><th>depth</th><th>unmatched</th></tr>\n",
    );
    for ch in chans.iter().take(WIRE_PANEL_ROWS) {
        out.push_str(&format!(
            "<tr><td>{} &rarr; {}</td><td>{}</td><td>{}</td><td>{:.1}</td>\
             <td>{:.1}</td><td>{:.1}</td><td>{:.1}</td><td>{}</td><td>{}</td></tr>\n",
            ch.src,
            ch.dst,
            ch.phase.label(),
            ch.sends,
            ch.latency.mean_s * 1e6,
            ch.latency.p50_s * 1e6,
            ch.latency.p90_s * 1e6,
            ch.latency.max_s * 1e6,
            ch.max_in_flight,
            ch.unmatched_sends + ch.unmatched_recvs,
        ));
    }
    out.push_str("</table>\n");
    if report.channels.len() > WIRE_PANEL_ROWS {
        out.push_str(&format!(
            "<p class=\"meta\">{} more channel(s) not shown</p>\n",
            report.channels.len() - WIRE_PANEL_ROWS
        ));
    }
}

/// Mean of one sample field across ranks, per step.
fn mean_series(
    tl: &RunTimeline,
    name: &str,
    field: impl Fn(&nbody_timeline::StepSample) -> f64,
) -> MetricSeries {
    let mut steps: Vec<u32> = tl
        .ranks
        .iter()
        .flat_map(|r| r.samples.iter().map(|s| s.step))
        .collect();
    steps.sort_unstable();
    steps.dedup();
    let values = steps
        .iter()
        .map(|&step| {
            let mut sum = 0.0;
            let mut n = 0usize;
            for r in &tl.ranks {
                for s in &r.samples {
                    if s.step == step {
                        sum += field(s);
                        n += 1;
                    }
                }
            }
            if n == 0 { 0.0 } else { sum / n as f64 }
        })
        .collect();
    MetricSeries {
        metric: name.to_string(),
        steps,
        values,
    }
}

fn render_section(out: &mut String, series: &MetricSeries) {
    out.push_str(&format!("<h2>{}</h2>\n", escape_html(&series.metric)));
    if series.values.is_empty() {
        out.push_str("<p class=\"meta\">no samples</p>\n");
        return;
    }
    let last = series.values.last().copied().unwrap_or(0.0);
    let max = series.values.iter().copied().fold(f64::MIN, f64::max);
    out.push_str(&format!(
        "<p class=\"meta\">last {last:.3e} &middot; max {max:.3e} &middot; {} points</p>\n",
        series.values.len()
    ));
    out.push_str(&sparkline_svg(&series.values));
}

/// An SVG polyline over `values`, y-scaled to the data range.
fn sparkline_svg(values: &[f64]) -> String {
    let min = values.iter().copied().fold(f64::MAX, f64::min);
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    let span = if (max - min).abs() < f64::EPSILON {
        1.0
    } else {
        max - min
    };
    let n = values.len().max(2) as f64 - 1.0;
    let pts: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let x = i as f64 / n * (SPARK_W - 4.0) + 2.0;
            let y = SPARK_H - 4.0 - (v - min) / span * (SPARK_H - 8.0);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    format!(
        "<svg class=\"spark\" width=\"{SPARK_W}\" height=\"{SPARK_H}\" \
         viewBox=\"0 0 {SPARK_W} {SPARK_H}\" xmlns=\"http://www.w3.org/2000/svg\">\
         <polyline fill=\"none\" stroke=\"#0074d9\" stroke-width=\"1.5\" \
         points=\"{}\"/></svg>\n",
        pts.join(" ")
    )
}

fn render_drift_row(w: &DriftWindow) -> String {
    format!(
        "<tr><td>{}</td><td>{}&ndash;{}</td><td>{:.3e}</td><td>{:.3e}</td></tr>\n",
        escape_html(&w.metric),
        w.start_step,
        w.end_step,
        w.baseline,
        w.peak
    )
}

/// The last few flight-ring events across ranks, newest last.
fn render_recent_events(out: &mut String, tl: &RunTimeline) {
    let mut events: Vec<(u32, &nbody_timeline::FlightEvent)> = tl
        .ranks
        .iter()
        .flat_map(|r| r.events.iter().map(move |e| (r.rank, e)))
        .collect();
    events.sort_by(|a, b| a.1.t_secs.total_cmp(&b.1.t_secs));
    let tail = events.len().saturating_sub(16);
    out.push_str("<h2>recent events</h2>\n");
    if events.is_empty() {
        out.push_str("<p class=\"meta\">none recorded</p>\n");
        return;
    }
    out.push_str("<table><tr><th>t (s)</th><th>rank</th><th>kind</th><th>step</th><th>detail</th></tr>\n");
    for (rank, e) in &events[tail..] {
        out.push_str(&format!(
            "<tr><td>{:.4}</td><td>{rank}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            e.t_secs,
            e.kind.label(),
            e.step.map_or(String::new(), |s| s.to_string()),
            escape_html(&e.detail)
        ));
    }
    out.push_str("</table>\n");
}

fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_timeline::{EventKind, RankTimeline, StepSample};

    fn timeline() -> RunTimeline {
        let ranks = (0..2)
            .map(|rank| RankTimeline {
                rank,
                stride: 1,
                samples: (0..20)
                    .map(|step| StepSample {
                        step,
                        t_secs: step as f64 * 0.01,
                        dt_secs: 0.01,
                        send_bytes: 1000 + step as u64,
                        coll_bytes: 64,
                        blocked_secs: 0.002,
                        flops: 5_000,
                        compute_nanos: 7_000,
                        particles: 100 + rank as u64,
                        ..StepSample::default()
                    })
                    .collect(),
                events: vec![],
                dropped_events: 0,
                failure: None,
            })
            .collect();
        RunTimeline::from_ranks(ranks)
    }

    #[test]
    fn dashboard_is_selfcontained_html_with_sparklines() {
        let html = render_dashboard(&timeline());
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("<svg"), "sparklines are inline SVG");
        assert!(html.contains("send bytes / step"));
        assert!(html.contains("imbalance"));
        assert!(html.contains("comm_fraction"));
        assert!(!html.contains("<script"), "no scripts — curl-and-open safe");
        assert!(!html.contains("http://") || html.contains("w3.org"), "no external fetches");
        assert!(html.contains("none flagged"), "stationary data shows no drift");
    }

    #[test]
    fn postmortem_banner_and_events_render_escaped() {
        let mut tl = timeline();
        tl.failure = Some("rank 1: <dead>".to_string());
        tl.ranks[0].events.push(nbody_timeline::FlightEvent {
            t_secs: 0.5,
            kind: EventKind::Unrecoverable,
            step: Some(3),
            detail: "c<2".to_string(),
        });
        let html = render_dashboard(&tl);
        assert!(html.contains("POSTMORTEM"));
        assert!(html.contains("rank 1: &lt;dead&gt;"), "failure reason is escaped");
        assert!(html.contains("unrecoverable"));
        assert!(html.contains("c&lt;2"));
    }

    #[test]
    fn wire_panel_lists_channels_slowest_first() {
        use nbody_wireprobe::{match_events, MsgEvent, ProbeKind, RankWireLog, WireLog};
        let ev = |kind, src: u32, dst: u32, tag: u64, t: f64| MsgEvent {
            kind,
            src,
            dst,
            comm: 0,
            tag,
            phase: nbody_trace::Phase::Shift,
            count: 4,
            bytes: 224,
            t_secs: t,
            step: None,
        };
        let log = WireLog::from_ranks(vec![RankWireLog {
            rank: 0,
            events: vec![
                ev(ProbeKind::Send, 0, 1, 1, 0.000),
                ev(ProbeKind::Recv, 0, 1, 1, 0.005),
                ev(ProbeKind::Send, 1, 0, 2, 0.000),
                ev(ProbeKind::Recv, 1, 0, 2, 0.001),
            ],
            dropped_events: 0,
        }]);
        let report = match_events(&log);
        let html = render_dashboard_with_wire(&timeline(), Some(&report));
        assert!(html.contains("channel latency (wire probes)"), "{html}");
        assert!(html.contains("0 &rarr; 1"));
        assert!(html.contains("5000.0"), "5ms latency in us");
        // Slowest channel (0->1, 5 ms) sorts before the 1 ms one.
        let slow = html.find("0 &rarr; 1").unwrap();
        let fast = html.find("1 &rarr; 0").unwrap();
        assert!(slow < fast, "slowest first");
        // Without a report, no panel.
        assert!(!render_dashboard(&timeline()).contains("channel latency"));
    }

    #[test]
    fn health_panel_shows_unmeasured_hint_then_verdict_and_blame() {
        // The default test timeline carries no health instrumentation.
        let html = render_dashboard(&timeline());
        assert!(html.contains("numerical health"));
        assert!(html.contains("--health"), "uninstrumented runs point at the flag");

        // Instrumented: energy/momentum on every sample, plus one blamed
        // sentinel event.
        let mut tl = timeline();
        for r in &mut tl.ranks {
            for s in &mut r.samples {
                s.energy = -1.25;
                s.momentum = 1e-13;
            }
        }
        tl.ranks[1].events.push(nbody_timeline::FlightEvent {
            t_secs: 0.3,
            kind: EventKind::NonFinite,
            step: Some(7),
            detail: "non-finite force.x at rank 1".to_string(),
        });
        let html = render_dashboard(&tl);
        assert!(html.contains("UNHEALTHY"), "sentinel event flips the verdict");
        assert!(html.contains("non-finite force.x at rank 1"));
        assert!(html.contains("total energy"), "energy sparkline meta renders");
    }

    #[test]
    fn empty_timeline_renders_without_panicking() {
        let html = render_dashboard(&RunTimeline::from_ranks(vec![]));
        assert!(html.contains("0 ranks"));
        assert!(html.contains("no samples"));
        assert!(html.contains("none recorded"));
    }
}
