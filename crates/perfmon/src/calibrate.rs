//! Machine calibration: the measured ceilings of the roofline model.
//!
//! Two seedable microbenchmarks, deliberately matched to the force
//! kernel's character:
//!
//! * **Scalar FMA peak** — dependent chains of `mul_add` across a handful
//!   of independent accumulators, the instruction mix of the inner force
//!   loop without SIMD (the kernels are scalar today; when ROADMAP item 2
//!   vectorizes them, this ceiling is the honest "before" bar).
//! * **Stream bandwidth** — a large out-of-cache buffer copy, counting
//!   read + write traffic, the classic STREAM-style bound for the
//!   memory-bound side of the roofline.
//!
//! Both are deterministic given the seed (initial values derive from a
//! splitmix64 stream, repeats take the best time) and parameterized so CI
//! can run a quick variant. Results persist as JSON via
//! [`MachineCalibration::to_json`] so gates compare against a *recorded*
//! calibration rather than re-measuring on noisy shared runners.

use std::hint::black_box;
use std::time::Instant;

use nbody_trace::Json;

/// Independent FMA accumulator lanes; enough to hide the FMA latency on
/// any contemporary core without spilling registers.
const LANES: usize = 8;

/// Parameters of one calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Seed for the deterministic initial values.
    pub seed: u64,
    /// Iterations of the FMA loop (each iteration does `LANES` fused
    /// multiply-adds, i.e. `2 * LANES` FLOPs).
    pub fma_iters: u64,
    /// Size of each streaming buffer in MiB (two are allocated).
    pub stream_mib: usize,
    /// Timed repeats; the best (fastest) repeat is kept.
    pub repeats: usize,
}

impl CalibrationConfig {
    /// A fast calibration (~tens of milliseconds), fit for tests and for
    /// ad-hoc audits on a developer machine.
    pub fn quick() -> CalibrationConfig {
        CalibrationConfig {
            seed: 42,
            fma_iters: 2_000_000,
            stream_mib: 8,
            repeats: 3,
        }
    }

    /// The full calibration used to produce the checked-in
    /// `bench_results/machine_calibration.json`.
    pub fn full() -> CalibrationConfig {
        CalibrationConfig {
            seed: 42,
            fma_iters: 32_000_000,
            stream_mib: 64,
            repeats: 5,
        }
    }
}

impl Default for CalibrationConfig {
    fn default() -> CalibrationConfig {
        CalibrationConfig::quick()
    }
}

/// The measured machine ceilings plus the provenance needed to reproduce
/// them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineCalibration {
    /// Scalar FMA peak in GFLOP/s (FLOPs per nanosecond).
    pub peak_gflops: f64,
    /// Streaming memory bandwidth in GB/s (bytes per nanosecond).
    pub mem_bw_gbytes: f64,
    /// Seed the measurement ran with.
    pub seed: u64,
    /// FMA iterations of the measurement.
    pub fma_iters: u64,
    /// Bytes of one streaming buffer.
    pub stream_bytes: u64,
}

impl MachineCalibration {
    /// Run both microbenchmarks.
    pub fn measure(cfg: &CalibrationConfig) -> MachineCalibration {
        MachineCalibration {
            peak_gflops: fma_peak_gflops(cfg),
            mem_bw_gbytes: stream_bandwidth_gbytes(cfg),
            seed: cfg.seed,
            fma_iters: cfg.fma_iters,
            stream_bytes: (cfg.stream_mib as u64) << 20,
        }
    }

    /// Serialize for `bench_results/machine_calibration.json`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("peak_gflops".to_string(), Json::Num(self.peak_gflops)),
            ("mem_bw_gbytes".to_string(), Json::Num(self.mem_bw_gbytes)),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            ("fma_iters".to_string(), Json::Num(self.fma_iters as f64)),
            (
                "stream_bytes".to_string(),
                Json::Num(self.stream_bytes as f64),
            ),
        ])
    }

    /// Parse a serialized calibration; both ceilings must be positive
    /// finite numbers.
    pub fn from_json(doc: &Json) -> Result<MachineCalibration, String> {
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("calibration: missing or non-numeric {key:?}"))
        };
        let peak_gflops = num("peak_gflops")?;
        let mem_bw_gbytes = num("mem_bw_gbytes")?;
        if !(peak_gflops.is_finite() && peak_gflops > 0.0) {
            return Err(format!("calibration: invalid peak_gflops {peak_gflops}"));
        }
        if !(mem_bw_gbytes.is_finite() && mem_bw_gbytes > 0.0) {
            return Err(format!("calibration: invalid mem_bw_gbytes {mem_bw_gbytes}"));
        }
        Ok(MachineCalibration {
            peak_gflops,
            mem_bw_gbytes,
            seed: num("seed").unwrap_or(0.0) as u64,
            fma_iters: num("fma_iters").unwrap_or(0.0) as u64,
            stream_bytes: num("stream_bytes").unwrap_or(0.0) as u64,
        })
    }
}

/// The splitmix64 stream: the deterministic seed expansion behind both
/// microbenchmarks (no dependency on the `rand` stand-in needed).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic f64 in `[1, 2)` from the stream.
fn unit_f64(state: &mut u64) -> f64 {
    1.0 + (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn fma_peak_gflops(cfg: &CalibrationConfig) -> f64 {
    let mut state = cfg.seed;
    // x slightly below 1 and a small positive y keep every accumulator
    // converging toward y/(1-x) ~ 1: no overflow, no denormals, and the
    // compiler cannot fold the loop because the values are data-dependent.
    let x = 0.999_999_9_f64;
    let y = 1e-7_f64;
    let mut best_nanos = u64::MAX;
    for _ in 0..cfg.repeats.max(1) {
        let mut acc = [0.0f64; LANES];
        for a in &mut acc {
            *a = unit_f64(&mut state);
        }
        let start = Instant::now();
        for _ in 0..cfg.fma_iters {
            for a in &mut acc {
                *a = a.mul_add(x, y);
            }
        }
        let nanos = start.elapsed().as_nanos() as u64;
        black_box(acc);
        best_nanos = best_nanos.min(nanos.max(1));
    }
    // mul_add is one multiply + one add.
    let flops = cfg.fma_iters * LANES as u64 * 2;
    flops as f64 / best_nanos as f64
}

fn stream_bandwidth_gbytes(cfg: &CalibrationConfig) -> f64 {
    let words = ((cfg.stream_mib.max(1)) << 20) / std::mem::size_of::<u64>();
    let mut state = cfg.seed ^ 0x5eed;
    let src: Vec<u64> = (0..words).map(|_| splitmix64(&mut state)).collect();
    let mut dst = vec![0u64; words];
    let mut best_nanos = u64::MAX;
    for _ in 0..cfg.repeats.max(1) {
        let start = Instant::now();
        dst.copy_from_slice(&src);
        let nanos = start.elapsed().as_nanos() as u64;
        black_box(&mut dst);
        best_nanos = best_nanos.min(nanos.max(1));
    }
    // A copy reads and writes every byte once.
    let bytes = (words * std::mem::size_of::<u64>()) as u64 * 2;
    bytes as f64 / best_nanos as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CalibrationConfig {
        CalibrationConfig {
            seed: 7,
            fma_iters: 50_000,
            stream_mib: 1,
            repeats: 2,
        }
    }

    #[test]
    fn measure_produces_positive_ceilings() {
        let cal = MachineCalibration::measure(&tiny());
        assert!(cal.peak_gflops > 0.0, "{cal:?}");
        assert!(cal.mem_bw_gbytes > 0.0, "{cal:?}");
        assert_eq!(cal.seed, 7);
        assert_eq!(cal.stream_bytes, 1 << 20);
    }

    #[test]
    fn json_round_trip() {
        let cal = MachineCalibration {
            peak_gflops: 3.5,
            mem_bw_gbytes: 12.25,
            seed: 42,
            fma_iters: 1000,
            stream_bytes: 1 << 20,
        };
        let doc = Json::parse(&cal.to_json().to_string()).unwrap();
        let back = MachineCalibration::from_json(&doc).unwrap();
        assert_eq!(back, cal);
    }

    #[test]
    fn invalid_calibrations_rejected() {
        for text in [
            "{}",
            r#"{"peak_gflops": 0, "mem_bw_gbytes": 1}"#,
            r#"{"peak_gflops": 1, "mem_bw_gbytes": -3}"#,
            r#"{"peak_gflops": "fast", "mem_bw_gbytes": 1}"#,
        ] {
            let doc = Json::parse(text).unwrap();
            assert!(MachineCalibration::from_json(&doc).is_err(), "{text}");
        }
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 1u64;
        let mut b = 1u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        let va = unit_f64(&mut a);
        let vb = unit_f64(&mut b);
        assert_eq!(va, vb);
        assert!((1.0..2.0).contains(&va));
    }
}
