//! The roofline join: measured `compute_*` counters vs machine ceilings.
//!
//! A metered run records, per rank, the kernel's interaction count, FLOPs,
//! compulsory bytes, and wall nanoseconds (`ca_nbody::kernel::ComputeMeter`).
//! Against a [`MachineCalibration`] those four numbers place every rank on
//! the roofline: achieved GFLOP/s vs `min(peak, intensity × bandwidth)`.
//! The renderings mirror the comm-bounds audit (table, CSV, JSON), and
//! [`RooflineGate`] is the CI check that kernel efficiency does not silently
//! regress below the checked-in `bench_results/roofline_baseline.json`.

use nbody_metrics::MetricsSnapshot;
use nbody_trace::Json;

use crate::calibrate::MachineCalibration;

/// One rank's drained compute counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCompute {
    /// World rank.
    pub rank: u32,
    /// Force evaluations performed.
    pub interactions: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Compulsory kernel memory traffic in bytes.
    pub bytes: u64,
    /// Wall nanoseconds inside the kernel.
    pub nanos: u64,
}

/// Extract every rank's compute counters from a snapshot; ranks that never
/// ran the kernel (disabled metrics, empty blocks) are skipped.
pub fn kernel_compute(snapshot: &MetricsSnapshot) -> Vec<KernelCompute> {
    snapshot
        .ranks
        .iter()
        .filter_map(|r| {
            let kc = KernelCompute {
                rank: r.rank,
                interactions: r.counter("compute_interactions", None),
                flops: r.counter("compute_flops", None),
                bytes: r.counter("compute_bytes", None),
                nanos: r.counter("compute_nanos", None),
            };
            (kc.flops > 0 && kc.nanos > 0).then_some(kc)
        })
        .collect()
}

/// One rank placed on the roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// World rank.
    pub rank: u32,
    /// Force evaluations performed.
    pub interactions: u64,
    /// Measured GFLOP/s (FLOPs per kernel nanosecond).
    pub achieved_gflops: f64,
    /// Arithmetic intensity, FLOPs per byte.
    pub intensity: f64,
    /// The roof at this intensity: `min(peak, intensity × bandwidth)`.
    pub roofline_gflops: f64,
    /// `100 × achieved / roofline`.
    pub pct_of_roofline: f64,
}

/// The compute audit of one kernel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineReport {
    /// Kernel label (e.g. `all-pairs c=2`).
    pub kernel: String,
    /// Calibrated compute ceiling, GFLOP/s.
    pub peak_gflops: f64,
    /// Calibrated memory bandwidth, GB/s.
    pub mem_bw_gbytes: f64,
    /// One point per rank that ran the kernel.
    pub points: Vec<RooflinePoint>,
}

impl RooflineReport {
    /// The best %-of-roofline across ranks — the gate statistic. The best
    /// rank (not the mean) is gated because scheduling noise on an
    /// oversubscribed CI runner slows *some* ranks arbitrarily but cannot
    /// speed the best rank past what the kernel is capable of.
    pub fn best_pct(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.pct_of_roofline)
            .fold(0.0, f64::max)
    }

}

/// Place every rank of `snapshot` on the roofline of `calib`.
pub fn roofline(
    kernel: &str,
    snapshot: &MetricsSnapshot,
    calib: &MachineCalibration,
) -> RooflineReport {
    let points = kernel_compute(snapshot)
        .into_iter()
        .map(|kc| {
            let achieved = kc.flops as f64 / kc.nanos as f64;
            let intensity = if kc.bytes == 0 {
                0.0
            } else {
                kc.flops as f64 / kc.bytes as f64
            };
            let roof = calib
                .peak_gflops
                .min(intensity * calib.mem_bw_gbytes)
                .max(f64::MIN_POSITIVE);
            RooflinePoint {
                rank: kc.rank,
                interactions: kc.interactions,
                achieved_gflops: achieved,
                intensity,
                roofline_gflops: roof,
                pct_of_roofline: 100.0 * achieved / roof,
            }
        })
        .collect();
    RooflineReport {
        kernel: kernel.to_string(),
        peak_gflops: calib.peak_gflops,
        mem_bw_gbytes: calib.mem_bw_gbytes,
        points,
    }
}

/// The human-readable compute section of `ca-nbody audit`.
pub fn roofline_table(reports: &[RooflineReport]) -> String {
    let mut out = String::new();
    if reports.is_empty() {
        return out;
    }
    out.push_str(&format!(
        "compute roofline (peak {:.2} GFLOP/s, stream {:.2} GB/s)\n",
        reports[0].peak_gflops, reports[0].mem_bw_gbytes
    ));
    out.push_str(&format!(
        "{:<16} {:>6} {:>14} {:>12} {:>10} {:>12} {:>8}\n",
        "kernel", "rank", "interactions", "GFLOP/s", "FLOP/B", "roof GF/s", "% roof"
    ));
    for r in reports {
        for p in &r.points {
            out.push_str(&format!(
                "{:<16} {:>6} {:>14} {:>12.3} {:>10.3} {:>12.3} {:>7.1}%\n",
                r.kernel,
                p.rank,
                p.interactions,
                p.achieved_gflops,
                p.intensity,
                p.roofline_gflops,
                p.pct_of_roofline
            ));
        }
        out.push_str(&format!(
            "{:<16} {:>6} best {:.1}% of roofline\n",
            r.kernel, "-", r.best_pct()
        ));
    }
    out
}

/// CSV rendering, one row per (kernel, rank).
pub fn roofline_csv(reports: &[RooflineReport]) -> String {
    let mut out = String::from(
        "kernel,rank,interactions,achieved_gflops,intensity_flop_per_byte,\
         roofline_gflops,pct_of_roofline\n",
    );
    for r in reports {
        for p in &r.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                r.kernel,
                p.rank,
                p.interactions,
                p.achieved_gflops,
                p.intensity,
                p.roofline_gflops,
                p.pct_of_roofline
            ));
        }
    }
    out
}

/// JSON rendering of the whole compute section.
pub fn roofline_json(reports: &[RooflineReport]) -> Json {
    Json::Arr(
        reports
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("kernel".to_string(), Json::Str(r.kernel.clone())),
                    ("peak_gflops".to_string(), Json::Num(r.peak_gflops)),
                    ("mem_bw_gbytes".to_string(), Json::Num(r.mem_bw_gbytes)),
                    ("best_pct_of_roofline".to_string(), Json::Num(r.best_pct())),
                    (
                        "ranks".to_string(),
                        Json::Arr(
                            r.points
                                .iter()
                                .map(|p| {
                                    Json::Obj(vec![
                                        ("rank".to_string(), Json::Num(p.rank as f64)),
                                        (
                                            "interactions".to_string(),
                                            Json::Num(p.interactions as f64),
                                        ),
                                        (
                                            "achieved_gflops".to_string(),
                                            Json::Num(p.achieved_gflops),
                                        ),
                                        ("intensity".to_string(), Json::Num(p.intensity)),
                                        (
                                            "roofline_gflops".to_string(),
                                            Json::Num(p.roofline_gflops),
                                        ),
                                        (
                                            "pct_of_roofline".to_string(),
                                            Json::Num(p.pct_of_roofline),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// The CI compute gate: the best rank's %-of-roofline must stay above
/// `min_pct - tolerance_pct`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflineGate {
    /// Baseline floor, percent of roofline.
    pub min_pct: f64,
    /// Allowed slack below the floor, percentage points.
    pub tolerance_pct: f64,
}

impl RooflineGate {
    /// Parse `bench_results/roofline_baseline.json`.
    pub fn from_json(doc: &Json) -> Result<RooflineGate, String> {
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| format!("roofline baseline: missing or invalid {key:?}"))
        };
        Ok(RooflineGate {
            min_pct: num("min_pct_of_roofline")?,
            tolerance_pct: num("tolerance_pct")?,
        })
    }

    /// Apply the gate to a set of reports; `Err` carries the failure text.
    pub fn check(&self, reports: &[RooflineReport]) -> Result<f64, String> {
        let best = reports.iter().map(RooflineReport::best_pct).fold(0.0, f64::max);
        let floor = (self.min_pct - self.tolerance_pct).max(0.0);
        if reports.iter().all(|r| r.points.is_empty()) {
            return Err("roofline gate: no compute counters in any report".to_string());
        }
        if best < floor {
            return Err(format!(
                "roofline gate: best rank reached {best:.2}% of roofline, below \
                 baseline {:.2}% - tolerance {:.2}%",
                self.min_pct, self.tolerance_pct
            ));
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_metrics::{RankMetrics, Sample};

    fn counter(name: &str, value: u64) -> Sample<u64> {
        Sample {
            name: name.to_string(),
            phase: None,
            value,
        }
    }

    fn snapshot() -> MetricsSnapshot {
        let rank = |rank, flops, bytes, nanos| RankMetrics {
            rank,
            counters: vec![
                counter("compute_interactions", flops / 20),
                counter("compute_flops", flops),
                counter("compute_bytes", bytes),
                counter("compute_nanos", nanos),
            ],
            ..RankMetrics::default()
        };
        MetricsSnapshot {
            ranks: vec![
                rank(0, 2_000, 1_000, 1_000), // 2 GFLOP/s, intensity 2
                rank(1, 1_000, 1_000, 1_000), // 1 GFLOP/s, intensity 1
                RankMetrics {
                    rank: 2,
                    ..RankMetrics::default()
                }, // never ran the kernel
            ],
        }
    }

    fn calib() -> MachineCalibration {
        MachineCalibration {
            peak_gflops: 4.0,
            mem_bw_gbytes: 1.0,
            seed: 0,
            fma_iters: 0,
            stream_bytes: 0,
        }
    }

    #[test]
    fn extracts_only_ranks_with_compute() {
        let kcs = kernel_compute(&snapshot());
        assert_eq!(kcs.len(), 2);
        assert_eq!(kcs[0].rank, 0);
        assert_eq!(kcs[0].flops, 2_000);
    }

    #[test]
    fn roofline_points_and_best_pct() {
        let r = roofline("all-pairs c=2", &snapshot(), &calib());
        assert_eq!(r.points.len(), 2);
        // Rank 0: achieved 2 GF/s, intensity 2 -> roof = min(4, 2*1) = 2,
        // so 100% of roofline.
        let p0 = &r.points[0];
        assert!((p0.achieved_gflops - 2.0).abs() < 1e-12);
        assert!((p0.roofline_gflops - 2.0).abs() < 1e-12);
        assert!((p0.pct_of_roofline - 100.0).abs() < 1e-9);
        // Rank 1: achieved 1, intensity 1 -> roof 1 -> 100%.
        assert!((r.best_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_kernel_hits_the_flat_roof() {
        let mut snap = snapshot();
        // Intensity 20 FLOP/B: the roof is the 4 GFLOP/s peak, and a
        // 2 GFLOP/s kernel sits at 50%.
        snap.ranks[0].counters[2].value = 100;
        snap.ranks.truncate(1);
        let r = roofline("all-pairs c=2", &snap, &calib());
        assert!((r.points[0].roofline_gflops - 4.0).abs() < 1e-12);
        assert!((r.points[0].pct_of_roofline - 50.0).abs() < 1e-9);
    }

    #[test]
    fn renderings_contain_every_rank() {
        let r = roofline("all-pairs c=2", &snapshot(), &calib());
        let table = roofline_table(std::slice::from_ref(&r));
        assert!(table.contains("compute roofline"));
        assert!(table.contains("all-pairs c=2"));
        assert!(table.contains("% roof"));
        let csv = roofline_csv(std::slice::from_ref(&r));
        assert_eq!(csv.lines().count(), 3, "header + 2 ranks");
        let doc = Json::parse(&roofline_json(std::slice::from_ref(&r)).to_string()).unwrap();
        let arr = doc.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0].get("ranks").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
        assert!(arr[0].get("best_pct_of_roofline").is_some());
    }

    #[test]
    fn gate_passes_and_fails() {
        let r = roofline("all-pairs c=2", &snapshot(), &calib());
        let reports = vec![r];
        let ok = RooflineGate {
            min_pct: 90.0,
            tolerance_pct: 5.0,
        };
        assert!(ok.check(&reports).is_ok());
        let too_strict = RooflineGate {
            min_pct: 150.0,
            tolerance_pct: 5.0,
        };
        assert!(too_strict.check(&reports).is_err());
        // No compute counters anywhere: the gate must fail loudly, not
        // vacuously pass.
        let empty = vec![roofline("x", &MetricsSnapshot::empty(), &calib())];
        assert!(ok.check(&empty).is_err());
    }

    #[test]
    fn gate_parses_from_json() {
        let doc = Json::parse(r#"{"min_pct_of_roofline": 12.5, "tolerance_pct": 4}"#).unwrap();
        let g = RooflineGate::from_json(&doc).unwrap();
        assert_eq!(g.min_pct, 12.5);
        assert_eq!(g.tolerance_pct, 4.0);
        assert!(RooflineGate::from_json(&Json::parse("{}").unwrap()).is_err());
        let neg = Json::parse(r#"{"min_pct_of_roofline": -1, "tolerance_pct": 4}"#).unwrap();
        assert!(RooflineGate::from_json(&neg).is_err());
    }
}
