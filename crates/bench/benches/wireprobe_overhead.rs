//! Overhead of the wire-probe message observability layer.
//!
//! The wireprobe design claims probes are strictly pay-per-use: every
//! entry point except the `*_probed` ones hands ranks a disabled
//! [`ProbeRecorder`], whose probe calls are a single `Option` check, so a
//! probes-off run must stay within noise of the plain baseline. Three
//! comparisons keep that honest:
//!
//! * a full CA all-pairs evaluation through `run_ranks` (probes off, the
//!   default every caller gets) vs. `run_ranks_probed` (every
//!   point-to-point send/recv stamped into the per-rank ring) — the delta
//!   is the whole per-message probe cost a `--wire-probe` run pays, and
//!   the probes-off side must be indistinguishable from the historical
//!   baseline (the CI `regress` gate checks the end-to-end version of the
//!   same claim against the recorded unprobed history);
//! * the recorder hot path priced directly: one stamped send+recv pair
//!   per round on an enabled ring (clock read, ring push, eviction check)
//!   vs. the same calls on a disabled handle (the no-op every unprobed
//!   run executes).

use std::time::Instant;

use ca_nbody::dist::id_block_subset;
use ca_nbody::{ca_all_pairs_forces, GridComms, ProcGrid};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nbody_comm::{run_ranks, run_ranks_probed, Communicator, Phase, ProbeRecorder};
use nbody_physics::{init, Boundary, Domain, Particle, RepulsiveInverseSquare};

const P: usize = 4;
const C: usize = 2;
const N: usize = 128;

fn law() -> RepulsiveInverseSquare {
    RepulsiveInverseSquare {
        strength: 1e-3,
        softening: 1e-3,
    }
}

fn eval<C2: Communicator>(world: &C2, grid: ProcGrid, initial: &[Particle]) -> usize {
    let domain = Domain::unit();
    let gc = GridComms::new(world, grid);
    let mut st: Vec<Particle> = if gc.is_leader() {
        id_block_subset(initial, grid.teams(), gc.team())
    } else {
        Vec::new()
    };
    ca_all_pairs_forces(&gc, &mut st, &law(), &domain, Boundary::Reflective);
    st.len()
}

fn bench_eval_probes_off(c: &mut Criterion) {
    let grid = ProcGrid::new_all_pairs(P, C).unwrap();
    let initial = init::uniform(N, &Domain::unit(), 42);
    c.bench_function("allpairs_eval_wire_probes_off", |b| {
        b.iter(|| black_box(run_ranks(P, |world| eval(world, grid, &initial))))
    });
}

fn bench_eval_probes_on(c: &mut Criterion) {
    let grid = ProcGrid::new_all_pairs(P, C).unwrap();
    let initial = init::uniform(N, &Domain::unit(), 42);
    c.bench_function("allpairs_eval_wire_probes_on", |b| {
        b.iter(|| black_box(run_ranks_probed(P, |world| eval(world, grid, &initial))))
    });
}

const RECORD_ROUNDS: u64 = 10_000;

fn bench_probe_hot_path(c: &mut Criterion) {
    c.bench_function("probe_ring_send_recv_stamp", |b| {
        b.iter(|| {
            let probe = ProbeRecorder::for_rank(0, Instant::now());
            for i in 0..RECORD_ROUNDS {
                probe.send(1, 0, i, Phase::Shift, 16, 16 * 52);
                probe.recv(1, 0, i, Phase::Shift, 16, 16 * 52);
            }
            black_box(probe.finish())
        })
    });
}

fn bench_probe_disabled_noop(c: &mut Criterion) {
    c.bench_function("probe_disabled_send_recv_noop", |b| {
        b.iter(|| {
            let probe = ProbeRecorder::disabled();
            for i in 0..RECORD_ROUNDS {
                probe.send(1, 0, i, Phase::Shift, 16, 16 * 52);
                probe.recv(1, 0, i, Phase::Shift, 16, 16 * 52);
            }
            black_box(probe.finish())
        })
    });
}

criterion_group!(
    benches,
    bench_eval_probes_off,
    bench_eval_probes_on,
    bench_probe_hot_path,
    bench_probe_disabled_noop
);
criterion_main!(benches);
