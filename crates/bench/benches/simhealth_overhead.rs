//! Overhead of the numerical-health monitors.
//!
//! The health design claims monitors-off runs pay nothing: the drivers
//! only switch to the potential-harvesting kernel and run the sentinel
//! scans and fingerprint cross-check when a `HealthMonitor` is installed.
//! Comparing a full fault-tolerant CA all-pairs evaluation with health
//! off against health on keeps that claim honest — the health=None run
//! must match the pre-health driver within noise, and the health=Some
//! delta is the documented price of the lens (PE harvest + one u64
//! fingerprint + one column allgather per attempt).
//!
//! The last two benchmarks price the building blocks themselves on a
//! rank-local slice: the order-invariant state fingerprint and the
//! non-finite sentinel scans.

use ca_nbody::dist::id_block_subset;
use ca_nbody::recovery::{ca_all_pairs_forces_ft_health, HealthMonitor, RetryPolicy};
use ca_nbody::{GridComms, ProcGrid};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nbody_comm::{run_ranks_silent, Communicator};
use nbody_physics::{init, Boundary, Domain, Particle, RepulsiveInverseSquare};
use nbody_simhealth::{scan_forces, scan_state, state_fingerprint};

const P: usize = 4;
const C: usize = 2;
const N: usize = 128;

fn law() -> RepulsiveInverseSquare {
    RepulsiveInverseSquare {
        strength: 1e-3,
        softening: 1e-3,
    }
}

fn eval_ft<C2: Communicator>(
    world: &C2,
    grid: ProcGrid,
    initial: &[Particle],
    health: Option<&HealthMonitor>,
) -> usize {
    let domain = Domain::unit();
    let gc = GridComms::new(world, grid);
    let mut st: Vec<Particle> = if gc.is_leader() {
        id_block_subset(initial, grid.teams(), gc.team())
    } else {
        Vec::new()
    };
    let policy = RetryPolicy::with_timeout_ms(1000);
    ca_all_pairs_forces_ft_health(
        &gc,
        &mut st,
        &law(),
        &domain,
        Boundary::Reflective,
        &policy,
        0,
        health,
    )
    .expect("fault-free evaluation succeeds");
    st.len()
}

fn bench_eval_health_off(c: &mut Criterion) {
    let grid = ProcGrid::new_all_pairs(P, C).unwrap();
    let initial = init::uniform(N, &Domain::unit(), 42);
    c.bench_function("allpairs_ft_eval_health_off", |b| {
        b.iter(|| black_box(run_ranks_silent(P, |world| eval_ft(world, grid, &initial, None))))
    });
}

fn bench_eval_health_on(c: &mut Criterion) {
    let grid = ProcGrid::new_all_pairs(P, C).unwrap();
    let initial = init::uniform(N, &Domain::unit(), 42);
    c.bench_function("allpairs_ft_eval_health_on", |b| {
        b.iter(|| {
            black_box(run_ranks_silent(P, |world| {
                let hm = HealthMonitor::new(true, None);
                eval_ft(world, grid, &initial, Some(&hm))
            }))
        })
    });
}

fn bench_fingerprint(c: &mut Criterion) {
    let particles = init::uniform(N, &Domain::unit(), 42);
    c.bench_function("state_fingerprint_128", |b| {
        b.iter(|| black_box(state_fingerprint(black_box(&particles))))
    });
}

fn bench_sentinel_scans(c: &mut Criterion) {
    let particles = init::uniform(N, &Domain::unit(), 42);
    c.bench_function("sentinel_scan_128", |b| {
        b.iter(|| {
            let p = black_box(&particles);
            black_box((scan_forces(p), scan_state(p)))
        })
    });
}

criterion_group!(
    benches,
    bench_eval_health_off,
    bench_eval_health_on,
    bench_fingerprint,
    bench_sentinel_scans
);
criterion_main!(benches);
