//! Discrete-event simulator throughput: events per second of the engine
//! itself, which bounds how quickly the paper-scale figures regenerate.

use ca_nbody::schedule::{AllPairsParams, CutoffParams};
use ca_nbody::{ProcGrid, Window1d};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbody_comm::Phase;
use nbody_netsim::{hopper, simulate, test_machine, Op};

fn bench_ring_schedule(c: &mut Criterion) {
    let m = test_machine();
    let mut group = c.benchmark_group("des_ring");
    for p in [256usize, 1024] {
        let steps = 64;
        group.throughput(Throughput::Elements((p * steps * 3) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bench, &p| {
            bench.iter(|| {
                simulate(&m, p, |r| {
                    (0..steps).flat_map(move |s| {
                        [
                            Op::Send {
                                to: (r + 1) % p,
                                bytes: 52,
                                phase: Phase::Shift,
                            },
                            Op::Recv {
                                from: (r + p - 1) % p,
                                phase: Phase::Shift,
                            },
                            Op::Compute {
                                interactions: s as u64,
                            },
                        ]
                    })
                })
            })
        });
    }
    group.finish();
}

fn bench_all_pairs_schedule(c: &mut Criterion) {
    let m = hopper();
    let mut group = c.benchmark_group("des_all_pairs");
    group.sample_size(10);
    for (p, cc) in [(1024usize, 1usize), (1024, 4)] {
        let params = AllPairsParams::new(p, cc, p * 8);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p{p}_c{cc}")),
            &params,
            |bench, params| bench.iter(|| simulate(&m, p, |r| params.program(r))),
        );
    }
    group.finish();
}

fn bench_cutoff_schedule(c: &mut Criterion) {
    let m = hopper();
    let p = 1024;
    let grid = ProcGrid::new(p, 2).unwrap();
    let window = Window1d::new(grid.teams(), grid.teams() / 4);
    let params = CutoffParams::new(grid, window, vec![16; grid.teams()]);
    let mut group = c.benchmark_group("des_cutoff");
    group.sample_size(10);
    group.bench_function("p1024_c2", |bench| {
        bench.iter(|| simulate(&m, p, |r| params.program(r)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ring_schedule,
    bench_all_pairs_schedule,
    bench_cutoff_schedule
);
criterion_main!(benches);
