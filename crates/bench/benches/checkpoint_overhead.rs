//! Overhead of the durable-checkpoint sink on a fault-free run.
//!
//! The durability design claims checkpointing is pay-as-you-go twice
//! over: with no `CheckpointConfig` the fault-tolerant driver must cost
//! the same as before the sink existed, and with a sink on a sparse
//! cadence the per-step cost is one leader-gather plus one atomic file
//! write, amortized across the cadence. Three comparisons keep that
//! honest:
//!
//! * the fault-tolerant multi-step driver with checkpointing off
//!   (the baseline the `run` CLI takes without `--checkpoint-dir`),
//! * the same run persisting a bundle every step (worst case), and
//! * the same run persisting every 8th step (the amortized case) —
//!   plus the pure serialization cost of one bundle, isolating the
//!   JSON encoding from the gather and the filesystem.

use ca_nbody::recovery::RetryPolicy;
use ca_nbody::sim::{run_distributed_durable, CheckpointConfig, Method, SimConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nbody_comm::FaultPlan;
use nbody_durable::{CheckpointBundle, ColumnBlock};
use nbody_physics::{init, Boundary, Domain, RepulsiveInverseSquare, SemiImplicitEuler};

const P: usize = 4;
const C: usize = 2;
const N: usize = 128;
const STEPS: usize = 8;

fn cfg() -> SimConfig<RepulsiveInverseSquare, SemiImplicitEuler> {
    SimConfig {
        law: RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        },
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.005,
        steps: STEPS,
    }
}

fn run_with(ckpt: Option<&CheckpointConfig>) -> usize {
    let cfg = cfg();
    let initial = init::uniform(N, &cfg.domain, 42);
    let (res, _) = run_distributed_durable(
        &cfg,
        Method::CaAllPairs { c: C },
        P,
        &FaultPlan::empty(),
        &RetryPolicy::default(),
        ckpt,
        &initial,
    );
    res.expect("fault-free run").particles.len()
}

fn sink_at(dir: &std::path::Path, every: usize) -> CheckpointConfig {
    CheckpointConfig {
        dir: dir.to_path_buf(),
        every,
        base_step: 0,
        fingerprint: "bench-fingerprint".to_string(),
        seed: 42,
        crash_at: None,
    }
}

fn bench_checkpoint_off(c: &mut Criterion) {
    c.bench_function("durable_run_checkpoint_off", |b| {
        b.iter(|| black_box(run_with(None)))
    });
}

fn bench_checkpoint_every_step(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("nbody-ckpt-bench-every1-{}", std::process::id()));
    let ck = sink_at(&dir, 1);
    c.bench_function("durable_run_checkpoint_every_step", |b| {
        b.iter(|| black_box(run_with(Some(&ck))))
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_checkpoint_sparse(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("nbody-ckpt-bench-every8-{}", std::process::id()));
    let ck = sink_at(&dir, STEPS);
    c.bench_function("durable_run_checkpoint_every_8th", |b| {
        b.iter(|| black_box(run_with(Some(&ck))))
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_bundle_serialize(c: &mut Criterion) {
    let domain = Domain::unit();
    let initial = init::uniform(N, &domain, 42);
    let teams = P / C;
    let per_team = N / teams;
    let bundle = CheckpointBundle {
        fingerprint: "bench-fingerprint".to_string(),
        step: 3,
        seed: 42,
        blocks: (0..teams)
            .map(|t| ColumnBlock {
                team: t,
                particles: initial[t * per_team..(t + 1) * per_team].to_vec(),
            })
            .collect(),
    };
    c.bench_function("checkpoint_bundle_to_json", |b| {
        b.iter(|| black_box(bundle.to_json_string().len()))
    });
}

criterion_group!(
    benches,
    bench_checkpoint_off,
    bench_checkpoint_every_step,
    bench_checkpoint_sparse,
    bench_bundle_serialize
);
criterion_main!(benches);
