//! Overhead of the metrics registry on the communication hot path.
//!
//! The registry claims to be zero-cost when disabled and a plain `Cell`
//! bump when enabled; this bench keeps that claim honest, mirroring the
//! tracing-overhead bench.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nbody_metrics::MetricsRecorder;
use nbody_trace::Phase;

fn bench_disabled(c: &mut Criterion) {
    let rec = MetricsRecorder::disabled();
    let msgs = rec.counter("comm_send_messages", Some(Phase::Shift));
    let sizes = rec.histogram("comm_message_size_bytes", Some(Phase::Shift));
    c.bench_function("metrics_disabled_send_path", |b| {
        b.iter(|| {
            msgs.add(black_box(1));
            sizes.observe(black_box(5200));
        })
    });
}

fn bench_enabled(c: &mut Criterion) {
    let rec = MetricsRecorder::for_rank(0);
    let msgs = rec.counter("comm_send_messages", Some(Phase::Shift));
    let sizes = rec.histogram("comm_message_size_bytes", Some(Phase::Shift));
    c.bench_function("metrics_enabled_send_path", |b| {
        b.iter(|| {
            msgs.add(black_box(1));
            sizes.observe(black_box(5200));
        })
    });
}

fn bench_registration(c: &mut Criterion) {
    c.bench_function("metrics_find_or_register", |b| {
        let rec = MetricsRecorder::for_rank(0);
        b.iter(|| {
            let h = rec.counter(black_box("comm_send_bytes"), Some(Phase::Reduce));
            h.add(1);
        })
    });
}

criterion_group!(benches, bench_disabled, bench_enabled, bench_registration);
criterion_main!(benches);
