//! Microbenchmarks of the threaded message-passing runtime: point-to-point
//! latency/bandwidth, ring shifts, and tree collectives — the α and β
//! terms of the real (in-process) transport.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbody_comm::{run_ranks, sum_combine, Communicator};

fn bench_p2p_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2p_roundtrip");
    group.sample_size(20);
    for bytes in [64usize, 4096, 65536] {
        group.throughput(Throughput::Bytes(2 * bytes as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bytes), &bytes, |bench, &sz| {
            bench.iter(|| {
                run_ranks(2, |comm| {
                    let payload = vec![0u8; sz];
                    if comm.rank() == 0 {
                        comm.send(1, 1, &payload);
                        let _ = comm.recv::<u8>(1, 2);
                    } else {
                        let got = comm.recv::<u8>(0, 1);
                        comm.send(0, 2, &got);
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_ring_shift(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_shift_16steps");
    group.sample_size(15);
    for p in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |bench, &p| {
            bench.iter(|| {
                run_ranks(p, |comm| {
                    let mut buf = vec![comm.rank() as u64; 64];
                    for s in 0..16u64 {
                        buf = comm.sendrecv(
                            (comm.rank() + 1) % p,
                            (comm.rank() + p - 1) % p,
                            s,
                            &buf,
                        );
                    }
                    buf[0]
                })
            })
        });
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_p8");
    group.sample_size(15);
    group.bench_function("bcast_4k", |bench| {
        bench.iter(|| {
            run_ranks(8, |comm| {
                let mut buf = if comm.rank() == 0 {
                    vec![7u8; 4096]
                } else {
                    Vec::new()
                };
                comm.bcast(0, &mut buf);
                buf.len()
            })
        })
    });
    group.bench_function("reduce_4k", |bench| {
        bench.iter(|| {
            run_ranks(8, |comm| {
                let mut buf = vec![comm.rank() as u64; 512];
                comm.reduce(0, &mut buf, sum_combine);
                buf[0]
            })
        })
    });
    group.bench_function("barrier_x8", |bench| {
        bench.iter(|| {
            run_ranks(8, |comm| {
                for _ in 0..8 {
                    comm.barrier();
                }
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_p2p_roundtrip,
    bench_ring_shift,
    bench_collectives
);
criterion_main!(benches);
