//! End-to-end benchmark of one CA all-pairs force evaluation on the real
//! threaded runtime, sweeping the replication factor — the in-process
//! analogue of Fig. 2 (at laptop scale, compute dominates; the point is to
//! exercise the true code path, not to reproduce the cluster curves, which
//! the `fig2` binary does via simulation).

use ca_nbody::dist::id_block_subset;
use ca_nbody::{ca_all_pairs_forces, GridComms, ProcGrid};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbody_comm::{run_ranks, run_ranks_traced};
use nbody_physics::{init, Boundary, Domain, RepulsiveInverseSquare};

fn bench_ca_all_pairs(crit: &mut Criterion) {
    let domain = Domain::unit();
    let law = RepulsiveInverseSquare::default();
    let n = 1024;

    let mut group = crit.benchmark_group("ca_all_pairs_step_n1024");
    group.sample_size(10);
    for (p, c) in [(4usize, 1usize), (4, 2), (16, 2), (16, 4)] {
        let grid = ProcGrid::new_all_pairs(p, c).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p{p}_c{c}")),
            &grid,
            |bench, &grid| {
                bench.iter(|| {
                    run_ranks(p, |world| {
                        let gc = GridComms::new(world, grid);
                        let all = init::uniform(n, &domain, 5);
                        let mut st = if gc.is_leader() {
                            id_block_subset(&all, grid.teams(), gc.team())
                        } else {
                            Vec::new()
                        };
                        ca_all_pairs_forces(&gc, &mut st, &law, &domain, Boundary::Open);
                        st.len()
                    })
                })
            },
        );
    }
    group.finish();
}

/// Tracing overhead check: the same step with the tracer disabled (the
/// default `run_ranks` path, which threads a no-op handle everywhere) vs
/// enabled. The disabled variant is the regression guard — it must stay
/// within noise of the seed's pre-tracing numbers.
fn bench_tracing_overhead(crit: &mut Criterion) {
    let domain = Domain::unit();
    let law = RepulsiveInverseSquare::default();
    let n = 1024;
    let (p, c) = (4usize, 2usize);
    let grid = ProcGrid::new_all_pairs(p, c).unwrap();

    let step = |world: &mut nbody_comm::ThreadComm| {
        let gc = GridComms::new(world, grid);
        let all = init::uniform(n, &domain, 5);
        let mut st = if gc.is_leader() {
            id_block_subset(&all, grid.teams(), gc.team())
        } else {
            Vec::new()
        };
        ca_all_pairs_forces(&gc, &mut st, &law, &domain, Boundary::Open);
        st.len()
    };

    let mut group = crit.benchmark_group("tracing_overhead_p4_c2_n1024");
    group.sample_size(10);
    group.bench_function("disabled", |bench| bench.iter(|| run_ranks(p, step)));
    group.bench_function("enabled", |bench| {
        bench.iter(|| run_ranks_traced(p, step).1.spans.len())
    });
    group.finish();
}

fn bench_serial_baseline(crit: &mut Criterion) {
    let domain = Domain::unit();
    let law = RepulsiveInverseSquare::default();
    let mut ps = init::uniform(1024, &domain, 5);
    crit.bench_function("serial_step_n1024", |bench| {
        bench.iter(|| {
            nbody_physics::particle::reset_forces(&mut ps);
            nbody_physics::reference::accumulate_forces(&mut ps, &law, &domain, Boundary::Open);
        })
    });
}

criterion_group!(
    benches,
    bench_ca_all_pairs,
    bench_tracing_overhead,
    bench_serial_baseline
);
criterion_main!(benches);
