//! Microbenchmarks of the pairwise force kernels — the γ term of the cost
//! model. The measured per-interaction cost on the host machine can be
//! compared with the calibrated `gamma` of the Hopper/Intrepid models.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbody_physics::{
    init, Boundary, Counting, Cutoff, Domain, ForceLaw, Gravity, LennardJones,
    RepulsiveInverseSquare,
};

fn bench_pair_kernels(c: &mut Criterion) {
    let domain = Domain::unit();
    let ps = init::uniform(2, &domain, 1);
    let (a, b) = (ps[0], ps[1]);
    let disp = b.pos - a.pos;

    let mut group = c.benchmark_group("pair_force");
    group.bench_function("repulsive_inverse_square", |bench| {
        let law = RepulsiveInverseSquare::default();
        bench.iter(|| law.force(black_box(&a), black_box(&b), black_box(disp)))
    });
    group.bench_function("gravity", |bench| {
        let law = Gravity::default();
        bench.iter(|| law.force(black_box(&a), black_box(&b), black_box(disp)))
    });
    group.bench_function("lennard_jones", |bench| {
        let law = LennardJones::default();
        bench.iter(|| law.force(black_box(&a), black_box(&b), black_box(disp)))
    });
    group.bench_function("cutoff_wrapped", |bench| {
        let law = Cutoff::new(RepulsiveInverseSquare::default(), 0.5);
        bench.iter(|| law.force(black_box(&a), black_box(&b), black_box(disp)))
    });
    group.bench_function("counting", |bench| {
        bench.iter(|| Counting.force(black_box(&a), black_box(&b), black_box(disp)))
    });
    group.finish();
}

fn bench_block_kernel(c: &mut Criterion) {
    let domain = Domain::unit();
    let law = RepulsiveInverseSquare::default();
    let mut group = c.benchmark_group("accumulate_block");
    for size in [32usize, 128, 512] {
        let sources = init::uniform(size, &domain, 7);
        let mut targets = init::uniform(size, &domain, 8);
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| {
                ca_nbody::kernel::accumulate_block(
                    black_box(&mut targets),
                    black_box(&sources),
                    &law,
                    &domain,
                    Boundary::Open,
                )
            })
        });
    }
    group.finish();
}

fn bench_serial_reference(c: &mut Criterion) {
    let domain = Domain::unit();
    let law = RepulsiveInverseSquare::default();
    let mut ps = init::uniform(256, &domain, 3);
    c.bench_function("serial_all_pairs_256", |bench| {
        bench.iter(|| {
            nbody_physics::particle::reset_forces(&mut ps);
            nbody_physics::reference::accumulate_forces(
                black_box(&mut ps),
                &law,
                &domain,
                Boundary::Open,
            )
        })
    });

    let cutoff_law = Cutoff::new(RepulsiveInverseSquare::default(), 0.1);
    let mut ps2 = init::uniform(2048, &domain, 4);
    c.bench_function("cell_list_cutoff_2048", |bench| {
        bench.iter(|| {
            nbody_physics::particle::reset_forces(&mut ps2);
            nbody_physics::cell_list::accumulate_forces_cell_list(
                black_box(&mut ps2),
                &cutoff_law,
                &domain,
                Boundary::Open,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_pair_kernels,
    bench_block_kernel,
    bench_serial_reference
);
criterion_main!(benches);
