//! Overhead of the always-on flight recorder.
//!
//! The timeline design claims the flight-recorder event ring is cheap
//! enough to leave on in every normal run: `run_ranks` carries an enabled
//! ring on every rank while step sampling stays off, so the only cost a
//! fault-free evaluation pays is the per-rank recorder allocation and the
//! (never-taken) enabled checks. Comparing a full CA all-pairs evaluation
//! through `run_ranks` (ring on) against `run_ranks_silent` (ring off)
//! keeps that claim honest — the delta must stay within noise.
//!
//! The third benchmark prices the hot path itself: `step_mark` plus a
//! recorded event per iteration on an enabled recorder, the worst case a
//! traced run pays per timestep.

use ca_nbody::dist::id_block_subset;
use ca_nbody::{ca_all_pairs_forces, GridComms, ProcGrid};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nbody_comm::{run_ranks, run_ranks_silent, Communicator, EventKind};
use nbody_physics::{init, Boundary, Domain, Particle, RepulsiveInverseSquare};

const P: usize = 4;
const C: usize = 2;
const N: usize = 128;

fn law() -> RepulsiveInverseSquare {
    RepulsiveInverseSquare {
        strength: 1e-3,
        softening: 1e-3,
    }
}

fn eval<C2: Communicator>(world: &C2, grid: ProcGrid, initial: &[Particle]) -> usize {
    let domain = Domain::unit();
    let gc = GridComms::new(world, grid);
    let mut st: Vec<Particle> = if gc.is_leader() {
        id_block_subset(initial, grid.teams(), gc.team())
    } else {
        Vec::new()
    };
    ca_all_pairs_forces(&gc, &mut st, &law(), &domain, Boundary::Reflective);
    st.len()
}

fn bench_eval_flight_on(c: &mut Criterion) {
    let grid = ProcGrid::new_all_pairs(P, C).unwrap();
    let initial = init::uniform(N, &Domain::unit(), 42);
    c.bench_function("allpairs_eval_flight_recorder_on", |b| {
        b.iter(|| black_box(run_ranks(P, |world| eval(world, grid, &initial))))
    });
}

fn bench_eval_flight_off(c: &mut Criterion) {
    let grid = ProcGrid::new_all_pairs(P, C).unwrap();
    let initial = init::uniform(N, &Domain::unit(), 42);
    c.bench_function("allpairs_eval_flight_recorder_off", |b| {
        b.iter(|| black_box(run_ranks_silent(P, |world| eval(world, grid, &initial))))
    });
}

const RECORD_ROUNDS: u64 = 10_000;

fn bench_record_hot_path(c: &mut Criterion) {
    c.bench_function("flight_ring_mark_and_event", |b| {
        b.iter(|| {
            run_ranks(1, |world| {
                let tl = world.timeline();
                for step in 0..RECORD_ROUNDS {
                    tl.step_mark(step);
                    tl.event(EventKind::Checkpoint, Some(step), "bench");
                }
            });
            black_box(())
        })
    });
}

criterion_group!(
    benches,
    bench_eval_flight_on,
    bench_eval_flight_off,
    bench_record_hot_path
);
criterion_main!(benches);
