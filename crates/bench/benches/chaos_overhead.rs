//! Overhead of the fault-injection layer when no faults are scheduled.
//!
//! The recovery design claims that resilience is pay-as-you-go: a
//! `ChaosComm` wrapper with an empty `FaultPlan` and the deadline-capable
//! receive path must add no measurable cost to a force evaluation, so the
//! fault-tolerant drivers can be the default in chaos-capable deployments.
//! Two comparisons keep that honest:
//!
//! * a full CA all-pairs evaluation through the plain driver on the plain
//!   transport vs. the fault-tolerant driver under `ChaosComm` with an
//!   empty plan (both pay the same thread spawn; the delta is the wrapper
//!   plus checkpoint/agreement), and
//! * a tight two-rank ping-pong through `recv` vs. `try_recv_timeout`
//!   (the per-message cost of deadline arithmetic on the hot path).

use ca_nbody::dist::id_block_subset;
use ca_nbody::recovery::{ca_all_pairs_forces_ft, RetryPolicy};
use ca_nbody::{ca_all_pairs_forces, GridComms, ProcGrid};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nbody_comm::{run_ranks, run_ranks_chaos, Communicator, FaultPlan};
use nbody_physics::{init, Boundary, Domain, Particle, RepulsiveInverseSquare};

const P: usize = 4;
const C: usize = 2;
const N: usize = 128;

fn law() -> RepulsiveInverseSquare {
    RepulsiveInverseSquare {
        strength: 1e-3,
        softening: 1e-3,
    }
}

fn bench_eval_plain(c: &mut Criterion) {
    let domain = Domain::unit();
    let grid = ProcGrid::new_all_pairs(P, C).unwrap();
    let initial = init::uniform(N, &domain, 42);
    c.bench_function("allpairs_eval_plain_transport", |b| {
        b.iter(|| {
            let out = run_ranks(P, |world| {
                let gc = GridComms::new(world, grid);
                let mut st: Vec<Particle> = if gc.is_leader() {
                    id_block_subset(&initial, grid.teams(), gc.team())
                } else {
                    Vec::new()
                };
                ca_all_pairs_forces(&gc, &mut st, &law(), &domain, Boundary::Reflective);
                st.len()
            });
            black_box(out)
        })
    });
}

fn bench_eval_chaos_empty(c: &mut Criterion) {
    let domain = Domain::unit();
    let grid = ProcGrid::new_all_pairs(P, C).unwrap();
    let initial = init::uniform(N, &domain, 42);
    let plan = FaultPlan::empty();
    c.bench_function("allpairs_eval_chaos_empty_plan", |b| {
        b.iter(|| {
            let out = run_ranks_chaos(P, &plan, |world| {
                let gc = GridComms::new(world, grid);
                let mut st: Vec<Particle> = if gc.is_leader() {
                    id_block_subset(&initial, grid.teams(), gc.team())
                } else {
                    Vec::new()
                };
                ca_all_pairs_forces_ft(
                    &gc,
                    &mut st,
                    &law(),
                    &domain,
                    Boundary::Reflective,
                    &RetryPolicy::default(),
                    0,
                )
                .expect("no faults scheduled");
                st.len()
            });
            black_box(out)
        })
    });
}

const PINGPONG_ROUNDS: usize = 2000;
const MSG_LEN: usize = 64;

fn bench_pingpong_recv(c: &mut Criterion) {
    c.bench_function("pingpong_blocking_recv", |b| {
        b.iter(|| {
            run_ranks(2, |world| {
                let peer = 1 - world.rank();
                let data = vec![0u64; MSG_LEN];
                for i in 0..PINGPONG_ROUNDS {
                    world.send(peer, i as u64, &data);
                    black_box(world.recv::<u64>(peer, i as u64));
                }
            })
        })
    });
}

fn bench_pingpong_try_recv_timeout(c: &mut Criterion) {
    let timeout = std::time::Duration::from_secs(5);
    c.bench_function("pingpong_try_recv_timeout", |b| {
        b.iter(|| {
            run_ranks(2, |world| {
                let peer = 1 - world.rank();
                let data = vec![0u64; MSG_LEN];
                for i in 0..PINGPONG_ROUNDS {
                    world.send(peer, i as u64, &data);
                    black_box(
                        world
                            .try_recv_timeout::<u64>(peer, i as u64, timeout)
                            .expect("peer is alive"),
                    );
                }
            })
        })
    });
}

criterion_group!(
    benches,
    bench_eval_plain,
    bench_eval_chaos_empty,
    bench_pingpong_recv,
    bench_pingpong_try_recv_timeout
);
criterion_main!(benches);
