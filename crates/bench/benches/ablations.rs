//! Ablation studies of the design choices DESIGN.md calls out. A custom
//! (non-Criterion) harness: each ablation compares *simulated makespans*
//! under model or algorithm variants, which is a comparison of outcomes,
//! not of wall time.
//!
//! 1. **Shift transport**: point-to-point shifts vs. DCMF bidirectional
//!    broadcast-shifts (the paper's Intrepid optimization, §III.C).
//! 2. **Collective saturation**: with the saturation term removed,
//!    collectives scale logarithmically and maximal replication always
//!    wins — demonstrating why the paper treats `c` as a tuning parameter.
//! 3. **Hardware tree network**: the naive baseline with and without the
//!    BlueGene/P collective network (Fig. 2c/2d's tree vs. no-tree).
//! 4. **Replication window constraint**: cutoff makespan as `c`
//!    approaches the window bound `c ≤ W`.

use ca_nbody::schedule::{
    AllPairsParams, AllgatherParams, CutoffParams, MidpointParams, SpatialHaloParams,
};
use ca_nbody::{ProcGrid, Window, Window1d};
use nbody_comm::Phase;
use nbody_netsim::{intrepid, simulate, CollNet};

fn main() {
    shift_transport();
    collective_saturation();
    tree_network();
    window_constraint();
    decomposition_families();
    dimensionality();
}

fn shift_transport() {
    println!("=== Ablation 1: p2p shifts vs DCMF broadcast-shifts (Intrepid) ===");
    // Large blocks so shifts are bandwidth-bound (where bidirectionality
    // pays); with tiny messages the gain vanishes into latency.
    let p = 2048;
    let n = 2_097_152;
    let mut with = intrepid();
    with.bidirectional_shift = true;
    let mut without = intrepid();
    without.bidirectional_shift = false;
    let shift_time = |rep: &nbody_netsim::SimReport| {
        let m = rep.mean();
        m.phase(Phase::Skew) + m.phase(Phase::Shift)
    };
    println!(
        "{:>6} {:>16} {:>16} {:>8}",
        "c", "shift p2p (s)", "shift dcmf (s)", "gain"
    );
    for c in [1usize, 2, 4, 8] {
        let params = AllPairsParams::new(p, c, n);
        let t_p2p = shift_time(&simulate(&without, p, |r| params.program(r)));
        let t_dcmf = shift_time(&simulate(&with, p, |r| params.program(r)));
        println!(
            "{:>6} {:>16.6} {:>16.6} {:>7.1}%",
            c,
            t_p2p,
            t_dcmf,
            100.0 * (t_p2p - t_dcmf) / t_p2p
        );
        assert!(t_dcmf <= t_p2p, "bidirectional shifts can only help");
    }
    println!("  (bandwidth-bound shifts gain towards 2x, as on the real bidirectional torus)\n");
}

fn collective_saturation() {
    println!("=== Ablation 2: collective saturation on/off (Intrepid model) ===");
    let p = 2048;
    let n = 16384;
    let sat = intrepid();
    let mut ideal = intrepid();
    ideal.coll_saturation = 0.0;
    let mut best_sat = (0usize, f64::INFINITY);
    let mut best_ideal = (0usize, f64::INFINITY);
    println!("{:>6} {:>16} {:>16}", "c", "saturating (s)", "ideal-log (s)");
    for c in [1usize, 2, 4, 8, 16, 32] {
        if p % (c * c) != 0 {
            continue;
        }
        let params = AllPairsParams::new(p, c, n);
        let t_sat = simulate(&sat, p, |r| params.program(r)).makespan;
        let t_ideal = simulate(&ideal, p, |r| params.program(r)).makespan;
        println!("{:>6} {:>16.6} {:>16.6}", c, t_sat, t_ideal);
        if t_sat < best_sat.1 {
            best_sat = (c, t_sat);
        }
        if t_ideal < best_ideal.1 {
            best_ideal = (c, t_ideal);
        }
    }
    println!(
        "  best c: saturating model {} | ideal collectives {}",
        best_sat.0, best_ideal.0
    );
    assert!(
        best_ideal.0 >= best_sat.0,
        "ideal collectives push the optimum towards max replication"
    );
    println!("  (the interior optimum of Fig. 2 exists *because* collectives saturate)\n");
}

fn tree_network() {
    println!("=== Ablation 3: naive baseline with/without the BG/P tree network ===");
    let p = 2048;
    let n = 16384;
    let m = intrepid();
    for (label, net) in [("tree", CollNet::HwTree), ("no-tree", CollNet::Torus)] {
        let params = AllgatherParams { p, n, net };
        let rep = simulate(&m, p, |r| params.program(r));
        println!("  c=1 ({label:8}): {:.6} s", rep.makespan);
    }
    let ca = AllPairsParams::new(p, 4, n);
    let t_ca = simulate(&m, p, |r| ca.program(r)).makespan;
    println!("  CA c=4 (torus) : {t_ca:.6} s");
    println!("  (the CA algorithm on the torus beats even the hardware-assisted naive run)\n");
}

fn window_constraint() {
    println!("=== Ablation 4: cutoff makespan as c approaches the window bound ===");
    let p = 4096;
    let n = 32768;
    println!("{:>6} {:>8} {:>8} {:>14}", "c", "teams", "W", "makespan (s)");
    for c in [1usize, 2, 4, 8, 16, 32, 64] {
        if p % c != 0 {
            continue;
        }
        let grid = ProcGrid::new(p, c).unwrap();
        let teams = grid.teams();
        let m = teams / 4 + 1;
        let window = Window1d::new(teams, m);
        if ca_nbody::cutoff::validate_cutoff(&window, teams, c).is_err() {
            println!("{:>6} {:>8} {:>8} {:>14}", c, teams, window.len(), "invalid");
            continue;
        }
        let sizes = vec![n / teams; teams];
        let params = CutoffParams::new(grid, window, sizes);
        let rep = simulate(&intrepid(), p, |r| params.program(r));
        println!("{:>6} {:>8} {:>8} {:>14.6}", c, teams, window.len(), rep.makespan);
    }
    println!("  (c must fit inside the interaction window: the paper's c <= 2m constraint)");
}


/// §II.C/§II.D landscape, simulated: the spatial halo (no replication),
/// the midpoint method (half import region + force return), and the CA
/// cutoff algorithm at several replication factors, all on the same
/// decomposed workload.
fn decomposition_families() {
    println!("=== Ablation 5: cutoff decomposition families (Hopper model) ===");
    let machine = nbody_netsim::hopper();
    let p = 4096;
    let n = 65536;
    let domain = nbody_physics::Domain::unit();
    let r_c = 0.25;
    let sizes = vec![n / p; p];

    let halo = SpatialHaloParams {
        window: Window1d::from_cutoff(&domain, p, r_c),
        block_sizes: sizes.clone(),
    };
    let t_halo = simulate(&machine, p, |r| halo.program(r)).makespan;
    println!("  spatial halo (c=1)    : {t_halo:.6} s");

    let midpoint = MidpointParams {
        window: Window1d::from_cutoff(&domain, p, r_c / 2.0),
        block_sizes: sizes.clone(),
    };
    let t_mid = simulate(&machine, p, |r| midpoint.program(r)).makespan;
    println!("  midpoint method (c=1) : {t_mid:.6} s");

    for c in [2usize, 4, 8] {
        let grid = ProcGrid::new(p, c).unwrap();
        let teams = grid.teams();
        let window = Window1d::from_cutoff(&domain, teams, r_c);
        if ca_nbody::cutoff::validate_cutoff(&window, teams, c).is_err() {
            continue;
        }
        let team_sizes = vec![n / teams; teams];
        let params = CutoffParams::new(grid, window, team_sizes);
        let t = simulate(&machine, p, |r| params.program(r)).makespan;
        println!("  CA cutoff c={c:<2}        : {t:.6} s");
    }
    println!(
        "  (the NT-family midpoint method shrinks the import region; the CA \
         algorithm instead spends memory on replication — §II.D vs §IV)"
    );
}

/// §IV.C: communication across dimensionalities. Same p, same rc fraction;
/// the neighbor count — and with it the shift traffic of the c=1
/// algorithm — grows exponentially with d, and replication claws it back.
fn dimensionality() {
    use ca_nbody::{Window2d, Window3d};
    println!("\n=== Ablation 6: window dimensionality (Hopper model, p=4096, rc=l/8) ===");
    let machine = nbody_netsim::hopper();
    let p = 4096usize;
    let n = 65_536usize;
    let rc = 0.125;
    println!(
        "{:>4} {:>6} {:>10} {:>14} {:>14}",
        "dim", "c", "window W", "shift msgs", "makespan (s)"
    );
    for c in [1usize, 4] {
        let grid = ProcGrid::new(p, c).unwrap();
        let teams = grid.teams();
        let sizes = vec![n / teams; teams];

        // 1D: teams slabs.
        let w1 = Window1d::from_cutoff(&nbody_physics::Domain::unit(), teams, rc);
        report_dim(&machine, 1, c, grid, &w1, &sizes);

        // 2D: square grid of teams.
        let side2 = (teams as f64).sqrt() as usize;
        if side2 * side2 == teams {
            let w2 = Window2d::from_cutoff(&nbody_physics::Domain::unit(), side2, side2, rc);
            report_dim(&machine, 2, c, grid, &w2, &sizes);
        }

        // 3D: cubic grid of teams.
        let side3 = (teams as f64).cbrt().round() as usize;
        if side3 * side3 * side3 == teams {
            let w3 = Window3d::from_cutoff([side3, side3, side3], rc);
            report_dim(&machine, 3, c, grid, &w3, &sizes);
        }
    }
    println!(
        "  (the c=1 shift count tracks the window size W = O((2m+1)^d); \
         §IV.C: avoidance matters more in higher dimensions)"
    );
}

fn report_dim<W: Window>(
    machine: &nbody_netsim::Machine,
    dim: u32,
    c: usize,
    grid: ProcGrid,
    window: &W,
    sizes: &[usize],
) {
    if ca_nbody::cutoff::validate_cutoff(window, grid.teams(), c).is_err() {
        return;
    }
    let params = CutoffParams::new(grid, window.clone(), sizes.to_vec());
    let rep = simulate(machine, grid.p(), |r| params.program(r));
    let shift_msgs = ca_nbody::schedule::count_ops(params.program(grid.teams() / 2))
        .sends[Phase::Shift.index()];
    println!(
        "{:>4} {:>6} {:>10} {:>14} {:>14.6}",
        dim,
        c,
        window.len(),
        shift_msgs,
        rep.makespan
    );
}
