//! Shared harness for regenerating the paper's figures.
//!
//! Each `fig*` binary sweeps the paper's exact experimental parameters,
//! replays the algorithms' communication schedules through the calibrated
//! machine models, and prints the same series the paper plots (stacked
//! per-phase time breakdowns for Figs. 2 and 6, parallel-efficiency curves
//! for Figs. 3 and 7), plus the derived headline claims of §V. Results are
//! also written as CSV under `bench_results/`.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use ca_nbody::dist::{block_range, team_grid_dims, team_of_x, team_of_xy};
use ca_nbody::schedule::{AllPairsParams, AllgatherParams, CutoffParams, ReassignModel};
use ca_nbody::{ProcGrid, Window1d, Window2d};
use nbody_comm::Phase;
use nbody_netsim::{simulate, CollNet, Machine, SimReport};
use nbody_trace::schema::{breakdown_csv, breakdown_json, BreakdownRow};
use nbody_physics::particle::PARTICLE_WIRE_BYTES;
use nbody_physics::{init, Domain};

/// One data point of a breakdown figure (a stacked bar of Fig. 2/6).
#[derive(Debug, Clone)]
pub struct FigRow {
    /// Bar label (`c=4`, `c=1 (tree)`, …).
    pub label: String,
    /// Mean compute seconds per rank.
    pub compute: f64,
    /// Mean broadcast seconds (the paper omits this negligible phase).
    pub broadcast: f64,
    /// Mean shift seconds (skew folded in, as in the paper's "shift").
    pub shift: f64,
    /// Mean reduce seconds.
    pub reduce: f64,
    /// Mean re-assignment seconds (cutoff figures only).
    pub reassign: f64,
    /// Virtual makespan of the timestep.
    pub makespan: f64,
    /// Sum of compute seconds over all ranks (for efficiency computations).
    pub total_compute_secs: f64,
}

impl FigRow {
    /// Build a row from a simulation report.
    pub fn from_report(label: impl Into<String>, rep: &SimReport) -> Self {
        let mean = rep.mean();
        let total_compute: f64 = rep.per_rank.iter().map(|b| b.compute).sum();
        FigRow {
            label: label.into(),
            compute: mean.compute,
            broadcast: mean.phase(Phase::Broadcast),
            shift: mean.phase(Phase::Skew) + mean.phase(Phase::Shift),
            reduce: mean.phase(Phase::Reduce),
            reassign: mean.phase(Phase::Reassign),
            makespan: rep.makespan,
            total_compute_secs: total_compute,
        }
    }

    /// Total communication per the paper's accounting (shift + reduce +
    /// re-assign; broadcast is negligible but included).
    pub fn comm(&self) -> f64 {
        self.broadcast + self.shift + self.reduce + self.reassign
    }

    /// Parallel efficiency vs. one core on `p` ranks:
    /// `T₁ / (p · T_p)` with `T₁ = Σ compute` (identical arithmetic on one
    /// core, no communication).
    pub fn efficiency(&self, p: usize) -> f64 {
        self.total_compute_secs / (p as f64 * self.makespan)
    }

    /// This point in the shared breakdown schema (the format measured
    /// executions also export to).
    pub fn to_breakdown_row(&self) -> BreakdownRow {
        BreakdownRow {
            label: self.label.clone(),
            compute: self.compute,
            shift: self.shift,
            reduce: self.reduce,
            reassign: self.reassign,
            broadcast: self.broadcast,
            makespan: self.makespan,
        }
    }
}

/// Simulate one CA all-pairs data point.
pub fn run_all_pairs_point(machine: &Machine, p: usize, n: usize, c: usize) -> FigRow {
    let params = AllPairsParams::new(p, c, n);
    let rep = simulate(machine, p, |r| params.program(r));
    FigRow::from_report(format!("c={c}"), &rep)
}

/// Simulate the naive allgather baseline, optionally on the hardware
/// collective network (the `c=1 (tree)` bars of Fig. 2c/2d).
pub fn run_allgather_point(machine: &Machine, p: usize, n: usize, tree: bool) -> FigRow {
    let params = AllgatherParams {
        p,
        n,
        net: if tree { CollNet::HwTree } else { CollNet::Torus },
    };
    let rep = simulate(machine, p, |r| params.program(r));
    let label = if tree { "c=1 (tree)" } else { "c=1 (no-tree)" };
    FigRow::from_report(label, &rep)
}

/// Fraction of a team's particles assumed to migrate per step (drives the
/// re-assignment traffic model).
pub const MIGRATION_FRACTION: f64 = 0.05;

/// Simulate one CA cutoff data point (`dim` = 1 or 2). Returns `None` when
/// `c` is invalid for the configuration (does not divide `p`, or exceeds
/// the interaction window).
pub fn run_cutoff_point(
    machine: &Machine,
    dim: u32,
    p: usize,
    n: usize,
    c: usize,
    rc_fraction: f64,
) -> Option<FigRow> {
    let domain = Domain::unit();
    let grid = ProcGrid::new(p, c).ok()?;
    let teams = grid.teams();
    let r_c = rc_fraction * domain.length_x();
    let avg_block = n / teams.max(1);
    let reassign = ReassignModel {
        bytes: ((avg_block as f64 * MIGRATION_FRACTION) as u64).max(1)
            * PARTICLE_WIRE_BYTES as u64,
    };

    // Bin an actual sampled distribution so boundary windows and count
    // fluctuations produce the load imbalance the paper describes.
    let rep = if dim == 1 {
        let window = Window1d::from_cutoff(&domain, teams, r_c);
        ca_nbody::cutoff::validate_cutoff(&window, teams, c).ok()?;
        let sizes = sampled_block_sizes_1d(n, teams);
        let params = CutoffParams::new(grid, window, sizes).with_reassign(reassign);
        simulate(machine, p, |r| params.program(r))
    } else {
        let (tx, ty) = team_grid_dims(teams);
        let window = Window2d::from_cutoff(&domain, tx, ty, r_c);
        ca_nbody::cutoff::validate_cutoff(&window, teams, c).ok()?;
        let sizes = sampled_block_sizes_2d(n, tx, ty);
        let params = CutoffParams::new(grid, window, sizes).with_reassign(reassign);
        simulate(machine, p, |r| params.program(r))
    };
    Some(FigRow::from_report(format!("c={c}"), &rep))
}

/// Per-team particle counts of a sampled uniform distribution on 1D slabs.
pub fn sampled_block_sizes_1d(n: usize, teams: usize) -> Vec<usize> {
    let (sample_n, scale) = sample_plan(n);
    let domain = Domain::unit();
    let ps = init::uniform_1d(sample_n, &domain, 0xC0FFEE);
    let mut sizes = vec![0usize; teams];
    for q in &ps {
        sizes[team_of_x(&domain, teams, q.pos.x)] += 1;
    }
    sizes.iter().map(|&s| s * scale).collect()
}

/// Per-team particle counts of a sampled uniform distribution on a 2D grid.
pub fn sampled_block_sizes_2d(n: usize, tx: usize, ty: usize) -> Vec<usize> {
    let (sample_n, scale) = sample_plan(n);
    let domain = Domain::unit();
    let ps = init::uniform(sample_n, &domain, 0xC0FFEE);
    let mut sizes = vec![0usize; tx * ty];
    for q in &ps {
        sizes[team_of_xy(&domain, tx, ty, q.pos.x, q.pos.y)] += 1;
    }
    sizes.iter().map(|&s| s * scale).collect()
}

fn sample_plan(n: usize) -> (usize, usize) {
    const CAP: usize = 1 << 20;
    if n <= CAP {
        (n, 1)
    } else {
        let scale = n.div_ceil(CAP);
        (n / scale, scale)
    }
}

/// Uniform id-block sizes (all-pairs distribution).
pub fn uniform_block_sizes(n: usize, teams: usize) -> Vec<usize> {
    (0..teams).map(|t| block_range(n, teams, t).len()).collect()
}

/// Valid all-pairs replication factors among the requested candidates.
pub fn valid_all_pairs_cs(p: usize, candidates: &[usize]) -> Vec<usize> {
    let valid = ProcGrid::valid_all_pairs_factors(p);
    candidates
        .iter()
        .copied()
        .filter(|c| valid.contains(c))
        .collect()
}

/// Print a paper-style breakdown table and write it as CSV (shared
/// breakdown schema) plus a structured JSON sidecar (same rows, `.json`
/// next to the `.csv`).
pub fn emit_breakdown(title: &str, csv_name: &str, rows: &[FigRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "series", "compute(s)", "shift(s)", "reduce(s)", "re-assign(s)", "bcast(s)", "total(s)"
    );
    for r in rows {
        println!(
            "{:<14} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            r.label, r.compute, r.shift, r.reduce, r.reassign, r.broadcast, r.makespan
        );
    }
    let schema_rows: Vec<BreakdownRow> = rows.iter().map(FigRow::to_breakdown_row).collect();
    write_csv(csv_name, &breakdown_csv(&schema_rows));
    let json_name = csv_name
        .strip_suffix(".csv")
        .map_or_else(|| format!("{csv_name}.json"), |stem| format!("{stem}.json"));
    write_csv(&json_name, &breakdown_json(&schema_rows));
}

/// Print a strong-scaling efficiency table (rows = machine sizes, columns =
/// replication factors) and write it as CSV. `cells[i][j]` is the
/// efficiency at `ps[i]`, `cs[j]` (`None` = invalid configuration).
pub fn emit_efficiency(
    title: &str,
    csv_name: &str,
    ps: &[usize],
    cs: &[usize],
    cells: &[Vec<Option<f64>>],
) {
    println!("\n=== {title} ===");
    print!("{:<12}", "cores");
    for c in cs {
        print!(" {:>10}", format!("c={c}"));
    }
    println!();
    let mut csv = String::from("cores");
    for c in cs {
        let _ = write!(csv, ",c={c}");
    }
    csv.push('\n');
    for (i, p) in ps.iter().enumerate() {
        print!("{:<12}", p);
        let _ = write!(csv, "{p}");
        for cell in &cells[i] {
            match cell {
                Some(e) => {
                    print!(" {:>10.3}", e);
                    let _ = write!(csv, ",{e}");
                }
                None => {
                    print!(" {:>10}", "-");
                    let _ = write!(csv, ",");
                }
            }
        }
        println!();
        csv.push('\n');
    }
    write_csv(csv_name, &csv);
}

/// Write a CSV file under `bench_results/`.
pub fn write_csv(name: &str, contents: &str) {
    let dir = Path::new("bench_results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join(name);
        if let Err(e) = fs::write(&path, contents) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("  -> bench_results/{name}");
        }
    }
}

/// Scale configuration: `--quick` divides processor and particle counts by
/// 16 so the full suite runs in seconds (shapes are preserved; see
/// EXPERIMENTS.md for full-scale outputs).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Divider applied to `p` and `n`.
    pub div: usize,
}

impl Scale {
    /// Parse `--quick` / `--scale <d>` from the command line.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let mut div = 1;
        for (i, a) in args.iter().enumerate() {
            if a == "--quick" {
                div = 16;
            }
            if a == "--scale" {
                div = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs an integer divider");
            }
        }
        Scale { div }
    }

    /// Apply to a processor count.
    pub fn p(&self, p: usize) -> usize {
        (p / self.div).max(16)
    }

    /// Apply to a particle count.
    pub fn n(&self, n: usize) -> usize {
        (n / self.div).max(64)
    }

    /// Suffix for titles/CSV names when scaled down.
    pub fn tag(&self) -> String {
        if self.div == 1 {
            String::new()
        } else {
            format!(" (scaled 1/{})", self.div)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_netsim::hopper;

    #[test]
    fn all_pairs_point_has_sane_breakdown() {
        let row = run_all_pairs_point(&hopper(), 64, 512, 2);
        assert!(row.compute > 0.0);
        assert!(row.shift > 0.0);
        assert!(row.reduce > 0.0);
        assert!(row.makespan >= row.compute);
        let e = row.efficiency(64);
        assert!(e > 0.0 && e <= 1.0, "efficiency {e}");
    }

    #[test]
    fn cutoff_point_rejects_invalid_c() {
        assert!(run_cutoff_point(&hopper(), 1, 64, 512, 48, 0.25).is_none());
        assert!(run_cutoff_point(&hopper(), 1, 64, 512, 2, 0.25).is_some());
    }

    #[test]
    fn cutoff_point_includes_reassign_time() {
        let row = run_cutoff_point(&hopper(), 1, 64, 2048, 2, 0.25).unwrap();
        assert!(row.reassign > 0.0);
    }

    #[test]
    fn sampled_blocks_sum_to_n() {
        let sizes = sampled_block_sizes_1d(10_000, 16);
        assert_eq!(sizes.iter().sum::<usize>(), 10_000);
        let sizes2 = sampled_block_sizes_2d(10_000, 4, 4);
        assert_eq!(sizes2.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn fig_rows_export_in_the_shared_breakdown_schema() {
        let row = run_all_pairs_point(&hopper(), 64, 512, 2).to_breakdown_row();
        assert_eq!(row.label, "c=2");
        let csv = breakdown_csv(std::slice::from_ref(&row));
        assert!(csv.starts_with(nbody_trace::schema::BREAKDOWN_CSV_HEADER));
        let json = breakdown_json(&[row]);
        let doc = nbody_trace::Json::parse(&json).unwrap();
        let rows = doc.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("label").unwrap().as_str(), Some("c=2"));
        assert!(rows[0].get("makespan").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn valid_cs_filter() {
        assert_eq!(valid_all_pairs_cs(64, &[1, 2, 3, 4, 8, 16]), vec![1, 2, 4, 8]);
    }

    #[test]
    fn scale_quick_shrinks() {
        let s = Scale { div: 16 };
        assert_eq!(s.p(24_576), 1536);
        assert_eq!(s.n(196_608), 12_288);
        assert!(s.tag().contains("1/16"));
        let full = Scale { div: 1 };
        assert_eq!(full.p(24_576), 24_576);
        assert!(full.tag().is_empty());
    }
}
