//! Figure 2: execution time per timestep vs. replication factor for the
//! all-pairs algorithm, broken into computation / shift / reduce, on
//! Hopper (a, b) and Intrepid (c, d — including the `c=1 (tree)` bars that
//! use the BlueGene/P hardware collective network).
//!
//! Run with `--quick` (scale 1/16) for a fast smoke pass, or at full paper
//! scale by default. Derived §III.C/§V headline metrics are printed after
//! each panel.

use nbody_bench::{
    emit_breakdown, run_all_pairs_point, run_allgather_point, valid_all_pairs_cs, FigRow, Scale,
};
use nbody_netsim::{hopper, intrepid, Machine};

fn panel(
    name: &str,
    csv: &str,
    machine: &Machine,
    p: usize,
    n: usize,
    cs: &[usize],
    tree_bars: bool,
) {
    let mut rows: Vec<FigRow> = Vec::new();
    if tree_bars {
        rows.push(run_allgather_point(machine, p, n, true));
        rows.push(run_allgather_point(machine, p, n, false));
    }
    for &c in &valid_all_pairs_cs(p, cs) {
        rows.push(run_all_pairs_point(machine, p, n, c));
    }
    emit_breakdown(
        &format!("{name}: {} cores, {} particles on {}", p, n, machine.name),
        csv,
        &rows,
    );
    headlines(&rows);
}

/// Derived claims: communication reduction, best-vs-max-c gap, and the
/// comm-avoidance speedup (§III.C, §V).
fn headlines(rows: &[FigRow]) {
    let ca_rows: Vec<&FigRow> = rows
        .iter()
        .filter(|r| !r.label.contains("tree"))
        .collect();
    let Some(c1) = ca_rows.first() else { return };
    let best = ca_rows
        .iter()
        .min_by(|a, b| a.makespan.total_cmp(&b.makespan))
        .unwrap();
    let last = ca_rows.last().unwrap();
    println!(
        "  headline: comm time c=1 {:.6}s -> best {} {:.6}s ({:.1}% reduction); \
         total speedup {:.2}x; best-c vs max-c gap {:.1}%",
        c1.comm(),
        best.label,
        best.comm(),
        100.0 * (1.0 - best.comm() / c1.comm().max(1e-300)),
        c1.makespan / best.makespan,
        100.0 * (last.makespan - best.makespan) / best.makespan
    );
    if let Some(no_tree) = rows.iter().find(|r| r.label == "c=1 (no-tree)") {
        println!(
            "  headline: vs naive no-tree allgather: comm reduction {:.1}%, speedup {:.2}x",
            100.0 * (1.0 - best.comm() / no_tree.comm().max(1e-300)),
            no_tree.makespan / best.makespan
        );
    }
}

fn main() {
    let scale = Scale::from_args();
    let t = scale.tag();
    let h = hopper();
    let i = intrepid();

    panel(
        &format!("Fig 2a{t}"),
        "fig2a.csv",
        &h,
        scale.p(6_144),
        scale.n(24_576),
        &[1, 2, 4, 8, 16, 32],
        false,
    );
    panel(
        &format!("Fig 2b{t}"),
        "fig2b.csv",
        &h,
        scale.p(24_576),
        scale.n(196_608),
        &[1, 2, 4, 8, 16, 32, 64],
        false,
    );
    panel(
        &format!("Fig 2c{t}"),
        "fig2c.csv",
        &i,
        scale.p(8_192),
        scale.n(32_768),
        &[1, 2, 4, 8, 16, 32, 64],
        true,
    );
    panel(
        &format!("Fig 2d{t}"),
        "fig2d.csv",
        &i,
        scale.p(32_768),
        scale.n(262_144),
        &[1, 2, 4, 8, 16, 32, 64, 128],
        true,
    );
}
