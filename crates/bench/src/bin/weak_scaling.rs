//! Supplementary experiment (not in the paper): weak scaling of the
//! all-pairs algorithm — `n/p` held constant as the machine grows.
//!
//! Under weak scaling the all-pairs *work* per rank grows linearly with
//! `p` (`n²/p = (n/p)²·p`), so perfect scaling is impossible; the
//! interesting question is how much of the unavoidable growth is
//! communication, and how replication changes that. The CA algorithm's
//! shift traffic per rank is `n/c` words — growing with `p` at fixed
//! `n/p` — while `c` can also grow with `p`, which is exactly the paper's
//! "use the memory you have" message.

use nbody_bench::{run_all_pairs_point, write_csv, Scale};
use nbody_netsim::{hopper, intrepid, Machine};
use std::fmt::Write as _;

fn panel(machine: &Machine, per_rank: usize, ps: &[usize], cs: &[usize], csv: &str) {
    println!(
        "\n=== Weak scaling on {}: {} particles per core ===",
        machine.name, per_rank
    );
    print!("{:>8} {:>10}", "cores", "n");
    for c in cs {
        print!(" {:>12}", format!("T(c={c}) s"));
    }
    println!();
    let mut out = String::from("cores,n");
    for c in cs {
        let _ = write!(out, ",t_c{c}");
    }
    out.push('\n');
    for &p in ps {
        let n = p * per_rank;
        print!("{:>8} {:>10}", p, n);
        let _ = write!(out, "{p},{n}");
        for &c in cs {
            if c * c <= p && p % (c * c) == 0 {
                let row = run_all_pairs_point(machine, p, n, c);
                print!(" {:>12.6}", row.makespan);
                let _ = write!(out, ",{}", row.makespan);
            } else {
                print!(" {:>12}", "-");
                let _ = write!(out, ",");
            }
        }
        println!();
        out.push('\n');
    }
    write_csv(csv, &out);
}

fn main() {
    let scale = Scale::from_args();
    let ps: Vec<usize> = [384usize, 768, 1_536, 3_072, 6_144]
        .iter()
        .map(|&p| scale.p(p))
        .collect();
    let cs = [1usize, 2, 4, 8];
    panel(&hopper(), 8, &ps, &cs, "weak_scaling_hopper.csv");
    panel(&intrepid(), 8, &ps, &cs, "weak_scaling_intrepid.csv");
    println!(
        "\n(All-pairs work per rank grows with p at fixed n/p, so times rise; \
         larger c suppresses the communication share of that growth.)"
    );
}
