//! Figure 7: strong-scaling parallel efficiency of the 1D and 2D cutoff
//! algorithms (`r_c = l/4`), on Hopper (196,608 particles, 96–24,576
//! cores) and Intrepid (262,144 particles, 2,048–32,768 cores), with
//! curves for `c ∈ {1, 4, 16, 64}`.
//!
//! Expected shapes (§IV.D): the largest replication factor never wins;
//! small machines show sub-optimal performance from load imbalance; the
//! best replication roughly doubles the efficiency of `c = 1` at the
//! largest machine sizes.

use nbody_bench::{emit_efficiency, run_cutoff_point, Scale};
use nbody_netsim::{hopper, intrepid, Machine};

const RC_FRACTION: f64 = 0.25;

fn panel(name: &str, csv: &str, machine: &Machine, dim: u32, n: usize, ps: &[usize], cs: &[usize]) {
    let cells: Vec<Vec<Option<f64>>> = ps
        .iter()
        .map(|&p| {
            cs.iter()
                .map(|&c| {
                    run_cutoff_point(machine, dim, p, n, c, RC_FRACTION)
                        .map(|row| row.efficiency(p))
                })
                .collect()
        })
        .collect();
    emit_efficiency(
        &format!("{name}: {dim}D cutoff, {} particles, rc=l/4 on {}", n, machine.name),
        csv,
        ps,
        cs,
        &cells,
    );
    let last = cells.last().unwrap();
    if let (Some(Some(e1)), Some(best)) = (
        last.first(),
        last.iter().flatten().cloned().reduce(f64::max),
    ) {
        println!(
            "  headline: at {} cores, best replication gives {:.2}x the efficiency of c=1 \
             ({:.3} vs {:.3})",
            ps.last().unwrap(),
            best / e1,
            best,
            e1
        );
    }
}

fn main() {
    let scale = Scale::from_args();
    let t = scale.tag();
    let cs = [1usize, 4, 16, 64];
    let h = hopper();
    let i = intrepid();

    let hopper_ps: Vec<usize> = [96usize, 192, 384, 768, 1_536, 3_072, 6_144, 12_288, 24_576]
        .iter()
        .map(|&p| scale.p(p))
        .collect();
    // Deduplicate after clamping (tiny sizes can collapse under --quick).
    let hopper_ps = dedup(hopper_ps);
    panel(
        &format!("Fig 7a{t}"),
        "fig7a.csv",
        &h,
        1,
        scale.n(196_608),
        &hopper_ps,
        &cs,
    );
    panel(
        &format!("Fig 7b{t}"),
        "fig7b.csv",
        &h,
        2,
        scale.n(196_608),
        &hopper_ps,
        &cs,
    );

    let intrepid_ps: Vec<usize> = [2_048usize, 4_096, 8_192, 16_384, 32_768]
        .iter()
        .map(|&p| scale.p(p))
        .collect();
    let intrepid_ps = dedup(intrepid_ps);
    panel(
        &format!("Fig 7c{t}"),
        "fig7c.csv",
        &i,
        1,
        scale.n(262_144),
        &intrepid_ps,
        &cs,
    );
    panel(
        &format!("Fig 7d{t}"),
        "fig7d.csv",
        &i,
        2,
        scale.n(262_144),
        &intrepid_ps,
        &cs,
    );
}

fn dedup(mut v: Vec<usize>) -> Vec<usize> {
    v.dedup();
    v
}
