//! Analytic model report: lower bounds (Eq. 2/3), algorithm costs
//! (§II.B–D, Eq. 5, §IV.B), and optimality ratios across the replication
//! range — the quantitative content of the paper's theory sections, with
//! the paper's experimental parameters plugged in.

use nbody_bench::write_csv;
use nbody_model::{
    bounds, costs, efficiency::ModelParams, memory_per_proc, optimality_ratio,
};
use std::fmt::Write as _;

fn main() {
    all_pairs_table();
    cutoff_table();
    decomposition_comparison();
    strong_scaling_prediction();
}

/// Eq. 5 vs. Eq. 2 at the Fig. 2b configuration.
fn all_pairs_table() {
    let (n, p) = (196_608u64, 24_576u64);
    println!("=== All-pairs: costs vs lower bounds (n={n}, p={p}) ===");
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12} {:>8} {:>8}",
        "c", "S_alg(msgs)", "W_alg(words)", "S_bound", "W_bound", "S/Sb", "W/Wb"
    );
    let mut csv = String::from("c,s_alg,w_alg,s_bound,w_bound,s_ratio,w_ratio\n");
    for c in [1u64, 2, 4, 8, 16, 32, 64] {
        if (p % (c * c)) != 0 {
            continue;
        }
        let cost = costs::ca_all_pairs(n, p, c);
        let m = memory_per_proc(n, p, c);
        let sb = bounds::s_direct(n, p, m);
        let wb = bounds::w_direct(n, p, m);
        let (rs, rw) = optimality_ratio(cost, sb, wb);
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>12.1} {:>12.1} {:>8.2} {:>8.2}",
            c, cost.messages, cost.words, sb, wb, rs, rw
        );
        let _ = writeln!(
            csv,
            "{c},{},{},{sb},{wb},{rs},{rw}",
            cost.messages, cost.words
        );
    }
    write_csv("model_all_pairs.csv", &csv);
    println!("  (bounded ratios across all c certify communication-optimality, §III.B)\n");
}

/// §IV.B costs vs Eq. 3 at the Fig. 6a configuration.
fn cutoff_table() {
    let (n, p) = (196_608u64, 24_576u64);
    println!("=== 1D cutoff (rc = l/4): costs vs lower bounds (n={n}, p={p}) ===");
    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>8} {:>8}",
        "c", "m(teams)", "S_alg(msgs)", "W_alg(words)", "S/Sb", "W/Wb"
    );
    let mut csv = String::from("c,m,s_alg,w_alg,s_ratio,w_ratio\n");
    for c in [1u64, 2, 4, 8, 16, 32, 64] {
        if p % c != 0 {
            continue;
        }
        let teams = p / c;
        let m = teams / 4;
        let rc_over_l = m as f64 / teams as f64;
        let k = bounds::k_cutoff_1d(n, rc_over_l);
        let mem = memory_per_proc(n, p, c);
        let cost = costs::ca_cutoff_1d(n, p, c, m);
        let (rs, rw) = optimality_ratio(
            cost,
            bounds::s_cutoff(n, k, p, mem),
            bounds::w_cutoff(n, k, p, mem),
        );
        println!(
            "{:>6} {:>10} {:>14.1} {:>14.1} {:>8.2} {:>8.2}",
            c, m, cost.messages, cost.words, rs, rw
        );
        let _ = writeln!(csv, "{c},{m},{},{},{rs},{rw}", cost.messages, cost.words);
    }
    write_csv("model_cutoff_1d.csv", &csv);
    println!("  (optimal for all c = 1..m, §IV.B)\n");
}

/// The §II landscape: particle vs force vs spatial vs NT vs CA.
fn decomposition_comparison() {
    let (n, p) = (196_608u64, 24_576u64);
    let m = 16u64;
    println!("=== Decomposition landscape (n={n}, p={p}; cutoff span m={m}, d=3) ===");
    let rows: Vec<(&str, costs::CommCost)> = vec![
        ("particle (§II.B)", costs::particle_decomposition(n, p)),
        ("force (§II.B)", costs::force_decomposition(n, p)),
        ("spatial (§II.C)", costs::spatial_decomposition(n, p, m, 3)),
        ("neutral-territory (§II.D)", costs::neutral_territory(n, p, m, 3)),
        ("CA c=4 (Eq. 5)", costs::ca_all_pairs(n, p, 4)),
        ("CA c=16 (Eq. 5)", costs::ca_all_pairs(n, p, 16)),
    ];
    println!("{:<28} {:>14} {:>14}", "method", "S (msgs)", "W (words)");
    let mut csv = String::from("method,messages,words\n");
    for (name, cost) in &rows {
        println!("{:<28} {:>14.1} {:>14.1}", name, cost.messages, cost.words);
        let _ = writeln!(csv, "{name},{},{}", cost.messages, cost.words);
    }
    write_csv("model_landscape.csv", &csv);
    println!();
}

/// Closed-form Fig. 3a prediction (cross-check of the DES).
fn strong_scaling_prediction() {
    let n = 196_608u64;
    let mp = ModelParams {
        alpha: 1.5e-6,
        beta: 52.0 * 3.0e-10, // 52-byte particles
        gamma: 4.0e-8,
    };
    println!("=== Closed-form strong scaling (Fig. 3a cross-check) ===");
    println!("{:>8} {:>10} {:>10} {:>10}", "cores", "e(c=1)", "e(c=4)", "e(c=16)");
    let serial = mp.gamma * n as f64 * n as f64;
    let mut csv = String::from("cores,e_c1,e_c4,e_c16\n");
    for p in [1_536u64, 3_072, 6_144, 12_288, 24_576] {
        let e = |c: u64| {
            nbody_model::efficiency(
                serial,
                p,
                nbody_model::time_all_pairs(mp, n, p, c),
            )
        };
        println!("{:>8} {:>10.3} {:>10.3} {:>10.3}", p, e(1), e(4), e(16));
        let _ = writeln!(csv, "{p},{},{},{}", e(1), e(4), e(16));
    }
    write_csv("model_scaling.csv", &csv);
}
