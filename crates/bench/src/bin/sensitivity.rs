//! Supplementary study: sensitivity of the optimal replication factor to
//! the machine balance. The paper observes that the best `c` "strikes a
//! balance between the costs of collective and point-to-point
//! communication" (§I) — this binary quantifies how that balance point
//! moves as each machine parameter is scaled.

use ca_nbody::autotune::autotune_all_pairs;
use nbody_bench::write_csv;
use nbody_netsim::{hopper, Machine};
use std::fmt::Write as _;

fn best_c(machine: &Machine, p: usize, n: usize) -> (usize, f64) {
    let tune = autotune_all_pairs(machine, p, n);
    (tune.best_c, tune.best_time())
}

fn main() {
    let (p, n) = (1536usize, 12_288usize);
    let base = hopper();
    println!(
        "Optimal replication factor vs machine balance (all-pairs, p={p}, n={n}, Hopper base)"
    );
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "parameter scaled", "x1/4", "x1/2", "x1", "x2", "x4"
    );

    let mut csv = String::from("parameter,x0.25,x0.5,x1,x2,x4\n");
    type Knob = (&'static str, fn(&mut Machine, f64));
    let knobs: [Knob; 4] = [
        ("alpha (p2p latency)", |m, s| m.alpha *= s),
        ("beta (p2p bandwidth^-1)", |m, s| m.beta *= s),
        ("gamma (compute)", |m, s| m.gamma *= s),
        ("kappa (coll. saturation)", |m, s| m.coll_saturation *= s),
    ];
    for (name, apply) in knobs {
        print!("{:<28}", name);
        let _ = write!(csv, "{name}");
        for scale in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
            let mut m = base.clone();
            apply(&mut m, scale);
            let (c, _) = best_c(&m, p, n);
            print!(" {:>8}", format!("c={c}"));
            let _ = write!(csv, ",{c}");
        }
        println!();
        csv.push('\n');
    }
    write_csv("sensitivity.csv", &csv);

    println!(
        "\nReading the table: higher message latency (alpha) pushes the optimum toward\n\
         more replication (fewer, larger messages); a harsher collective saturation\n\
         (kappa) pulls it back toward small c — the balance the paper tunes at runtime."
    );

    // Sanity assertions mirrored in the shape tests.
    let mut high_alpha = base.clone();
    high_alpha.alpha *= 8.0;
    let mut high_kappa = base.clone();
    high_kappa.coll_saturation *= 8.0;
    let (c_alpha, _) = best_c(&high_alpha, p, n);
    let (c_kappa, _) = best_c(&high_kappa, p, n);
    assert!(
        c_alpha >= c_kappa,
        "latency-heavy machines should prefer at least as much replication \
         ({c_alpha} vs {c_kappa})"
    );
}
