//! Figure 3: strong-scaling parallel efficiency of the all-pairs algorithm
//! on Hopper (196,608 particles, 1,536–24,576 cores) and Intrepid
//! (262,144 particles, 2,048–32,768 cores), one curve per replication
//! factor. The paper's claim: near-perfect strong scaling with the right
//! choice of `c`, while `c = 1` collapses at scale.

use nbody_bench::{emit_efficiency, run_all_pairs_point, Scale};
use nbody_netsim::{hopper, intrepid, Machine};

fn panel(name: &str, csv: &str, machine: &Machine, n: usize, ps: &[usize], cs: &[usize]) {
    let cells: Vec<Vec<Option<f64>>> = ps
        .iter()
        .map(|&p| {
            cs.iter()
                .map(|&c| {
                    if c * c <= p && p % (c * c) == 0 {
                        Some(run_all_pairs_point(machine, p, n, c).efficiency(p))
                    } else {
                        None
                    }
                })
                .collect()
        })
        .collect();
    emit_efficiency(
        &format!("{name}: {} particles on {}", n, machine.name),
        csv,
        ps,
        cs,
        &cells,
    );
    // Headline: efficiency gain of the best c over c=1 at the largest size.
    let last = cells.last().unwrap();
    if let (Some(Some(e1)), Some(best)) = (
        last.first(),
        last.iter().flatten().cloned().reduce(f64::max),
    ) {
        println!(
            "  headline: at {} cores, best-c efficiency {:.3} vs c=1 {:.3} ({:.2}x)",
            ps.last().unwrap(),
            best,
            e1,
            best / e1
        );
    }
}

fn main() {
    let scale = Scale::from_args();
    let t = scale.tag();
    let cs = [1usize, 2, 4, 8, 16, 32, 64];

    let hopper_ps: Vec<usize> = [1_536usize, 3_072, 6_144, 12_288, 24_576]
        .iter()
        .map(|&p| scale.p(p))
        .collect();
    panel(
        &format!("Fig 3a{t}"),
        "fig3a.csv",
        &hopper(),
        scale.n(196_608),
        &hopper_ps,
        &cs,
    );

    let intrepid_ps: Vec<usize> = [2_048usize, 4_096, 8_192, 16_384, 32_768]
        .iter()
        .map(|&p| scale.p(p))
        .collect();
    panel(
        &format!("Fig 3b{t}"),
        "fig3b.csv",
        &intrepid(),
        scale.n(262_144),
        &intrepid_ps,
        &cs,
    );
}
