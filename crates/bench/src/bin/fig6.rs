//! Figure 6: execution time per timestep vs. replication factor for the
//! cutoff algorithms (1D and 2D, `r_c = l/4`), broken into computation /
//! shift / reduce / re-assign, on Hopper (24,576 cores, 196,608 particles)
//! and Intrepid (32,768 cores, 262,144 particles).
//!
//! Expected shapes (§IV.D): communication falls for small `c`; the reduce
//! cost grows considerably at large `c` (collective saturation), so
//! intermediate `c` wins; shift time stagnates instead of vanishing due to
//! boundary load imbalance.

use nbody_bench::{emit_breakdown, run_cutoff_point, FigRow, Scale};
use nbody_netsim::{hopper, intrepid, Machine};

/// The paper's cutoff: 1/4 of the simulation space (§IV.D).
const RC_FRACTION: f64 = 0.25;

fn panel(name: &str, csv: &str, machine: &Machine, dim: u32, p: usize, n: usize, cs: &[usize]) {
    let rows: Vec<FigRow> = cs
        .iter()
        .filter_map(|&c| run_cutoff_point(machine, dim, p, n, c, RC_FRACTION))
        .collect();
    emit_breakdown(
        &format!(
            "{name}: {dim}D cutoff, {} cores, {} particles, rc=l/4 on {}",
            p, n, machine.name
        ),
        csv,
        &rows,
    );
    if let (Some(c1), Some(best)) = (
        rows.first(),
        rows.iter().min_by(|a, b| a.makespan.total_cmp(&b.makespan)),
    ) {
        println!(
            "  headline: best {} ({:.6}s) vs c=1 ({:.6}s): speedup {:.2}x, comm reduction {:.1}%",
            best.label,
            best.makespan,
            c1.makespan,
            c1.makespan / best.makespan,
            100.0 * (1.0 - best.comm() / c1.comm().max(1e-300))
        );
    }
}

fn main() {
    let scale = Scale::from_args();
    let t = scale.tag();
    let h = hopper();
    let i = intrepid();
    let cs_64 = [1usize, 2, 4, 8, 16, 32, 64];
    let cs_128 = [1usize, 2, 4, 8, 16, 32, 64, 128];

    panel(
        &format!("Fig 6a{t}"),
        "fig6a.csv",
        &h,
        1,
        scale.p(24_576),
        scale.n(196_608),
        &cs_64,
    );
    panel(
        &format!("Fig 6b{t}"),
        "fig6b.csv",
        &h,
        2,
        scale.p(24_576),
        scale.n(196_608),
        &cs_128,
    );
    panel(
        &format!("Fig 6c{t}"),
        "fig6c.csv",
        &i,
        1,
        scale.p(32_768),
        scale.n(262_144),
        &cs_64,
    );
    panel(
        &format!("Fig 6d{t}"),
        "fig6d.csv",
        &i,
        2,
        scale.p(32_768),
        scale.n(262_144),
        &cs_64,
    );
}
