//! A message-passing runtime whose ranks are OS threads.
//!
//! This is the reproduction's stand-in for MPI on a cluster: the algorithms
//! in `ca-nbody` execute unmodified against [`ThreadComm`], exchanging the
//! same messages they would exchange across nodes. Payloads move between
//! threads by pointer (no serialization), so even modest laptops can run
//! correctness sweeps over dozens of ranks.
//!
//! Design notes:
//!
//! * Every *global* rank owns one unbounded MPSC inbox; all communicators a
//!   rank belongs to share it. Envelopes carry `(communicator id, source,
//!   tag)` and receivers demultiplex into per-`(comm, source)` FIFO queues —
//!   MPI-style matching specialized to our deterministic protocols.
//! * Sends are buffered and never block, so ring shifts cannot deadlock.
//! * `split` derives new communicators without global locks on the data
//!   path; communicator identity is agreed through a registry keyed by
//!   `(parent id, split sequence, color)`, which every member computes
//!   identically.
//! * Receives have a generous timeout; a deadlocked protocol panics with a
//!   diagnostic instead of hanging the test suite.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::comm_metrics::CommMetrics;
use crate::communicator::{CommData, Communicator};
use crate::error::CommError;
use crate::stats::{CommStats, Phase};
use nbody_metrics::{MetricsRecorder, MetricsSnapshot, RankMetrics};
use nbody_timeline::{RankTimeline, RunTimeline, TimelineRecorder};
use nbody_trace::{ExecutionTrace, Span, Tracer};
use nbody_wireprobe::{ProbeRecorder, RankWireLog, WireLog};

/// Parse an `NBODY_RECV_TIMEOUT_SECS` value: a positive integer number of
/// seconds, or `None` when the variable is unset (→ the 60 s default).
/// Malformed or zero values are an error — a typo'd timeout silently
/// becoming 60 s is exactly the kind of misconfiguration that shows up as
/// an unexplained hang or a premature deadlock diagnosis much later.
fn parse_recv_timeout(raw: Option<&str>) -> Result<u64, String> {
    match raw {
        None => Ok(60),
        Some(s) => match s.trim().parse::<u64>() {
            Ok(0) => Err(format!(
                "NBODY_RECV_TIMEOUT_SECS must be a positive number of seconds, got '{s}'"
            )),
            Ok(secs) => Ok(secs),
            Err(e) => Err(format!(
                "NBODY_RECV_TIMEOUT_SECS must be a positive number of seconds, got '{s}': {e}"
            )),
        },
    }
}

/// Parse a positive-integer environment override (`NBODY_CHECKPOINT_EVERY`,
/// `NBODY_RETRY_TIMEOUT_MS`, `NBODY_RETRY_BUDGET_MS`): unset is fine, zero
/// or malformed is an error — a typo'd cadence silently becoming the
/// default is the misconfiguration fail-fast validation exists to catch.
fn parse_positive_int(name: &str, raw: Option<&str>) -> Result<Option<u64>, String> {
    match raw {
        None => Ok(None),
        Some(s) => match s.trim().parse::<u64>() {
            Ok(0) => Err(format!("{name} must be a positive integer, got '{s}'")),
            Ok(v) => Ok(Some(v)),
            Err(e) => Err(format!("{name} must be a positive integer, got '{s}': {e}")),
        },
    }
}

/// Parse a non-negative count override (`NBODY_RETRY_MAX`; 0 legitimately
/// disables retries).
fn parse_count(name: &str, raw: Option<&str>) -> Result<Option<u64>, String> {
    match raw {
        None => Ok(None),
        Some(s) => s.trim().parse::<u64>().map(Some).map_err(|e| {
            format!("{name} must be a non-negative integer, got '{s}': {e}")
        }),
    }
}

/// Parse a float override constrained to `[lo, hi)` — `NBODY_RETRY_BACKOFF`
/// needs `>= 1.0`, `NBODY_RETRY_JITTER` needs `[0, 1)`.
fn parse_float_in(name: &str, raw: Option<&str>, lo: f64, hi: f64) -> Result<Option<f64>, String> {
    match raw {
        None => Ok(None),
        Some(s) => match s.trim().parse::<f64>() {
            Ok(v) if v.is_finite() && v >= lo && v < hi => Ok(Some(v)),
            Ok(v) => Err(format!("{name} must be in [{lo}, {hi}), got {v}")),
            Err(e) => Err(format!("{name} must be a number in [{lo}, {hi}), got '{s}': {e}")),
        },
    }
}

/// Validate process-level runtime configuration read from the
/// environment. Called implicitly at the start of every distributed
/// execution; front-ends can call it explicitly to turn a malformed
/// `NBODY_RECV_TIMEOUT_SECS`, `NBODY_CHECKPOINT_EVERY`, or retry-policy
/// override (`NBODY_RETRY_TIMEOUT_MS`, `NBODY_RETRY_MAX`,
/// `NBODY_RETRY_BACKOFF`, `NBODY_RETRY_JITTER`, `NBODY_RETRY_BUDGET_MS`)
/// into a clean startup error instead of a panic inside the rank spawner
/// or a silently ignored knob.
pub fn validate_env() -> Result<(), String> {
    let var = |name: &str| std::env::var(name).ok();
    parse_recv_timeout(var("NBODY_RECV_TIMEOUT_SECS").as_deref())?;
    parse_positive_int(
        "NBODY_CHECKPOINT_EVERY",
        var("NBODY_CHECKPOINT_EVERY").as_deref(),
    )?;
    parse_positive_int(
        "NBODY_RETRY_TIMEOUT_MS",
        var("NBODY_RETRY_TIMEOUT_MS").as_deref(),
    )?;
    parse_positive_int(
        "NBODY_RETRY_BUDGET_MS",
        var("NBODY_RETRY_BUDGET_MS").as_deref(),
    )?;
    parse_count("NBODY_RETRY_MAX", var("NBODY_RETRY_MAX").as_deref())?;
    parse_float_in(
        "NBODY_RETRY_BACKOFF",
        var("NBODY_RETRY_BACKOFF").as_deref(),
        1.0,
        f64::INFINITY,
    )?;
    parse_float_in(
        "NBODY_RETRY_JITTER",
        var("NBODY_RETRY_JITTER").as_deref(),
        0.0,
        1.0,
    )?;
    Ok(())
}

/// How long a blocking receive may wait before the runtime declares a
/// deadlock. Overridable via `NBODY_RECV_TIMEOUT_SECS` so long-running test
/// suites can fail fast with a diagnostic instead of hitting the harness
/// timeout (read once per process). A malformed value is a startup error,
/// not a silent fallback to the default.
fn recv_timeout() -> Duration {
    static SECS: OnceLock<u64> = OnceLock::new();
    let secs = *SECS.get_or_init(|| {
        let raw = std::env::var("NBODY_RECV_TIMEOUT_SECS").ok();
        parse_recv_timeout(raw.as_deref()).unwrap_or_else(|e| panic!("{e}"))
    });
    Duration::from_secs(secs)
}

/// Tag space reserved for internal collective plumbing.
const INTERNAL_TAG_BASE: u64 = 1 << 48;

struct Envelope {
    comm: u64,
    src_global: usize,
    tag: u64,
    payload: Box<dyn Any + Send>,
}

/// Shared transport state: one inbox sender per global rank plus the
/// communicator-identity registry.
pub(crate) struct Fabric {
    senders: Vec<Sender<Envelope>>,
    registry: Mutex<HashMap<(u64, u64, usize), u64>>,
    next_comm: AtomicU64,
    /// Relaxed matching: receives match on `(comm, src, tag)` instead of
    /// `(comm, src)`-then-assert-tag. Only chaos executions enable this —
    /// it lets a retried protocol leave stale or duplicated messages of a
    /// previous attempt unconsumed instead of tripping the tag assertion.
    relaxed: bool,
}

impl Fabric {
    fn comm_id_for(&self, parent: u64, seq: u64, color: usize) -> u64 {
        let mut reg = self.registry.lock();
        *reg.entry((parent, seq, color))
            .or_insert_with(|| self.next_comm.fetch_add(1, Ordering::Relaxed))
    }
}

/// Per-thread receive state: the inbox plus reorder buffers.
struct Endpoint {
    rx: Receiver<Envelope>,
    pending: HashMap<(u64, usize), VecDeque<Envelope>>,
}

impl Endpoint {
    /// Pull envelopes off the inbox until one matching `(comm, src)` — and,
    /// when `want_tag` is set (relaxed mode), the tag — is available,
    /// buffering everything else. Returns [`CommError::Timeout`] instead of
    /// panicking when nothing matching arrives within `timeout`.
    fn try_recv_matching(
        &mut self,
        comm: u64,
        src_global: usize,
        want_tag: Option<u64>,
        timeout: Duration,
        stats: &mut CommStats,
        tracer: &Tracer,
    ) -> Result<Envelope, CommError> {
        let tag_ok = |env: &Envelope| match want_tag {
            Some(t) => env.tag == t,
            None => true,
        };
        let peer = Some(src_global as u32);
        let key = (comm, src_global);
        if let Some(queue) = self.pending.get_mut(&key) {
            if let Some(pos) = queue.iter().position(&tag_ok) {
                // In strict mode `pos` is always 0 (plain FIFO pop); in
                // relaxed mode messages of other tags stay queued.
                return Ok(queue.remove(pos).expect("position came from this queue"));
            }
        }
        let start = Instant::now();
        loop {
            let remaining = match timeout.checked_sub(start.elapsed()) {
                Some(r) => r,
                None => {
                    stats.record_blocked(start.elapsed().as_secs_f64());
                    tracer.record_blocked(start, peer);
                    return Err(CommError::Timeout {
                        src: src_global,
                        tag: want_tag.unwrap_or(0),
                        waited: start.elapsed(),
                    });
                }
            };
            let env = match self.rx.recv_timeout(remaining) {
                Ok(env) => env,
                Err(_) => {
                    stats.record_blocked(start.elapsed().as_secs_f64());
                    tracer.record_blocked(start, peer);
                    return Err(CommError::Timeout {
                        src: src_global,
                        tag: want_tag.unwrap_or(0),
                        waited: start.elapsed(),
                    });
                }
            };
            if env.comm == comm && env.src_global == src_global && tag_ok(&env) {
                stats.record_blocked(start.elapsed().as_secs_f64());
                tracer.record_blocked(start, peer);
                return Ok(env);
            }
            self.pending
                .entry((env.comm, env.src_global))
                .or_default()
                .push_back(env);
        }
    }
}

/// A communicator whose ranks are threads of the current process.
///
/// Construct the world communicator with [`run_ranks`]; derive grids with
/// [`Communicator::split`]. The handle is deliberately `!Send`: it belongs
/// to its rank's thread.
pub struct ThreadComm {
    fabric: Arc<Fabric>,
    endpoint: Rc<RefCell<Endpoint>>,
    stats: Rc<RefCell<CommStats>>,
    tracer: Tracer,
    recorder: MetricsRecorder,
    timeline: TimelineRecorder,
    wire: ProbeRecorder,
    metrics: Rc<CommMetrics>,
    comm_id: u64,
    /// Global ranks of the members, indexed by local rank.
    members: Rc<Vec<usize>>,
    my_local: usize,
    split_seq: Cell<u64>,
    coll_seq: Cell<u64>,
}

impl ThreadComm {
    fn global_of(&self, local: usize) -> usize {
        self.members[local]
    }

    fn my_global(&self) -> usize {
        self.members[self.my_local]
    }

    fn try_send_raw<T: CommData>(
        &self,
        dst_local: usize,
        tag: u64,
        data: Vec<T>,
        count_stats: bool,
    ) -> Result<(), CommError> {
        if dst_local >= self.size() {
            return Err(CommError::InvalidRank {
                rank: dst_local,
                size: self.size(),
            });
        }
        let bytes = data.len() * std::mem::size_of::<T>();
        let phase = {
            let mut stats = self.stats.borrow_mut();
            if count_stats {
                stats.record_send(data.len(), bytes);
            } else {
                stats.record_collective_message();
            }
            stats.current_phase()
        };
        self.metrics.on_send(phase, data.len(), bytes, count_stats);
        // Probe only protocol point-to-point traffic: collectives manage
        // their own internal messages and are accounted at the collective
        // level, mirroring the schedule's per-message predictions.
        if count_stats {
            self.wire.send(
                self.global_of(dst_local) as u32,
                self.comm_id,
                tag,
                phase,
                data.len() as u64,
                bytes as u64,
            );
        }
        let env = Envelope {
            comm: self.comm_id,
            src_global: self.my_global(),
            tag,
            payload: Box::new(data),
        };
        self.fabric.senders[self.global_of(dst_local)]
            .send(env)
            .map_err(|_| CommError::FabricClosed)
    }

    fn send_raw<T: CommData>(&self, dst_local: usize, tag: u64, data: Vec<T>, count_stats: bool) {
        self.try_send_raw(dst_local, tag, data, count_stats)
            .unwrap_or_else(|e| {
                panic!("rank {} of comm {}: {e}", self.my_local, self.comm_id)
            });
    }

    fn try_recv_raw<T: CommData>(
        &self,
        src_local: usize,
        tag: u64,
        timeout: Duration,
        count_stats: bool,
    ) -> Result<Vec<T>, CommError> {
        if src_local >= self.size() {
            return Err(CommError::InvalidRank {
                rank: src_local,
                size: self.size(),
            });
        }
        let src_global = self.global_of(src_local);
        // Strict mode matches (comm, src) in FIFO order and then checks the
        // tag (a mismatch is a protocol violation); relaxed mode also keys
        // the match on the tag, so stale-attempt messages are skipped.
        let want_tag = if self.fabric.relaxed { Some(tag) } else { None };
        let env = {
            let mut stats = self.stats.borrow_mut();
            self.endpoint.borrow_mut().try_recv_matching(
                self.comm_id,
                src_global,
                want_tag,
                timeout,
                &mut stats,
                &self.tracer,
            )?
        };
        if env.tag != tag {
            return Err(CommError::TagMismatch {
                src: src_local,
                expected: tag,
                got: env.tag,
            });
        }
        let data = env
            .payload
            .downcast::<Vec<T>>()
            .map(|b| *b)
            .map_err(|_| CommError::TypeMismatch { src: src_local, tag })?;
        // Mirror of the send-side accounting: point-to-point receives are
        // counted so per-rank ingress (the recv half of the heat-map) is
        // observable; collective-internal receives are already attributed
        // by `record_collective` on each member.
        if count_stats {
            let bytes = data.len() * std::mem::size_of::<T>();
            let phase = self.stats.borrow().current_phase();
            self.metrics.on_recv(phase, data.len(), bytes);
            self.wire.recv(
                src_global as u32,
                self.comm_id,
                tag,
                phase,
                data.len() as u64,
                bytes as u64,
            );
        }
        Ok(data)
    }

    fn recv_raw<T: CommData>(&self, src_local: usize, tag: u64, count_stats: bool) -> Vec<T> {
        self.try_recv_raw(src_local, tag, recv_timeout(), count_stats)
            .unwrap_or_else(|e| {
                panic!("rank {} of comm {}: {e}", self.my_local, self.comm_id)
            })
    }

    /// Attribute a collective's payload to stats and metrics.
    fn record_collective<T>(&self, elements: usize) {
        let bytes = elements * std::mem::size_of::<T>();
        let phase = {
            let mut stats = self.stats.borrow_mut();
            stats.record_collective(elements, bytes);
            stats.current_phase()
        };
        self.metrics.on_collective(phase, elements, bytes);
    }

    /// Reserve a fresh internal tag for one collective operation. All ranks
    /// call collectives in identical order, so the sequence agrees globally.
    fn next_internal_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        INTERNAL_TAG_BASE + seq
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.my_local
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn set_phase(&self, phase: Phase) {
        self.stats.borrow_mut().set_phase(phase);
        self.tracer.phase_change(phase);
    }

    fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    fn metrics(&self) -> MetricsRecorder {
        self.recorder.clone()
    }

    fn timeline(&self) -> TimelineRecorder {
        self.timeline.clone()
    }

    fn wire(&self) -> ProbeRecorder {
        self.wire.clone()
    }

    fn send<T: CommData>(&self, dst: usize, tag: u64, data: &[T]) {
        self.send_raw(dst, tag, data.to_vec(), true);
    }

    fn recv<T: CommData>(&self, src: usize, tag: u64) -> Vec<T> {
        self.recv_raw(src, tag, true)
    }

    fn try_send<T: CommData>(&self, dst: usize, tag: u64, data: &[T]) -> Result<(), CommError> {
        self.try_send_raw(dst, tag, data.to_vec(), true)
    }

    fn try_recv_timeout<T: CommData>(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<T>, CommError> {
        self.try_recv_raw(src, tag, timeout, true)
    }

    fn bcast<T: CommData>(&self, root: usize, buf: &mut Vec<T>) {
        let size = self.size();
        assert!(root < size, "bcast root {root} out of range");
        if size == 1 {
            return;
        }
        let tag = self.next_internal_tag();
        // Binomial tree rooted at `root` (MPICH-style).
        let vrank = (self.my_local + size - root) % size;
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                let src = (vrank - mask + root) % size;
                *buf = self.recv_raw::<T>(src, tag, false);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < size {
                let dst = (vrank + mask + root) % size;
                self.send_raw(dst, tag, buf.clone(), false);
            }
            mask >>= 1;
        }
        // Recorded after completion so every member logs the payload size
        // (non-roots don't know it on entry).
        self.record_collective::<T>(buf.len());
    }

    fn reduce<T: CommData>(&self, root: usize, buf: &mut Vec<T>, combine: fn(&mut T, &T)) {
        let size = self.size();
        assert!(root < size, "reduce root {root} out of range");
        if size == 1 {
            return;
        }
        self.record_collective::<T>(buf.len());
        let tag = self.next_internal_tag();
        // Binomial tree reduction mirroring the broadcast: contributions from
        // higher virtual ranks are folded into lower ones, ending at vrank 0
        // (= `root`). Combination order is deterministic.
        let vrank = (self.my_local + size - root) % size;
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask == 0 {
                let partner = vrank | mask;
                if partner < size {
                    let src = (partner + root) % size;
                    let incoming = self.recv_raw::<T>(src, tag, false);
                    assert_eq!(
                        incoming.len(),
                        buf.len(),
                        "reduce buffers must agree in length"
                    );
                    for (acc, x) in buf.iter_mut().zip(&incoming) {
                        combine(acc, x);
                    }
                }
            } else {
                let dst = (vrank - mask + root) % size;
                self.send_raw(dst, tag, buf.clone(), false);
                break;
            }
            mask <<= 1;
        }
    }

    fn gather<T: CommData>(&self, root: usize, data: &[T]) -> Option<Vec<Vec<T>>> {
        let size = self.size();
        assert!(root < size, "gather root {root} out of range");
        if size == 1 {
            return Some(vec![data.to_vec()]);
        }
        self.record_collective::<T>(data.len());
        let tag = self.next_internal_tag();
        if self.my_local == root {
            let mut out = Vec::with_capacity(size);
            for r in 0..size {
                if r == root {
                    out.push(data.to_vec());
                } else {
                    out.push(self.recv_raw::<T>(r, tag, false));
                }
            }
            Some(out)
        } else {
            self.send_raw(root, tag, data.to_vec(), false);
            None
        }
    }

    fn barrier(&self) {
        let size = self.size();
        if size == 1 {
            return;
        }
        self.record_collective::<u8>(0);
        let tag = self.next_internal_tag();
        // Dissemination barrier: log2(size) rounds of shifted token passing.
        let mut step = 1usize;
        while step < size {
            let dst = (self.my_local + step) % size;
            let src = (self.my_local + size - step) % size;
            self.send_raw::<u8>(dst, tag + step as u64, Vec::new(), false);
            let _ = self.recv_raw::<u8>(src, tag + step as u64, false);
            step <<= 1;
        }
    }

    fn split(&self, color: usize, key: usize) -> ThreadComm {
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        // Exchange (color, key, global rank) so every member can compute the
        // membership of its new communicator.
        let triples = self.allgather(&[(color, key, self.my_global())]);
        let mut mine: Vec<(usize, usize, usize)> = triples
            .into_iter()
            .flatten()
            .filter(|&(c, _, _)| c == color)
            .collect();
        mine.sort_by_key(|&(_, k, g)| (k, g));
        let members: Vec<usize> = mine.iter().map(|&(_, _, g)| g).collect();
        let my_local = members
            .iter()
            .position(|&g| g == self.my_global())
            .expect("rank missing from its own split");
        let comm_id = self.fabric.comm_id_for(self.comm_id, seq, color);
        ThreadComm {
            fabric: Arc::clone(&self.fabric),
            endpoint: Rc::clone(&self.endpoint),
            stats: Rc::clone(&self.stats),
            tracer: self.tracer.clone(),
            recorder: self.recorder.clone(),
            timeline: self.timeline.clone(),
            wire: self.wire.clone(),
            metrics: Rc::clone(&self.metrics),
            comm_id,
            members: Rc::new(members),
            my_local,
            split_seq: Cell::new(0),
            coll_seq: Cell::new(0),
        }
    }
}

/// Spawn `p` rank threads, run `f` on each with its world communicator, and
/// return the per-rank results in rank order.
///
/// This is the entry point of every distributed execution in the
/// reproduction — the analogue of `mpirun -np p`. Span recording is off
/// (every rank's tracer is the no-op handle); use [`run_ranks_traced`] to
/// capture wall-clock timelines.
pub fn run_ranks<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut ThreadComm) -> R + Sync,
{
    run_ranks_impl(p, None, false, true, false, f)
        .into_iter()
        .map(|(r, _, _, _, _)| r)
        .collect()
}

/// [`run_ranks`] with the always-on flight recorder disabled. The only
/// intended users are the `timeline_overhead` and `wireprobe_overhead`
/// benches, which need a recording-free baseline to price the recorders
/// against; everything else should keep the crash forensics on.
pub fn run_ranks_silent<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut ThreadComm) -> R + Sync,
{
    run_ranks_impl(p, None, false, false, false, f)
        .into_iter()
        .map(|(r, _, _, _, _)| r)
        .collect()
}

/// [`run_ranks`] with wire probes on: every rank's communicator carries an
/// enabled [`ProbeRecorder`] stamping each point-to-point send/recv against
/// a shared epoch, and the drained per-rank rings are merged into a
/// [`WireLog`] at join. Probes are off in every other entry point — the
/// per-message ring is strictly opt-in.
pub fn run_ranks_probed<R, F>(p: usize, f: F) -> (Vec<R>, WireLog)
where
    R: Send,
    F: Fn(&mut ThreadComm) -> R + Sync,
{
    let out = run_ranks_impl(p, None, false, true, true, f);
    let mut results = Vec::with_capacity(p);
    let mut wires = Vec::with_capacity(p);
    for (r, _, _, _, wire) in out {
        results.push(r);
        wires.extend(wire);
    }
    (results, WireLog::from_ranks(wires))
}

/// [`run_ranks`] with per-rank wall-clock span recording and live metrics:
/// every rank's communicator carries an enabled [`Tracer`] measuring
/// against a shared epoch taken just before the threads spawn plus an
/// enabled [`MetricsRecorder`] and step-sampling [`TimelineRecorder`], and
/// the per-rank buffers/shards are merged into an [`ExecutionTrace`], a
/// [`MetricsSnapshot`], and a [`RunTimeline`] at join.
pub fn run_ranks_traced<R, F>(
    p: usize,
    f: F,
) -> (Vec<R>, ExecutionTrace, MetricsSnapshot, RunTimeline)
where
    R: Send,
    F: Fn(&mut ThreadComm) -> R + Sync,
{
    let (results, trace, metrics, timeline, _) = run_ranks_traced_impl(p, false, f);
    (results, trace, metrics, timeline)
}

/// [`run_ranks_traced`] with wire probes on as well, returning the merged
/// [`WireLog`] alongside the usual artifacts.
pub fn run_ranks_probed_traced<R, F>(
    p: usize,
    f: F,
) -> (Vec<R>, ExecutionTrace, MetricsSnapshot, RunTimeline, WireLog)
where
    R: Send,
    F: Fn(&mut ThreadComm) -> R + Sync,
{
    run_ranks_traced_impl(p, true, f)
}

fn run_ranks_traced_impl<R, F>(
    p: usize,
    probe: bool,
    f: F,
) -> (Vec<R>, ExecutionTrace, MetricsSnapshot, RunTimeline, WireLog)
where
    R: Send,
    F: Fn(&mut ThreadComm) -> R + Sync,
{
    let epoch = Instant::now();
    let out = run_ranks_impl(p, Some(epoch), false, true, probe, f);
    let mut results = Vec::with_capacity(p);
    let mut buffers = Vec::with_capacity(p);
    let mut shards = Vec::with_capacity(p);
    let mut timelines = Vec::with_capacity(p);
    let mut wires = Vec::with_capacity(p);
    for (r, spans, metrics, timeline, wire) in out {
        results.push(r);
        buffers.push(spans);
        shards.push(metrics);
        timelines.extend(timeline);
        wires.extend(wire);
    }
    (
        results,
        ExecutionTrace::from_rank_buffers(buffers),
        MetricsSnapshot::from_shards(shards),
        RunTimeline::from_ranks(timelines),
        WireLog::from_ranks(wires),
    )
}

/// Per-rank artifacts a joined rank thread hands back: the closure's
/// result plus the rank's trace spans, metrics shard, timeline, and wire
/// probe log.
pub(crate) type RankOutput<R> = (
    R,
    Vec<Span>,
    Option<RankMetrics>,
    Option<RankTimeline>,
    Option<RankWireLog>,
);

/// Shared body of every entry point: spawn `p` rank threads, hand each its
/// world [`ThreadComm`] (owned, so wrappers like `ChaosComm` can absorb
/// it), and join. `relaxed` selects the fabric's tag-matching mode;
/// `flight` controls the always-on flight recorder (off only for overhead
/// benchmarking baselines); `probe` turns on the per-message wire probe
/// ring (timestamped against its own shared epoch so cross-rank send→recv
/// latencies are comparable even in untraced runs).
pub(crate) fn run_ranks_owned<R, F>(
    p: usize,
    epoch: Option<Instant>,
    relaxed: bool,
    flight: bool,
    probe: bool,
    f: F,
) -> Vec<RankOutput<R>>
where
    R: Send,
    F: Fn(ThreadComm) -> R + Sync,
{
    assert!(p > 0, "need at least one rank");
    // Surface a malformed NBODY_RECV_TIMEOUT_SECS here, before any rank
    // thread exists — a startup error instead of a mid-protocol panic.
    let _ = recv_timeout();
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let fabric = Arc::new(Fabric {
        senders,
        registry: Mutex::new(HashMap::new()),
        next_comm: AtomicU64::new(1),
        relaxed,
    });
    // One epoch shared by every rank's probe ring: send and recv stamps
    // from different threads must be subtractable.
    let probe_epoch = probe.then(Instant::now);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let fabric = Arc::clone(&fabric);
            let f = &f;
            let handle = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .spawn_scoped(scope, move || {
                    let endpoint = Endpoint {
                        rx,
                        pending: HashMap::new(),
                    };
                    let tracer = match epoch {
                        Some(epoch) => Tracer::for_rank(rank, epoch),
                        None => Tracer::disabled(),
                    };
                    let recorder = match epoch {
                        Some(_) => MetricsRecorder::for_rank(rank),
                        None => MetricsRecorder::disabled(),
                    };
                    let timeline = if flight {
                        TimelineRecorder::for_rank(rank as u32, epoch)
                    } else {
                        TimelineRecorder::disabled()
                    };
                    let wire = match probe_epoch {
                        Some(pe) => ProbeRecorder::for_rank(rank as u32, pe),
                        None => ProbeRecorder::disabled(),
                    };
                    let comm = ThreadComm {
                        fabric,
                        endpoint: Rc::new(RefCell::new(endpoint)),
                        stats: Rc::new(RefCell::new(CommStats::new())),
                        tracer: tracer.clone(),
                        recorder: recorder.clone(),
                        timeline: timeline.clone(),
                        wire: wire.clone(),
                        metrics: Rc::new(CommMetrics::new(&recorder)),
                        comm_id: 0,
                        members: Rc::new((0..p).collect()),
                        my_local: rank,
                        split_seq: Cell::new(0),
                        coll_seq: Cell::new(0),
                    };
                    let result = f(comm);
                    (
                        result,
                        tracer.finish(),
                        recorder.finish(),
                        timeline.finish(),
                        wire.finish(),
                    )
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        handles
            .into_iter()
            .map(|h| {
                // Propagate the original payload so callers (and tests) see
                // the real panic message instead of "Any { .. }".
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

fn run_ranks_impl<R, F>(
    p: usize,
    epoch: Option<Instant>,
    relaxed: bool,
    flight: bool,
    probe: bool,
    f: F,
) -> Vec<RankOutput<R>>
where
    R: Send,
    F: Fn(&mut ThreadComm) -> R + Sync,
{
    run_ranks_owned(p, epoch, relaxed, flight, probe, |mut comm| f(&mut comm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::sum_combine;

    #[test]
    fn world_ranks_and_sizes() {
        let out = run_ranks(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[10u64, 20, 30]);
                comm.recv::<u64>(1, 8)
            } else {
                let got = comm.recv::<u64>(0, 7);
                comm.send(0, 8, &[got.iter().sum::<u64>()]);
                got
            }
        });
        assert_eq!(out[0], vec![60]);
        assert_eq!(out[1], vec![10, 20, 30]);
    }

    #[test]
    fn fifo_order_per_pair() {
        let out = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..50u64 {
                    comm.send(1, i, &[i]);
                }
                Vec::new()
            } else {
                (0..50u64).map(|i| comm.recv::<u64>(0, i)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn ring_shift_does_not_deadlock() {
        let p = 8;
        let out = run_ranks(p, |comm| {
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let mut token = vec![comm.rank() as u64];
            for _ in 0..p {
                token = comm.sendrecv(right, left, 1, &token);
            }
            token[0]
        });
        // After p shifts each token returns home.
        assert_eq!(out, (0..p as u64).collect::<Vec<_>>());
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..5 {
            let out = run_ranks(5, move |comm| {
                let mut buf = if comm.rank() == root {
                    vec![42u32, 43, 44]
                } else {
                    Vec::new()
                };
                comm.bcast(root, &mut buf);
                buf
            });
            for r in out {
                assert_eq!(r, vec![42, 43, 44]);
            }
        }
    }

    #[test]
    fn reduce_sums_elementwise() {
        let p = 6;
        for root in [0, 3, 5] {
            let out = run_ranks(p, move |comm| {
                let mut buf = vec![comm.rank() as u64, 1];
                comm.reduce(root, &mut buf, sum_combine);
                (comm.rank(), buf)
            });
            let (_, buf) = &out[root];
            assert_eq!(*buf, vec![15, 6], "root {root}");
        }
    }

    #[test]
    fn allreduce_everywhere() {
        let out = run_ranks(4, |comm| {
            let mut buf = vec![1u64 << comm.rank()];
            comm.allreduce(&mut buf, sum_combine);
            buf[0]
        });
        assert_eq!(out, vec![15, 15, 15, 15]);
    }

    #[test]
    fn gather_in_rank_order() {
        let out = run_ranks(4, |comm| {
            comm.gather(2, &[comm.rank() as u8, 0xFF])
        });
        assert!(out[0].is_none() && out[1].is_none() && out[3].is_none());
        assert_eq!(
            out[2],
            Some(vec![vec![0, 0xFF], vec![1, 0xFF], vec![2, 0xFF], vec![3, 0xFF]])
        );
    }

    #[test]
    fn allgather_everywhere() {
        let out = run_ranks(3, |comm| comm.allgather(&[comm.rank() as u16 * 10]));
        for r in out {
            assert_eq!(r, vec![vec![0], vec![10], vec![20]]);
        }
    }

    #[test]
    fn barrier_completes() {
        // Not a timing assertion — just that no rank hangs or panics.
        let out = run_ranks(7, |comm| {
            for _ in 0..10 {
                comm.barrier();
            }
            true
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn split_forms_grid() {
        // 6 ranks -> 3 teams of 2 (color = rank % 3), then rows (color = rank / 3).
        let out = run_ranks(6, |comm| {
            let col = comm.split(comm.rank() % 3, comm.rank());
            let row = comm.split(comm.rank() / 3, comm.rank());
            // Column collective: sum of global ranks in my column.
            let mut csum = vec![comm.rank() as u64];
            col.allreduce(&mut csum, sum_combine);
            // Row collective: sum of global ranks in my row.
            let mut rsum = vec![comm.rank() as u64];
            row.allreduce(&mut rsum, sum_combine);
            (col.rank(), col.size(), csum[0], row.rank(), row.size(), rsum[0])
        });
        for (g, &(crank, csize, csum, rrank, rsize, rsum)) in out.iter().enumerate() {
            assert_eq!(csize, 2);
            assert_eq!(rsize, 3);
            assert_eq!(crank, g / 3);
            assert_eq!(rrank, g % 3);
            assert_eq!(csum as usize, (g % 3) + (g % 3 + 3));
            let row_base = (g / 3) * 3;
            assert_eq!(rsum as usize, row_base * 3 + 3);
        }
    }

    #[test]
    fn split_key_reorders_ranks() {
        // Reverse ordering via key.
        let out = run_ranks(4, |comm| {
            let rev = comm.split(0, 100 - comm.rank());
            rev.rank()
        });
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    #[test]
    fn nested_splits_are_isolated() {
        // Messages on a child communicator don't leak into the parent.
        let out = run_ranks(4, |comm| {
            let pair = comm.split(comm.rank() / 2, comm.rank());
            if pair.rank() == 0 {
                pair.send(1, 5, &[comm.rank() as u64]);
                0
            } else {
                pair.recv::<u64>(0, 5)[0]
            }
        });
        assert_eq!(out, vec![0, 0, 0, 2]);
    }

    #[test]
    fn stats_shared_across_split() {
        let out = run_ranks(2, |comm| {
            comm.set_phase(Phase::Shift);
            let sub = comm.split(0, comm.rank());
            if sub.rank() == 0 {
                sub.send(1, 1, &[1u8, 2, 3]);
            } else {
                let _ = sub.recv::<u8>(0, 1);
            }
            comm.stats()
        });
        // Rank 0 sent one 3-element message, attributed to Shift even though
        // it went through the sub-communicator.
        assert_eq!(out[0].phase(Phase::Shift).messages, 1);
        assert_eq!(out[0].phase(Phase::Shift).elements, 3);
        assert_eq!(out[1].phase(Phase::Shift).messages, 0);
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        let out = run_ranks(1, |comm| {
            let mut buf = vec![9u8];
            comm.bcast(0, &mut buf);
            comm.reduce(0, &mut buf, sum_combine);
            comm.allreduce(&mut buf, sum_combine);
            comm.barrier();
            let g = comm.gather(0, &buf);
            let ag = comm.allgather(&buf);
            (buf, g, ag)
        });
        assert_eq!(out[0].0, vec![9]);
        assert_eq!(out[0].1, Some(vec![vec![9]]));
        assert_eq!(out[0].2, vec![vec![9]]);
    }

    #[test]
    fn blocked_time_is_recorded_on_real_waits() {
        // Receiver posts its recv ~50 ms before the sender sends: both the
        // stats counter and the trace must capture the wait.
        let (out, trace, _, _) = run_ranks_traced(2, |comm| {
            comm.set_phase(Phase::Shift);
            if comm.rank() == 0 {
                std::thread::sleep(Duration::from_millis(50));
                comm.send(1, 1, &[1u8]);
                0.0
            } else {
                let _ = comm.recv::<u8>(0, 1);
                comm.stats().phase(Phase::Shift).blocked_secs
            }
        });
        assert!(
            out[1] > 0.04,
            "receiver should have blocked ~50 ms, stats say {}s",
            out[1]
        );
        let blocked: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| {
                s.rank == 1
                    && matches!(
                        s.kind,
                        nbody_trace::SpanKind::Blocked {
                            phase: Phase::Shift,
                            ..
                        }
                    )
            })
            .collect();
        assert_eq!(blocked.len(), 1, "one blocked interval: {blocked:?}");
        assert!(blocked[0].secs() > 0.04);
        // The wait is attributed to the late sender: global rank 0.
        match blocked[0].kind {
            nbody_trace::SpanKind::Blocked { peer, .. } => assert_eq!(peer, Some(0)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn traced_run_returns_same_results_as_untraced() {
        let body = |comm: &mut ThreadComm| {
            let mut buf = vec![1u64 << comm.rank()];
            comm.allreduce(&mut buf, sum_combine);
            buf[0]
        };
        let plain = run_ranks(4, body);
        let (traced, trace, metrics, timeline) = run_ranks_traced(4, body);
        assert_eq!(plain, traced);
        assert_eq!(trace.ranks, 4);
        assert!(!trace.spans.is_empty());
        assert_eq!(metrics.ranks.len(), 4);
        assert_eq!(timeline.ranks.len(), 4);
        assert!(!timeline.is_postmortem());
        // Silent runs (bench baseline) still compute the same results.
        assert_eq!(run_ranks_silent(4, body), plain);
    }

    #[test]
    fn ranks_carry_a_live_timeline_recorder() {
        let (enabled, _, _, timeline) = run_ranks_traced(2, |comm| {
            let tl = comm.timeline();
            tl.step_mark(comm.rank() as u64);
            let sub = comm.split(0, comm.rank());
            // The recorder follows the rank across splits.
            sub.timeline().event(
                nbody_timeline::EventKind::Checkpoint,
                Some(0),
                "via split",
            );
            (tl.is_enabled(), tl.wants_samples())
        });
        assert_eq!(enabled, vec![(true, true), (true, true)]);
        for (rank, rt) in timeline.ranks.iter().enumerate() {
            assert_eq!(rt.rank as usize, rank);
            assert_eq!(rt.events.len(), 2, "step mark + split event: {rt:?}");
        }
        // Plain runs keep the flight ring on (always-on crash forensics)
        // but skip step sampling.
        let modes = run_ranks(2, |comm| {
            (comm.timeline().is_enabled(), comm.timeline().wants_samples())
        });
        assert_eq!(modes, vec![(true, false), (true, false)]);
    }

    #[test]
    fn sendrecv_default_shifts_a_ring() {
        // Direct coverage of the `Communicator::sendrecv` default: a full
        // ring rotation where every rank simultaneously sends right and
        // receives from the left must not deadlock and must deliver the
        // left neighbour's payload, element-exact.
        let p = 5;
        let out = run_ranks(p, |comm| {
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let payload: Vec<u64> = (0..=comm.rank() as u64).collect();
            comm.sendrecv(right, left, 42, &payload)
        });
        for (rank, got) in out.iter().enumerate() {
            let left = (rank + p - 1) % p;
            let want: Vec<u64> = (0..=left as u64).collect();
            assert_eq!(got, &want, "rank {rank} must hold rank {left}'s data");
        }
    }

    #[test]
    fn sendrecv_default_handles_self_exchange_and_distinct_peers() {
        let out = run_ranks(3, |comm| {
            // Exchange with oneself: the send must be buffered so the
            // following recv can complete (dst == src == rank).
            let me = comm.rank();
            let echoed = comm.sendrecv(me, me, 7, &[me as u32]);
            // Then an asymmetric pattern: everyone forwards to rank 0.
            if me == 0 {
                let mut sum = echoed[0];
                for src in 1..comm.size() {
                    sum += comm.recv::<u32>(src, 8)[0];
                }
                sum
            } else {
                comm.send(0, 8, &[me as u32 * 10]);
                echoed[0]
            }
        });
        assert_eq!(out, vec![30, 1, 2]);
    }

    #[test]
    fn probed_run_collects_wire_events() {
        use nbody_trace::Phase;
        use nbody_wireprobe::{match_events, ProbeKind};
        let (enabled, wire) = run_ranks_probed(2, |comm| {
            comm.set_phase(Phase::Shift);
            if comm.rank() == 0 {
                comm.send(1, 5, &[1u64, 2, 3]);
            } else {
                let _ = comm.recv::<u64>(0, 5);
            }
            comm.wire().is_enabled()
        });
        assert_eq!(enabled, vec![true, true]);
        assert_eq!(wire.ranks.len(), 2);
        let send = &wire.ranks[0].events[0];
        assert_eq!(send.kind, ProbeKind::Send);
        assert_eq!((send.src, send.dst), (0, 1));
        assert_eq!(send.tag, 5);
        assert_eq!(send.phase, Phase::Shift);
        assert_eq!(send.count, 3);
        assert_eq!(send.bytes, 24);
        let recv = &wire.ranks[1].events[0];
        assert_eq!(recv.kind, ProbeKind::Recv);
        assert_eq!((recv.src, recv.dst), (0, 1));
        // The shared epoch makes cross-rank stamps subtractable.
        assert!(recv.t_secs >= send.t_secs);
        let report = match_events(&wire);
        assert_eq!(report.matched, 1);
        assert_eq!(report.channels.len(), 1);
        assert_eq!(report.channels[0].latency.count, 1);
        // Probes are strictly opt-in: every other entry point runs dark.
        let dark = run_ranks(2, |comm| comm.wire().is_enabled());
        assert_eq!(dark, vec![false, false]);
    }

    #[test]
    fn wire_probes_follow_splits_and_skip_collectives() {
        use nbody_trace::Phase;
        use nbody_wireprobe::ProbeKind;
        let (_, wire) = run_ranks_probed(4, |comm| {
            comm.set_phase(Phase::Skew);
            // Point-to-point on a derived communicator: probed, with
            // global ranks and the split's comm id.
            let sub = comm.split(comm.rank() % 2, comm.rank());
            if sub.rank() == 0 {
                sub.send(1, 9, &[1u8, 2]);
            } else {
                let _ = sub.recv::<u8>(0, 9);
            }
            // Collectives manage their own internal traffic: not probed.
            comm.set_phase(Phase::Reduce);
            let mut buf = vec![comm.rank() as u64];
            comm.allreduce(&mut buf, sum_combine);
        });
        let events: Vec<_> = wire.ranks.iter().flat_map(|r| &r.events).collect();
        assert!(
            events.iter().all(|e| e.phase == Phase::Skew),
            "only the explicit p2p traffic is probed: {events:?}"
        );
        assert_eq!(events.len(), 4, "2 sends + 2 recvs across both splits");
        let send01 = events
            .iter()
            .find(|e| e.kind == ProbeKind::Send && e.src == 0)
            .unwrap();
        assert_eq!(send01.dst, 2, "global ranks: color-0 split is {{0, 2}}");
        assert_ne!(send01.comm, 0, "split traffic carries the derived comm id");
    }

    #[test]
    fn recv_timeout_env_values_parse_strictly() {
        assert_eq!(parse_recv_timeout(None), Ok(60));
        assert_eq!(parse_recv_timeout(Some("20")), Ok(20));
        assert_eq!(parse_recv_timeout(Some(" 5 ")), Ok(5));
        assert!(parse_recv_timeout(Some("0")).is_err());
        assert!(parse_recv_timeout(Some("-3")).is_err());
        assert!(parse_recv_timeout(Some("banana")).is_err());
        assert!(parse_recv_timeout(Some("")).is_err());
        assert!(parse_recv_timeout(Some("1.5")).is_err());
        let msg = parse_recv_timeout(Some("banana")).unwrap_err();
        assert!(
            msg.contains("NBODY_RECV_TIMEOUT_SECS") && msg.contains("banana"),
            "diagnostic names the variable and the bad value: {msg}"
        );
    }

    #[test]
    fn durability_env_overrides_parse_strictly() {
        // Cadence and millisecond overrides: positive integers only.
        assert_eq!(parse_positive_int("NBODY_CHECKPOINT_EVERY", None), Ok(None));
        assert_eq!(
            parse_positive_int("NBODY_CHECKPOINT_EVERY", Some(" 4 ")),
            Ok(Some(4))
        );
        assert!(parse_positive_int("NBODY_CHECKPOINT_EVERY", Some("0")).is_err());
        assert!(parse_positive_int("NBODY_RETRY_TIMEOUT_MS", Some("fast")).is_err());
        assert!(parse_positive_int("NBODY_RETRY_BUDGET_MS", Some("-1")).is_err());
        // Retry count: zero is a legitimate "no retries".
        assert_eq!(parse_count("NBODY_RETRY_MAX", Some("0")), Ok(Some(0)));
        assert!(parse_count("NBODY_RETRY_MAX", Some("-1")).is_err());
        // Backoff ≥ 1, jitter in [0, 1).
        assert_eq!(
            parse_float_in("NBODY_RETRY_BACKOFF", Some("1.5"), 1.0, f64::INFINITY),
            Ok(Some(1.5))
        );
        assert!(parse_float_in("NBODY_RETRY_BACKOFF", Some("0.5"), 1.0, f64::INFINITY).is_err());
        assert!(parse_float_in("NBODY_RETRY_BACKOFF", Some("inf"), 1.0, f64::INFINITY).is_err());
        assert_eq!(
            parse_float_in("NBODY_RETRY_JITTER", Some("0"), 0.0, 1.0),
            Ok(Some(0.0))
        );
        assert!(parse_float_in("NBODY_RETRY_JITTER", Some("1.0"), 0.0, 1.0).is_err());
        let msg = parse_positive_int("NBODY_CHECKPOINT_EVERY", Some("banana")).unwrap_err();
        assert!(
            msg.contains("NBODY_CHECKPOINT_EVERY") && msg.contains("banana"),
            "diagnostic names the variable and the bad value: {msg}"
        );
    }

    #[test]
    fn traced_run_collects_live_metrics() {
        use nbody_trace::Phase;
        let (_, _, metrics, _) = run_ranks_traced(2, |comm| {
            comm.set_phase(Phase::Shift);
            if comm.rank() == 0 {
                comm.send(1, 1, &[7u64, 8, 9]);
            } else {
                let _ = comm.recv::<u64>(0, 1);
            }
            comm.set_phase(Phase::Reduce);
            let mut buf = vec![comm.rank() as u64];
            comm.allreduce(&mut buf, sum_combine);
        });
        let r0 = &metrics.ranks[0];
        assert_eq!(r0.counter("comm_send_messages", Some(Phase::Shift)), 1);
        assert_eq!(r0.counter("comm_send_elements", Some(Phase::Shift)), 3);
        assert_eq!(r0.counter("comm_send_bytes", Some(Phase::Shift)), 24);
        // The receive side mirrors it on rank 1.
        let r1 = &metrics.ranks[1];
        assert_eq!(r1.counter("comm_recv_messages", Some(Phase::Shift)), 1);
        assert_eq!(r1.counter("comm_recv_bytes", Some(Phase::Shift)), 24);
        // allreduce = reduce + bcast: both payloads attributed to Reduce.
        assert_eq!(
            metrics.sum_counter("comm_collective_elements", Some(Phase::Reduce)),
            4
        );
        // The tree messages of the collectives hit the wire somewhere.
        assert!(metrics.sum_counter("comm_collective_messages", Some(Phase::Reduce)) > 0);
        // Message sizes were observed.
        let h = r0
            .histogram("comm_message_size_bytes", Some(Phase::Shift))
            .unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum, 24);
        // Untraced runs collect nothing.
        let empty = run_ranks(2, |comm| comm.metrics().is_enabled());
        assert_eq!(empty, vec![false, false]);
    }

    #[test]
    fn split_communicators_share_the_metrics_shard() {
        use nbody_trace::Phase;
        let (_, _, metrics, _) = run_ranks_traced(2, |comm| {
            comm.set_phase(Phase::Skew);
            let sub = comm.split(0, comm.rank());
            if sub.rank() == 0 {
                sub.send(1, 1, &[1u8, 2, 3, 4]);
            } else {
                let _ = sub.recv::<u8>(0, 1);
            }
        });
        // Traffic on the derived communicator lands on the rank's shard.
        assert_eq!(
            metrics.ranks[0].counter("comm_send_bytes", Some(Phase::Skew)),
            4
        );
    }

    #[test]
    fn phase_windows_follow_split_communicators() {
        // set_phase on a *derived* communicator must land on the rank's one
        // timeline — the converse of `stats_shared_across_split`.
        let (_, trace, _, _) = run_ranks_traced(4, |comm| {
            let sub = comm.split(comm.rank() % 2, comm.rank());
            sub.set_phase(Phase::Reduce);
            let mut buf = vec![comm.rank() as u64];
            // Operate on the WORLD communicator while the phase was set via
            // the sub-communicator.
            comm.allreduce(&mut buf, sum_combine);
            sub.set_phase(Phase::Other);
            buf[0]
        });
        for rank in 0..4u32 {
            assert!(
                trace.spans.iter().any(|s| {
                    s.rank == rank && s.kind == nbody_trace::SpanKind::Phase(Phase::Reduce)
                }),
                "rank {rank} has no Reduce window despite set_phase via split"
            );
        }
        // Per-rank phase windows tile the timeline: sums equal each rank's
        // traced extent.
        for rank in 0..4u32 {
            let windows: Vec<_> = trace
                .spans
                .iter()
                .filter(|s| {
                    s.rank == rank && matches!(s.kind, nbody_trace::SpanKind::Phase(_))
                })
                .collect();
            let sum: f64 = windows.iter().map(|s| s.secs()).sum();
            let lo = windows.iter().map(|s| s.start).fold(f64::MAX, f64::min);
            let hi = windows.iter().map(|s| s.end).fold(0.0, f64::max);
            assert!(
                (sum - (hi - lo)).abs() < 1e-9,
                "rank {rank}: windows sum {sum} != extent {}",
                hi - lo
            );
        }
    }

    #[test]
    #[should_panic]
    fn tag_mismatch_panics() {
        run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0u8]);
            } else {
                let _ = comm.recv::<u8>(0, 2); // wrong tag
            }
        });
    }

    #[test]
    fn large_rank_count_smoke() {
        let p = 64;
        let out = run_ranks(p, |comm| {
            let mut buf = vec![1u64];
            comm.allreduce(&mut buf, sum_combine);
            buf[0]
        });
        assert!(out.iter().all(|&x| x == p as u64));
    }
}

#[cfg(test)]
mod alltoallv_tests {
    use super::*;
    use crate::communicator::Communicator;

    #[test]
    fn alltoallv_routes_buckets_by_rank() {
        let p = 5;
        let out = run_ranks(p, |comm| {
            // Rank r sends [r*10 + dst; dst+1] to each dst.
            let buckets: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![(comm.rank() * 10 + dst) as u64; dst + 1])
                .collect();
            comm.alltoallv(buckets)
        });
        for (me, received) in out.iter().enumerate() {
            assert_eq!(received.len(), p);
            for (src, bucket) in received.iter().enumerate() {
                assert_eq!(bucket.len(), me + 1, "me={me} src={src}");
                assert!(bucket.iter().all(|&x| x == (src * 10 + me) as u64));
            }
        }
    }

    #[test]
    fn alltoallv_empty_buckets_ok() {
        let out = run_ranks(4, |comm| {
            let buckets: Vec<Vec<u8>> = vec![Vec::new(); 4];
            comm.alltoallv(buckets)
        });
        for received in out {
            assert!(received.iter().all(Vec::is_empty));
        }
    }

    #[test]
    fn alltoallv_single_rank_is_identity() {
        let out = run_ranks(1, |comm| comm.alltoallv(vec![vec![1u8, 2, 3]]));
        assert_eq!(out[0], vec![vec![1, 2, 3]]);
    }

    #[test]
    fn alltoallv_on_split_communicators() {
        // Two independent pairs: traffic must not leak across colors.
        let out = run_ranks(4, |comm| {
            let pair = comm.split(comm.rank() / 2, comm.rank());
            let buckets = vec![vec![comm.rank() as u64], vec![comm.rank() as u64 + 100]];
            pair.alltoallv(buckets)
        });
        // Rank r's bucket[0] (its global rank) goes to the pair's local 0;
        // bucket[1] (rank+100) to local 1.
        assert_eq!(out[0], vec![vec![0], vec![1]]);
        assert_eq!(out[1], vec![vec![100], vec![101]]);
        assert_eq!(out[2], vec![vec![2], vec![3]]);
        assert_eq!(out[3], vec![vec![102], vec![103]]);
    }
}
