//! Per-phase communication statistics.
//!
//! The paper's figures break execution time into *computation*,
//! *communication (shift)*, *communication (reduce)*, and — for the cutoff
//! algorithms — *communication (re-assign)* (Figs. 2 and 6). Algorithms tag
//! the current phase on their communicator; every message and collective is
//! then attributed to that phase. The same buckets are used by the
//! discrete-event simulator, so instrumented executions and simulated
//! schedules can be compared phase-by-phase.

// The phase vocabulary lives in `nbody-trace` (the root of the
// observability stack) and is re-exported here so existing callers keep
// importing it from `nbody_comm`.
pub use nbody_trace::{Phase, ALL_PHASES, PHASE_COUNT};

/// Counters for one phase.
///
/// A "word" throughout the workspace is one element of whatever type went
/// over the wire; `bytes` fields pin that down with `size_of`-based byte
/// counts so comparisons across element types are meaningful.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseCounters {
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Elements (e.g. particles) sent in point-to-point messages.
    pub elements: u64,
    /// Bytes sent in point-to-point messages (`size_of`-based).
    pub bytes: u64,
    /// Collective operations participated in.
    pub collectives: u64,
    /// Elements moved by collectives (per participant contribution).
    pub collective_elements: u64,
    /// Bytes of the collective payloads (`size_of`-based, per participant).
    pub collective_bytes: u64,
    /// Constituent tree messages this rank sent inside collectives — the
    /// difference between the logical collective count and what actually
    /// hit the wire.
    pub collective_messages: u64,
    /// Wall-clock seconds spent blocked waiting for data in this phase.
    pub blocked_secs: f64,
}

impl PhaseCounters {
    fn merge(&mut self, other: &PhaseCounters) {
        self.messages += other.messages;
        self.elements += other.elements;
        self.bytes += other.bytes;
        self.collectives += other.collectives;
        self.collective_elements += other.collective_elements;
        self.collective_bytes += other.collective_bytes;
        self.collective_messages += other.collective_messages;
        self.blocked_secs += other.blocked_secs;
    }
}

/// Per-rank communication statistics, bucketed by [`Phase`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    phases: [PhaseCounters; PHASE_COUNT],
    current: usize,
}

impl CommStats {
    /// Fresh, zeroed statistics starting in [`Phase::Other`].
    pub fn new() -> Self {
        CommStats {
            phases: Default::default(),
            current: Phase::Other.index(),
        }
    }

    /// Set the phase that subsequent operations are attributed to.
    pub fn set_phase(&mut self, phase: Phase) {
        self.current = phase.index();
    }

    /// The phase currently being attributed.
    pub fn current_phase(&self) -> Phase {
        ALL_PHASES[self.current]
    }

    /// Record a point-to-point send of `elements` elements / `bytes` bytes.
    pub fn record_send(&mut self, elements: usize, bytes: usize) {
        let c = &mut self.phases[self.current];
        c.messages += 1;
        c.elements += elements as u64;
        c.bytes += bytes as u64;
    }

    /// Record participation in a collective moving `elements` elements /
    /// `bytes` bytes (this rank's payload contribution).
    pub fn record_collective(&mut self, elements: usize, bytes: usize) {
        let c = &mut self.phases[self.current];
        c.collectives += 1;
        c.collective_elements += elements as u64;
        c.collective_bytes += bytes as u64;
    }

    /// Record one constituent tree message sent inside a collective.
    pub fn record_collective_message(&mut self) {
        self.phases[self.current].collective_messages += 1;
    }

    /// Record `secs` seconds spent blocked waiting for data.
    pub fn record_blocked(&mut self, secs: f64) {
        self.phases[self.current].blocked_secs += secs;
    }

    /// Counters for one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseCounters {
        &self.phases[phase.index()]
    }

    /// Total point-to-point messages across phases.
    pub fn total_messages(&self) -> u64 {
        self.phases.iter().map(|c| c.messages).sum()
    }

    /// Total point-to-point elements across phases.
    pub fn total_elements(&self) -> u64 {
        self.phases.iter().map(|c| c.elements).sum()
    }

    /// Total collectives across phases.
    pub fn total_collectives(&self) -> u64 {
        self.phases.iter().map(|c| c.collectives).sum()
    }

    /// Total point-to-point bytes across phases.
    pub fn total_bytes(&self) -> u64 {
        self.phases.iter().map(|c| c.bytes).sum()
    }

    /// Total collective payload bytes across phases.
    pub fn total_collective_bytes(&self) -> u64 {
        self.phases.iter().map(|c| c.collective_bytes).sum()
    }

    /// Total seconds spent blocked in receives/collectives across phases.
    pub fn total_blocked_secs(&self) -> f64 {
        self.phases.iter().map(|c| c.blocked_secs).sum()
    }

    /// Merge another rank's statistics into this one (for aggregation).
    pub fn merge(&mut self, other: &CommStats) {
        for (a, b) in self.phases.iter_mut().zip(&other.phases) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_bucket_independently() {
        let mut s = CommStats::new();
        s.set_phase(Phase::Shift);
        s.record_send(10, 80);
        s.record_send(5, 40);
        s.set_phase(Phase::Reduce);
        s.record_collective(7, 56);
        s.record_collective_message();
        s.record_blocked(0.5);

        assert_eq!(s.phase(Phase::Shift).messages, 2);
        assert_eq!(s.phase(Phase::Shift).elements, 15);
        assert_eq!(s.phase(Phase::Shift).bytes, 120);
        assert_eq!(s.phase(Phase::Reduce).collectives, 1);
        assert_eq!(s.phase(Phase::Reduce).collective_elements, 7);
        assert_eq!(s.phase(Phase::Reduce).collective_bytes, 56);
        assert_eq!(s.phase(Phase::Reduce).collective_messages, 1);
        assert_eq!(s.phase(Phase::Reduce).blocked_secs, 0.5);
        assert_eq!(s.phase(Phase::Broadcast).messages, 0);
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_elements(), 15);
        assert_eq!(s.total_bytes(), 120);
        assert_eq!(s.total_collectives(), 1);
    }

    #[test]
    fn default_phase_is_other() {
        let mut s = CommStats::new();
        assert_eq!(s.current_phase(), Phase::Other);
        s.record_send(3, 3);
        assert_eq!(s.phase(Phase::Other).messages, 1);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CommStats::new();
        a.set_phase(Phase::Shift);
        a.record_send(4, 32);
        let mut b = CommStats::new();
        b.set_phase(Phase::Shift);
        b.record_send(6, 48);
        b.record_blocked(1.0);
        a.merge(&b);
        assert_eq!(a.phase(Phase::Shift).messages, 2);
        assert_eq!(a.phase(Phase::Shift).elements, 10);
        assert_eq!(a.phase(Phase::Shift).bytes, 80);
        assert_eq!(a.phase(Phase::Shift).blocked_secs, 1.0);
    }

    #[test]
    fn reexported_phase_is_the_trace_crate_phase() {
        // One Phase type across the workspace: attribution set through the
        // comm crate is directly usable by the trace exporters.
        let p: nbody_trace::Phase = Phase::Shift;
        assert_eq!(p.label(), "shift");
        assert_eq!(ALL_PHASES.len(), PHASE_COUNT);
    }
}
