//! Per-phase communication statistics.
//!
//! The paper's figures break execution time into *computation*,
//! *communication (shift)*, *communication (reduce)*, and — for the cutoff
//! algorithms — *communication (re-assign)* (Figs. 2 and 6). Algorithms tag
//! the current phase on their communicator; every message and collective is
//! then attributed to that phase. The same buckets are used by the
//! discrete-event simulator, so instrumented executions and simulated
//! schedules can be compared phase-by-phase.

use std::fmt;

/// Execution phase of the current communication operation, mirroring the
/// stacked-bar categories of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Initial team broadcast of the local subset (Algorithm 1/2, line 2).
    Broadcast,
    /// Row-wise skew by the row index (line 4).
    Skew,
    /// The main shift-and-update loop (lines 5–8).
    Shift,
    /// Final sum-reduction of force updates within each team (line 9).
    Reduce,
    /// Spatial-decomposition maintenance between timesteps (§IV.D).
    Reassign,
    /// Anything else (setup, verification, ...).
    Other,
}

/// All phases, in figure order.
pub const ALL_PHASES: [Phase; 6] = [
    Phase::Broadcast,
    Phase::Skew,
    Phase::Shift,
    Phase::Reduce,
    Phase::Reassign,
    Phase::Other,
];

impl Phase {
    /// Index into per-phase arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Phase::Broadcast => 0,
            Phase::Skew => 1,
            Phase::Shift => 2,
            Phase::Reduce => 3,
            Phase::Reassign => 4,
            Phase::Other => 5,
        }
    }

    /// Human-readable label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Broadcast => "broadcast",
            Phase::Skew => "skew",
            Phase::Shift => "shift",
            Phase::Reduce => "reduce",
            Phase::Reassign => "re-assign",
            Phase::Other => "other",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Counters for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseCounters {
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Elements (e.g. particles) sent in point-to-point messages.
    pub elements: u64,
    /// Collective operations participated in.
    pub collectives: u64,
    /// Elements moved by collectives (per participant contribution).
    pub collective_elements: u64,
    /// Wall-clock seconds spent blocked waiting for data in this phase.
    pub blocked_secs: f64,
}

impl PhaseCounters {
    fn merge(&mut self, other: &PhaseCounters) {
        self.messages += other.messages;
        self.elements += other.elements;
        self.collectives += other.collectives;
        self.collective_elements += other.collective_elements;
        self.blocked_secs += other.blocked_secs;
    }
}

/// Per-rank communication statistics, bucketed by [`Phase`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    phases: [PhaseCounters; 6],
    current: usize,
}

impl CommStats {
    /// Fresh, zeroed statistics starting in [`Phase::Other`].
    pub fn new() -> Self {
        CommStats {
            phases: Default::default(),
            current: Phase::Other.index(),
        }
    }

    /// Set the phase that subsequent operations are attributed to.
    pub fn set_phase(&mut self, phase: Phase) {
        self.current = phase.index();
    }

    /// The phase currently being attributed.
    pub fn current_phase(&self) -> Phase {
        ALL_PHASES[self.current]
    }

    /// Record a point-to-point send of `elements` elements.
    pub fn record_send(&mut self, elements: usize) {
        let c = &mut self.phases[self.current];
        c.messages += 1;
        c.elements += elements as u64;
    }

    /// Record participation in a collective moving `elements` elements.
    pub fn record_collective(&mut self, elements: usize) {
        let c = &mut self.phases[self.current];
        c.collectives += 1;
        c.collective_elements += elements as u64;
    }

    /// Record `secs` seconds spent blocked waiting for data.
    pub fn record_blocked(&mut self, secs: f64) {
        self.phases[self.current].blocked_secs += secs;
    }

    /// Counters for one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseCounters {
        &self.phases[phase.index()]
    }

    /// Total point-to-point messages across phases.
    pub fn total_messages(&self) -> u64 {
        self.phases.iter().map(|c| c.messages).sum()
    }

    /// Total point-to-point elements across phases.
    pub fn total_elements(&self) -> u64 {
        self.phases.iter().map(|c| c.elements).sum()
    }

    /// Total collectives across phases.
    pub fn total_collectives(&self) -> u64 {
        self.phases.iter().map(|c| c.collectives).sum()
    }

    /// Merge another rank's statistics into this one (for aggregation).
    pub fn merge(&mut self, other: &CommStats) {
        for (a, b) in self.phases.iter_mut().zip(&other.phases) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_bucket_independently() {
        let mut s = CommStats::new();
        s.set_phase(Phase::Shift);
        s.record_send(10);
        s.record_send(5);
        s.set_phase(Phase::Reduce);
        s.record_collective(7);
        s.record_blocked(0.5);

        assert_eq!(s.phase(Phase::Shift).messages, 2);
        assert_eq!(s.phase(Phase::Shift).elements, 15);
        assert_eq!(s.phase(Phase::Reduce).collectives, 1);
        assert_eq!(s.phase(Phase::Reduce).collective_elements, 7);
        assert_eq!(s.phase(Phase::Reduce).blocked_secs, 0.5);
        assert_eq!(s.phase(Phase::Broadcast).messages, 0);
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_elements(), 15);
        assert_eq!(s.total_collectives(), 1);
    }

    #[test]
    fn default_phase_is_other() {
        let mut s = CommStats::new();
        assert_eq!(s.current_phase(), Phase::Other);
        s.record_send(3);
        assert_eq!(s.phase(Phase::Other).messages, 1);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CommStats::new();
        a.set_phase(Phase::Shift);
        a.record_send(4);
        let mut b = CommStats::new();
        b.set_phase(Phase::Shift);
        b.record_send(6);
        b.record_blocked(1.0);
        a.merge(&b);
        assert_eq!(a.phase(Phase::Shift).messages, 2);
        assert_eq!(a.phase(Phase::Shift).elements, 10);
        assert_eq!(a.phase(Phase::Shift).blocked_secs, 1.0);
    }

    #[test]
    fn phase_labels_match_paper_legends() {
        assert_eq!(Phase::Shift.label(), "shift");
        assert_eq!(Phase::Reassign.label(), "re-assign");
        assert_eq!(format!("{}", Phase::Reduce), "reduce");
        // index() is a bijection onto 0..6
        let mut seen = [false; 6];
        for p in ALL_PHASES {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
    }
}
