//! Deterministic fault injection: the chaos communicator.
//!
//! [`ChaosComm`] wraps any [`Communicator`] and perturbs its point-to-point
//! traffic according to a [`FaultPlan`] — a deterministic, seedable schedule
//! of faults aimed at `(world rank, pipeline step)` coordinates:
//!
//! * **Drop** — the scheduled send silently vanishes; the receiver's
//!   `try_recv_timeout` expires and the recovery layer retries.
//! * **Delay** — the send is withheld for a fixed number of milliseconds
//!   (must stay under the driver's receive deadline to be benign).
//! * **Duplicate** — the message is sent twice; relaxed tag matching at the
//!   endpoint leaves the second copy unconsumed.
//! * **Kill** — the rank "crashes" at the start of step `k`: its pending
//!   sends stop reaching the wire and every receive it posts fails with
//!   [`CommError::PeerDead`]. The thread itself stays alive so it can act
//!   as the *replacement process* during recovery (`fault_revive`).
//!
//! Faults only strike while the rank's current phase is `Skew` or `Shift` —
//! the systolic pipeline the paper's algorithms spend their communication
//! in — so collectives (broadcast, reduce, recovery agreement) always run
//! clean. Every event fires at most once per execution: a retried pipeline
//! does not re-lose the same message, which models transient faults and
//! one-time crashes rather than a persistently broken link.
//!
//! Chaos executions run with *relaxed* tag matching on the fabric
//! ([`run_ranks_chaos`]), so messages abandoned by an aborted attempt are
//! skipped by tag instead of tripping the strict-mode protocol assertion.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::communicator::{CommData, Communicator};
use crate::error::CommError;
use crate::stats::{CommStats, Phase};
use crate::thread_comm::{run_ranks_owned, ThreadComm};
use nbody_metrics::{Counter, MetricsRecorder, MetricsSnapshot};
use nbody_timeline::{EventKind, RunTimeline, TimelineRecorder};
use nbody_trace::{ExecutionTrace, Tracer};
use nbody_wireprobe::{FaultNote, ProbeKind, ProbeRecorder, WireLog};
use std::time::Instant;

/// What a scheduled fault does to the traffic it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The targeted send never reaches the wire.
    Drop,
    /// The targeted send is withheld for [`FaultEvent::delay_ms`].
    Delay,
    /// The targeted send is transmitted twice.
    Duplicate,
    /// The rank crashes at the start of the targeted step.
    Kill,
}

impl FaultKind {
    /// Spec-grammar name (`kill:1@2` etc.).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Duplicate => "dup",
            FaultKind::Kill => "kill",
        }
    }

    /// The wire-probe event kind this fault is recorded as.
    pub fn probe_kind(self) -> ProbeKind {
        match self {
            FaultKind::Drop => ProbeKind::FaultDrop,
            FaultKind::Delay => ProbeKind::FaultDelay,
            FaultKind::Duplicate => ProbeKind::FaultDup,
            FaultKind::Kill => ProbeKind::FaultKill,
        }
    }
}

/// One scheduled fault: `kind` strikes world rank `rank` at pipeline step
/// `step` (step 0 is the skew, steps ≥ 1 the shift loop — drivers announce
/// them via [`Communicator::fault_step`]). Fires at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// World rank the fault strikes.
    pub rank: usize,
    /// Pipeline step the fault is aimed at (0 = skew).
    pub step: usize,
    /// What happens.
    pub kind: FaultKind,
    /// Withholding time for [`FaultKind::Delay`] events (ignored otherwise).
    pub delay_ms: u64,
}

/// A deterministic schedule of faults, applied identically on every run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled events, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan that injects nothing (the fault-free baseline).
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// Convenience: a single kill of `rank` at step `step`.
    pub fn kill(rank: usize, step: usize) -> FaultPlan {
        FaultPlan {
            events: vec![FaultEvent {
                rank,
                step,
                kind: FaultKind::Kill,
                delay_ms: 0,
            }],
        }
    }

    /// True when the plan contains at least one [`FaultKind::Kill`].
    pub fn has_kills(&self) -> bool {
        self.events.iter().any(|e| e.kind == FaultKind::Kill)
    }

    /// Parse a comma-separated spec: `kind:rank@step` with kinds
    /// `kill | drop | dup | delay`; `delay` takes a trailing
    /// `:milliseconds` (default 5). Examples: `kill:1@2`,
    /// `drop:0@1,dup:3@2,delay:2@3:8`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut events = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind_str, rest) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault `{entry}`: expected kind:rank@step"))?;
            let kind = match kind_str {
                "kill" => FaultKind::Kill,
                "drop" => FaultKind::Drop,
                "dup" => FaultKind::Duplicate,
                "delay" => FaultKind::Delay,
                other => {
                    return Err(format!(
                        "fault `{entry}`: unknown kind `{other}` (want kill|drop|dup|delay)"
                    ))
                }
            };
            let (coord, ms) = match (kind, rest.split_once(':')) {
                (FaultKind::Delay, Some((coord, ms_str))) => {
                    let ms = ms_str
                        .parse::<u64>()
                        .map_err(|_| format!("fault `{entry}`: bad delay milliseconds"))?;
                    (coord, ms)
                }
                (FaultKind::Delay, None) => (rest, 5),
                (_, Some(_)) => {
                    return Err(format!("fault `{entry}`: only delay takes a :ms suffix"))
                }
                (_, None) => (rest, 0),
            };
            let (rank_str, step_str) = coord
                .split_once('@')
                .ok_or_else(|| format!("fault `{entry}`: expected rank@step"))?;
            let rank = rank_str
                .parse::<usize>()
                .map_err(|_| format!("fault `{entry}`: bad rank"))?;
            let step = step_str
                .parse::<usize>()
                .map_err(|_| format!("fault `{entry}`: bad step"))?;
            events.push(FaultEvent {
                rank,
                step,
                kind,
                delay_ms: ms,
            });
        }
        Ok(FaultPlan { events })
    }

    /// The plan's events as conformance-checker fault notes, so a
    /// [`check_conformance`](nbody_wireprobe::check_conformance) pass can
    /// attribute discrepancies to scheduled injections even when the
    /// corresponding probe events were evicted from a saturated ring.
    pub fn probe_notes(&self) -> Vec<FaultNote> {
        self.events
            .iter()
            .map(|e| FaultNote {
                kind: e.kind.probe_kind(),
                rank: e.rank as u32,
                step: Some(e.step as u64),
            })
            .collect()
    }

    /// Render the plan back into the [`parse`](FaultPlan::parse) grammar.
    pub fn spec(&self) -> String {
        self.events
            .iter()
            .map(|e| match e.kind {
                FaultKind::Delay => {
                    format!("delay:{}@{}:{}", e.rank, e.step, e.delay_ms)
                }
                k => format!("{}:{}@{}", k.label(), e.rank, e.step),
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Deterministically generate `n_events` faults from `seed`, drawing
    /// ranks from `0..p`, steps from `0..=max_step`, and kinds from
    /// `kinds`. Delay events get 1–9 ms withholding times — small enough
    /// to stay far below any sane receive deadline.
    pub fn seeded(
        seed: u64,
        p: usize,
        max_step: usize,
        n_events: usize,
        kinds: &[FaultKind],
    ) -> FaultPlan {
        assert!(p > 0 && !kinds.is_empty(), "seeded plan needs ranks and kinds");
        let mut rng = StdRng::seed_from_u64(seed);
        let events = (0..n_events)
            .map(|_| {
                let kind = kinds[rng.gen_range(0..kinds.len())];
                FaultEvent {
                    rank: rng.gen_range(0..p),
                    step: rng.gen_range(0..max_step + 1),
                    kind,
                    delay_ms: if kind == FaultKind::Delay {
                        rng.gen_range(1..10)
                    } else {
                        0
                    },
                }
            })
            .collect();
        FaultPlan { events }
    }
}

/// Per-rank injection state, shared by every communicator derived from the
/// rank's world handle (so faults aim at world coordinates regardless of
/// which split the traffic flows through).
struct ChaosState {
    world_rank: usize,
    events: Vec<FaultEvent>,
    fired: Vec<Cell<bool>>,
    dead: Cell<bool>,
    step: Cell<usize>,
    phase: Cell<Phase>,
    injected_total: Counter,
    injected_drop: Counter,
    injected_delay: Counter,
    injected_dup: Counter,
    injected_kill: Counter,
    timeline: TimelineRecorder,
    wire: ProbeRecorder,
}

impl ChaosState {
    /// Consume the next unfired point-to-point event aimed at the current
    /// `(rank, step)` coordinate, if the rank is inside an injectable
    /// phase window.
    fn take_p2p_event(&self) -> Option<FaultEvent> {
        if !matches!(self.phase.get(), Phase::Skew | Phase::Shift) {
            return None;
        }
        let step = self.step.get();
        for (e, fired) in self.events.iter().zip(&self.fired) {
            if !fired.get()
                && e.kind != FaultKind::Kill
                && e.rank == self.world_rank
                && e.step == step
            {
                fired.set(true);
                self.injected_total.inc();
                match e.kind {
                    FaultKind::Drop => self.injected_drop.inc(),
                    FaultKind::Delay => self.injected_delay.inc(),
                    FaultKind::Duplicate => self.injected_dup.inc(),
                    FaultKind::Kill => unreachable!(),
                }
                self.timeline.event(
                    EventKind::FaultInjected,
                    Some(step as u64),
                    e.kind.label(),
                );
                return Some(*e);
            }
        }
        None
    }

    /// Consume an unfired kill aimed at `(rank, step)`.
    fn take_kill(&self, step: usize) -> bool {
        for (e, fired) in self.events.iter().zip(&self.fired) {
            if !fired.get()
                && e.kind == FaultKind::Kill
                && e.rank == self.world_rank
                && e.step == step
            {
                fired.set(true);
                self.injected_total.inc();
                self.injected_kill.inc();
                self.timeline.event(
                    EventKind::FaultInjected,
                    Some(step as u64),
                    FaultKind::Kill.label(),
                );
                // A kill suppresses unknown future traffic; record it with
                // the rank as its own peer and no payload.
                self.wire.fault(
                    ProbeKind::FaultKill,
                    self.world_rank as u32,
                    0,
                    self.phase.get(),
                    0,
                    0,
                    step as u64,
                );
                return true;
            }
        }
        false
    }
}

/// A fault-injecting wrapper around any transport; see the module docs.
///
/// Splits share the wrapper's injection state, so a grid built from a
/// chaos world keeps aiming faults at world-rank coordinates.
pub struct ChaosComm<C: Communicator> {
    inner: C,
    state: Rc<ChaosState>,
}

impl<C: Communicator> ChaosComm<C> {
    /// Wrap `inner` (a *world* communicator: its rank is used as the fault
    /// plan's world-rank coordinate) with the events of `plan`.
    pub fn new(inner: C, plan: &FaultPlan) -> ChaosComm<C> {
        let world_rank = inner.rank();
        let events: Vec<FaultEvent> = plan
            .events
            .iter()
            .copied()
            .filter(|e| e.rank == world_rank)
            .collect();
        let rec = inner.metrics();
        let state = ChaosState {
            world_rank,
            fired: vec![Cell::new(false); events.len()],
            events,
            dead: Cell::new(false),
            step: Cell::new(0),
            phase: Cell::new(Phase::Other),
            injected_total: rec.counter("fault_injected_total", None),
            injected_drop: rec.counter("fault_injected_drop", None),
            injected_delay: rec.counter("fault_injected_delay", None),
            injected_dup: rec.counter("fault_injected_duplicate", None),
            injected_kill: rec.counter("fault_injected_kill", None),
            timeline: inner.timeline(),
            wire: inner.wire(),
        };
        ChaosComm {
            inner,
            state: Rc::new(state),
        }
    }

    /// Whether this rank is currently "crashed" by a fired kill event.
    pub fn is_dead(&self) -> bool {
        self.state.dead.get()
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Communicator> Communicator for ChaosComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn set_phase(&self, phase: Phase) {
        self.state.phase.set(phase);
        self.inner.set_phase(phase);
    }

    fn stats(&self) -> CommStats {
        self.inner.stats()
    }

    fn tracer(&self) -> Tracer {
        self.inner.tracer()
    }

    fn metrics(&self) -> MetricsRecorder {
        self.inner.metrics()
    }

    fn timeline(&self) -> TimelineRecorder {
        self.inner.timeline()
    }

    fn wire(&self) -> ProbeRecorder {
        self.state.wire.clone()
    }

    fn send<T: CommData>(&self, dst: usize, tag: u64, data: &[T]) {
        // Injections land in the probe stream as first-class events so a
        // conformance pass can attribute the resulting traffic anomalies
        // to the fault plan instead of flagging them as protocol bugs.
        let probe_fault = |kind: FaultKind| {
            self.state.wire.fault(
                kind.probe_kind(),
                dst as u32,
                tag,
                self.state.phase.get(),
                data.len() as u64,
                std::mem::size_of_val(data) as u64,
                self.state.step.get() as u64,
            );
        };
        if self.state.dead.get() {
            // A crashed rank's messages never reach the wire.
            probe_fault(FaultKind::Kill);
            return;
        }
        match self.state.take_p2p_event() {
            Some(e) if e.kind == FaultKind::Drop => probe_fault(FaultKind::Drop),
            Some(e) if e.kind == FaultKind::Delay => {
                probe_fault(FaultKind::Delay);
                std::thread::sleep(Duration::from_millis(e.delay_ms));
                self.inner.send(dst, tag, data);
            }
            Some(e) if e.kind == FaultKind::Duplicate => {
                probe_fault(FaultKind::Duplicate);
                self.inner.send(dst, tag, data);
                self.inner.send(dst, tag, data);
            }
            _ => self.inner.send(dst, tag, data),
        }
    }

    fn recv<T: CommData>(&self, src: usize, tag: u64) -> Vec<T> {
        self.inner.recv(src, tag)
    }

    fn try_recv_timeout<T: CommData>(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<T>, CommError> {
        if self.state.dead.get() {
            return Err(CommError::PeerDead {
                rank: self.state.world_rank,
            });
        }
        self.inner.try_recv_timeout(src, tag, timeout)
    }

    fn fault_step(&self, step: usize) -> Result<(), CommError> {
        self.state.step.set(step);
        if self.state.dead.get() || self.state.take_kill(step) {
            self.state.dead.set(true);
            return Err(CommError::PeerDead {
                rank: self.state.world_rank,
            });
        }
        Ok(())
    }

    fn fault_revive(&self) {
        self.state.dead.set(false);
    }

    fn bcast<T: CommData>(&self, root: usize, buf: &mut Vec<T>) {
        self.inner.bcast(root, buf);
    }

    fn reduce<T: CommData>(&self, root: usize, buf: &mut Vec<T>, combine: fn(&mut T, &T)) {
        self.inner.reduce(root, buf, combine);
    }

    fn gather<T: CommData>(&self, root: usize, data: &[T]) -> Option<Vec<Vec<T>>> {
        self.inner.gather(root, data)
    }

    fn barrier(&self) {
        self.inner.barrier();
    }

    fn split(&self, color: usize, key: usize) -> ChaosComm<C> {
        ChaosComm {
            inner: self.inner.split(color, key),
            state: Rc::clone(&self.state),
        }
    }
}

/// [`run_ranks`](crate::run_ranks) under fault injection: each rank's world
/// communicator is wrapped in a [`ChaosComm`] carrying its slice of `plan`,
/// and the fabric runs with relaxed tag matching so aborted protocol
/// attempts leave stale messages unconsumed instead of panicking.
pub fn run_ranks_chaos<R, F>(p: usize, plan: &FaultPlan, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut ChaosComm<ThreadComm>) -> R + Sync,
{
    run_ranks_owned(p, None, true, true, false, |comm| {
        let mut chaos = ChaosComm::new(comm, plan);
        f(&mut chaos)
    })
    .into_iter()
    .map(|(r, _, _, _, _)| r)
    .collect()
}

/// [`run_ranks_chaos`] with per-rank wall-clock tracing, live metrics and
/// a step timeline, mirroring [`run_ranks_traced`](crate::run_ranks_traced).
pub fn run_ranks_chaos_traced<R, F>(
    p: usize,
    plan: &FaultPlan,
    f: F,
) -> (Vec<R>, ExecutionTrace, MetricsSnapshot, RunTimeline)
where
    R: Send,
    F: Fn(&mut ChaosComm<ThreadComm>) -> R + Sync,
{
    let (results, trace, metrics, timeline, _) = run_ranks_chaos_impl(p, plan, false, f);
    (results, trace, metrics, timeline)
}

/// [`run_ranks_chaos_traced`] with wire probes on as well: every rank's
/// probe ring records protocol sends/recvs *and* the chaos wrapper's
/// injected faults as first-class events, so the merged [`WireLog`] carries
/// everything a conformance pass needs to attribute discrepancies to the
/// [`FaultPlan`].
pub fn run_ranks_chaos_probed<R, F>(
    p: usize,
    plan: &FaultPlan,
    f: F,
) -> (Vec<R>, ExecutionTrace, MetricsSnapshot, RunTimeline, WireLog)
where
    R: Send,
    F: Fn(&mut ChaosComm<ThreadComm>) -> R + Sync,
{
    run_ranks_chaos_impl(p, plan, true, f)
}

fn run_ranks_chaos_impl<R, F>(
    p: usize,
    plan: &FaultPlan,
    probe: bool,
    f: F,
) -> (Vec<R>, ExecutionTrace, MetricsSnapshot, RunTimeline, WireLog)
where
    R: Send,
    F: Fn(&mut ChaosComm<ThreadComm>) -> R + Sync,
{
    let epoch = Instant::now();
    let out = run_ranks_owned(p, Some(epoch), true, true, probe, |comm| {
        let mut chaos = ChaosComm::new(comm, plan);
        f(&mut chaos)
    });
    let mut results = Vec::with_capacity(p);
    let mut buffers = Vec::with_capacity(p);
    let mut shards = Vec::with_capacity(p);
    let mut timelines = Vec::with_capacity(p);
    let mut wires = Vec::with_capacity(p);
    for (r, spans, metrics, timeline, wire) in out {
        results.push(r);
        buffers.push(spans);
        shards.push(metrics);
        timelines.extend(timeline);
        wires.extend(wire);
    }
    (
        results,
        ExecutionTrace::from_rank_buffers(buffers),
        MetricsSnapshot::from_shards(shards),
        RunTimeline::from_ranks(timelines),
        WireLog::from_ranks(wires),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parse_roundtrips() {
        let plan = FaultPlan::parse("kill:1@2, drop:0@1,dup:3@2,delay:2@3:8").unwrap();
        assert_eq!(plan.events.len(), 4);
        assert_eq!(
            plan.events[0],
            FaultEvent { rank: 1, step: 2, kind: FaultKind::Kill, delay_ms: 0 }
        );
        assert_eq!(
            plan.events[3],
            FaultEvent { rank: 2, step: 3, kind: FaultKind::Delay, delay_ms: 8 }
        );
        assert!(plan.has_kills());
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::empty());
        assert!(!FaultPlan::empty().has_kills());
    }

    #[test]
    fn plan_parse_rejects_malformed_specs() {
        for bad in [
            "boom:1@2",
            "kill:1",
            "kill:x@2",
            "kill:1@y",
            "drop:1@2:5",
            "kill",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let kinds = [FaultKind::Delay, FaultKind::Duplicate];
        let a = FaultPlan::seeded(7, 8, 4, 6, &kinds);
        let b = FaultPlan::seeded(7, 8, 4, 6, &kinds);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 6);
        for e in &a.events {
            assert!(e.rank < 8);
            assert!(e.step <= 4);
            assert!(matches!(e.kind, FaultKind::Delay | FaultKind::Duplicate));
            if e.kind == FaultKind::Delay {
                assert!((1..10).contains(&e.delay_ms));
            }
        }
        // Different seeds diverge (overwhelmingly likely over 6 events).
        assert_ne!(a, FaultPlan::seeded(8, 8, 4, 6, &kinds));
        assert!(!a.has_kills());
    }

    #[test]
    fn empty_plan_is_transparent() {
        let plan = FaultPlan::empty();
        let out = run_ranks_chaos(4, &plan, |comm| {
            comm.set_phase(Phase::Shift);
            comm.fault_step(1).unwrap();
            let p = comm.size();
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let token = comm.sendrecv(right, left, 1, &[comm.rank() as u64]);
            assert!(!comm.is_dead());
            token[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn duplicate_and_delay_are_benign_under_relaxed_matching() {
        let plan = FaultPlan::parse("dup:0@1,delay:1@1:2").unwrap();
        let out = run_ranks_chaos(2, &plan, |comm| {
            comm.set_phase(Phase::Shift);
            comm.fault_step(1).unwrap();
            let other = 1 - comm.rank();
            // Each rank sends one tagged message; the duplicate's second
            // copy must be skipped by tag matching on later receives.
            comm.send(other, 10, &[comm.rank() as u64]);
            let got = comm.recv::<u64>(other, 10);
            comm.send(other, 11, &[got[0] + 100]);
            comm.recv::<u64>(other, 11)
        });
        assert_eq!(out[0], vec![100]);
        assert_eq!(out[1], vec![101]);
    }

    #[test]
    fn kill_fires_once_and_revives() {
        let plan = FaultPlan::kill(1, 2);
        let out = run_ranks_chaos(2, &plan, |comm| {
            comm.set_phase(Phase::Shift);
            let mut log = Vec::new();
            log.push(comm.fault_step(1).is_ok());
            log.push(comm.fault_step(2).is_ok()); // rank 1 dies here
            log.push(comm.fault_step(3).is_ok()); // stays dead
            comm.fault_revive();
            log.push(comm.fault_step(3).is_ok()); // revived; event spent
            log
        });
        assert_eq!(out[0], vec![true, true, true, true]);
        assert_eq!(out[1], vec![true, false, false, true]);
    }

    #[test]
    fn dead_rank_sends_vanish_and_recvs_fail_fast() {
        let plan = FaultPlan::kill(0, 1);
        let out = run_ranks_chaos(2, &plan, |comm| {
            comm.set_phase(Phase::Shift);
            let dead = comm.fault_step(1).is_err();
            if comm.rank() == 0 {
                assert!(dead);
                // These sends go nowhere.
                comm.send(1, 5, &[1u8]);
                let err = comm
                    .try_recv_timeout::<u8>(1, 6, Duration::from_millis(10))
                    .unwrap_err();
                assert!(matches!(err, CommError::PeerDead { rank: 0 }));
                0
            } else {
                assert!(!dead);
                let err = comm
                    .try_recv_timeout::<u8>(0, 5, Duration::from_millis(50))
                    .unwrap_err();
                assert!(matches!(err, CommError::Timeout { .. }), "{err}");
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn drop_loses_exactly_one_message() {
        let plan = FaultPlan::parse("drop:0@1").unwrap();
        let out = run_ranks_chaos(2, &plan, |comm| {
            comm.set_phase(Phase::Shift);
            comm.fault_step(1).unwrap();
            if comm.rank() == 0 {
                comm.send(1, 21, &[7u8]); // dropped
                comm.send(1, 22, &[8u8]); // delivered (event is one-shot)
                0u8
            } else {
                let missing = comm.try_recv_timeout::<u8>(0, 21, Duration::from_millis(50));
                assert!(matches!(missing, Err(CommError::Timeout { .. })));
                comm.recv::<u8>(0, 22)[0]
            }
        });
        assert_eq!(out, vec![0, 8]);
    }

    #[test]
    fn faults_outside_pipeline_phases_do_not_fire() {
        // Same coordinates, but the rank never enters Skew/Shift: the drop
        // must not trigger on Reassign-phase traffic.
        let plan = FaultPlan::parse("drop:0@1").unwrap();
        let out = run_ranks_chaos(2, &plan, |comm| {
            comm.set_phase(Phase::Reassign);
            comm.fault_step(1).unwrap();
            if comm.rank() == 0 {
                comm.send(1, 9, &[42u8]);
                0
            } else {
                comm.recv::<u8>(0, 9)[0]
            }
        });
        assert_eq!(out[1], 42);
    }

    #[test]
    fn injection_metrics_are_recorded() {
        let plan = FaultPlan::parse("drop:0@1,kill:1@1").unwrap();
        let (_, _, metrics, timeline) = run_ranks_chaos_traced(2, &plan, |comm| {
            comm.set_phase(Phase::Shift);
            let _ = comm.fault_step(1);
            if comm.rank() == 0 {
                comm.send(1, 1, &[1u8]);
            }
            comm.fault_revive();
        });
        assert_eq!(metrics.sum_counter("fault_injected_total", None), 2);
        assert_eq!(metrics.sum_counter("fault_injected_drop", None), 1);
        assert_eq!(metrics.sum_counter("fault_injected_kill", None), 1);
        // Each injection also lands in the rank's flight ring.
        let fault_events: Vec<_> = timeline
            .ranks
            .iter()
            .flat_map(|r| &r.events)
            .filter(|e| e.kind == EventKind::FaultInjected)
            .collect();
        assert_eq!(fault_events.len(), 2);
        let drop_ev = fault_events.iter().find(|e| e.detail == "drop").unwrap();
        assert_eq!(drop_ev.step, Some(1));
        assert!(fault_events.iter().any(|e| e.detail == "kill"));
    }

    #[test]
    fn injected_faults_are_first_class_probe_events() {
        use nbody_wireprobe::{FaultNote, ProbeKind};
        let plan = FaultPlan::parse("drop:0@1,dup:1@1").unwrap();
        let (_, _, _, _, wire) = run_ranks_chaos_probed(2, &plan, |comm| {
            comm.set_phase(Phase::Shift);
            comm.fault_step(1).unwrap();
            if comm.rank() == 0 {
                comm.send(1, 30, &[0u64]); // dropped by the plan
                let _ = comm.recv::<u64>(1, 30); // first duplicate copy
            } else {
                comm.send(0, 30, &[1u64]); // duplicated by the plan
                let missing = comm.try_recv_timeout::<u64>(0, 30, Duration::from_millis(50));
                assert!(matches!(missing, Err(CommError::Timeout { .. })));
            }
            comm.barrier();
        });
        let r0: Vec<_> = wire.ranks[0].events.iter().collect();
        let r1: Vec<_> = wire.ranks[1].events.iter().collect();
        // Rank 0's send was dropped: a FaultDrop event carrying the doomed
        // message's coordinates replaces the Send event...
        let drop = r0.iter().find(|e| e.kind == ProbeKind::FaultDrop).unwrap();
        assert_eq!(drop.tag, 30);
        assert_eq!(drop.count, 1);
        assert_eq!(drop.step, Some(1));
        assert!(
            !r0.iter().any(|e| e.kind == ProbeKind::Send && e.tag == 30),
            "the dropped message never reached the wire: {r0:?}"
        );
        // ...while rank 1's duplicate is announced and then sent twice.
        let dup = r1.iter().find(|e| e.kind == ProbeKind::FaultDup).unwrap();
        assert_eq!(dup.step, Some(1));
        assert_eq!(
            r1.iter()
                .filter(|e| e.kind == ProbeKind::Send && e.tag == 30)
                .count(),
            2
        );
        // The log alone reconstructs the fault plan for attribution.
        let notes = FaultNote::from_log(&wire);
        assert_eq!(notes.len(), 2);
        assert!(notes.contains(&FaultNote {
            kind: ProbeKind::FaultDrop,
            rank: 0,
            step: Some(1)
        }));
        // And the plan itself maps to the same note vocabulary.
        let planned = plan.probe_notes();
        assert!(planned.contains(&FaultNote {
            kind: ProbeKind::FaultDup,
            rank: 1,
            step: Some(1)
        }));
    }

    #[test]
    fn dead_rank_suppressed_sends_are_probed_as_kills() {
        use nbody_wireprobe::ProbeKind;
        let plan = FaultPlan::kill(0, 1);
        let (_, _, _, _, wire) = run_ranks_chaos_probed(2, &plan, |comm| {
            comm.set_phase(Phase::Shift);
            let dead = comm.fault_step(1).is_err();
            if comm.rank() == 0 {
                assert!(dead);
                comm.send(1, 5, &[1u8, 2, 3]); // goes nowhere
            }
        });
        let kills: Vec<_> = wire.ranks[0]
            .events
            .iter()
            .filter(|e| e.kind == ProbeKind::FaultKill)
            .collect();
        // One event for the kill itself, one per suppressed send.
        assert_eq!(kills.len(), 2, "{kills:?}");
        assert!(kills.iter().any(|e| e.tag == 5 && e.count == 3));
        assert!(
            !wire.ranks[0].events.iter().any(|e| e.kind == ProbeKind::Send),
            "a dead rank's traffic never hits the wire"
        );
    }

    #[test]
    fn split_shares_chaos_state() {
        // A kill observed through the world handle is visible on a split.
        let plan = FaultPlan::kill(1, 1);
        let out = run_ranks_chaos(2, &plan, |comm| {
            let sub = comm.split(0, comm.rank());
            comm.set_phase(Phase::Shift);
            let died = sub.fault_step(1).is_err();
            (died, comm.is_dead())
        });
        assert_eq!(out[0], (false, false));
        assert_eq!(out[1], (true, true));
    }
}
