//! A single-rank communicator with no threads or channels.
//!
//! [`SelfComm`] implements the full [`Communicator`] surface for `p = 1`:
//! collectives are identities, sends loop back to the local mailbox, and
//! `split` returns another `SelfComm`. It lets applications embed the
//! distributed algorithms in strictly serial contexts (tools, tests,
//! wasm-style environments) without spawning the threaded runtime — and it
//! pins down the degenerate-case semantics of the `Communicator` contract.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::comm_metrics::CommMetrics;
use crate::communicator::{CommData, Communicator};
use crate::stats::{CommStats, Phase};
use nbody_metrics::MetricsRecorder;
use nbody_wireprobe::ProbeRecorder;

/// Queued loopback messages: `(tag, type-erased payload)`.
type Mailbox = VecDeque<(u64, Box<dyn std::any::Any>)>;

/// The one-rank communicator.
pub struct SelfComm {
    stats: Rc<RefCell<CommStats>>,
    recorder: MetricsRecorder,
    metrics: Rc<CommMetrics>,
    wire: ProbeRecorder,
    /// Loopback mailbox: sends to rank 0 are queued here for recv.
    mailbox: Rc<RefCell<Mailbox>>,
}

impl Default for SelfComm {
    fn default() -> Self {
        SelfComm::metered(MetricsRecorder::disabled())
    }
}

impl SelfComm {
    /// Create a fresh single-rank communicator (metrics disabled).
    pub fn new() -> Self {
        SelfComm::default()
    }

    /// Create a single-rank communicator recording into `recorder`.
    pub fn metered(recorder: MetricsRecorder) -> Self {
        SelfComm::probed(recorder, ProbeRecorder::disabled())
    }

    /// Create a single-rank communicator recording metrics into `recorder`
    /// and per-message wire probes into `wire`. Loopback sends/recvs get
    /// the same probe stream a threaded rank would emit.
    pub fn probed(recorder: MetricsRecorder, wire: ProbeRecorder) -> Self {
        let metrics = Rc::new(CommMetrics::new(&recorder));
        SelfComm {
            stats: Rc::new(RefCell::new(CommStats::new())),
            recorder,
            metrics,
            wire,
            mailbox: Rc::new(RefCell::new(VecDeque::new())),
        }
    }
}

impl Communicator for SelfComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn set_phase(&self, phase: Phase) {
        self.stats.borrow_mut().set_phase(phase);
    }

    fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    fn metrics(&self) -> MetricsRecorder {
        self.recorder.clone()
    }

    fn wire(&self) -> ProbeRecorder {
        self.wire.clone()
    }

    fn send<T: CommData>(&self, dst: usize, tag: u64, data: &[T]) {
        assert_eq!(dst, 0, "single-rank send must loop back");
        let bytes = std::mem::size_of_val(data);
        let phase = {
            let mut stats = self.stats.borrow_mut();
            stats.record_send(data.len(), bytes);
            stats.current_phase()
        };
        self.metrics.on_send(phase, data.len(), bytes, true);
        self.wire
            .send(0, 0, tag, phase, data.len() as u64, bytes as u64);
        self.mailbox
            .borrow_mut()
            .push_back((tag, Box::new(data.to_vec())));
    }

    fn recv<T: CommData>(&self, src: usize, tag: u64) -> Vec<T> {
        assert_eq!(src, 0, "single-rank recv must loop back");
        let (got_tag, payload) = self
            .mailbox
            .borrow_mut()
            .pop_front()
            .expect("recv on an empty loopback mailbox (would deadlock)");
        assert_eq!(got_tag, tag, "loopback tag mismatch");
        let data = *payload
            .downcast::<Vec<T>>()
            .expect("loopback payload type mismatch");
        let phase = self.stats.borrow().current_phase();
        self.wire.recv(
            0,
            0,
            tag,
            phase,
            data.len() as u64,
            (data.len() * std::mem::size_of::<T>()) as u64,
        );
        data
    }

    fn bcast<T: CommData>(&self, root: usize, _buf: &mut Vec<T>) {
        assert_eq!(root, 0);
    }

    fn reduce<T: CommData>(&self, root: usize, _buf: &mut Vec<T>, _combine: fn(&mut T, &T)) {
        assert_eq!(root, 0);
    }

    fn gather<T: CommData>(&self, root: usize, data: &[T]) -> Option<Vec<Vec<T>>> {
        assert_eq!(root, 0);
        Some(vec![data.to_vec()])
    }

    fn barrier(&self) {}

    fn split(&self, _color: usize, key: usize) -> SelfComm {
        let _ = key;
        SelfComm {
            stats: Rc::clone(&self.stats),
            recorder: self.recorder.clone(),
            metrics: Rc::clone(&self.metrics),
            wire: self.wire.clone(),
            mailbox: Rc::new(RefCell::new(VecDeque::new())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::sum_combine;

    #[test]
    fn identity_collectives() {
        let comm = SelfComm::new();
        assert_eq!(comm.rank(), 0);
        assert_eq!(comm.size(), 1);
        let mut buf = vec![1u64, 2, 3];
        comm.bcast(0, &mut buf);
        comm.reduce(0, &mut buf, sum_combine);
        comm.allreduce(&mut buf, sum_combine);
        assert_eq!(buf, vec![1, 2, 3]);
        assert_eq!(comm.gather(0, &buf), Some(vec![vec![1, 2, 3]]));
        assert_eq!(comm.allgather(&buf), vec![vec![1, 2, 3]]);
        assert_eq!(comm.alltoallv(vec![vec![9u8]]), vec![vec![9]]);
        comm.barrier();
    }

    #[test]
    fn loopback_send_recv() {
        let comm = SelfComm::new();
        comm.send(0, 7, &[10u32, 20]);
        comm.send(0, 8, &[30u32]);
        assert_eq!(comm.recv::<u32>(0, 7), vec![10, 20]);
        assert_eq!(comm.recv::<u32>(0, 8), vec![30]);
        assert_eq!(comm.stats().total_messages(), 2);
    }

    #[test]
    fn sendrecv_ring_of_one() {
        let comm = SelfComm::new();
        let got = comm.sendrecv(0, 0, 1, &[5u8]);
        assert_eq!(got, vec![5]);
    }

    #[test]
    #[should_panic(expected = "empty loopback mailbox")]
    fn recv_without_send_panics() {
        let comm = SelfComm::new();
        let _ = comm.recv::<u8>(0, 1);
    }

    #[test]
    fn split_shares_stats() {
        let comm = SelfComm::new();
        comm.set_phase(Phase::Shift);
        let sub = comm.split(0, 0);
        sub.send(0, 1, &[1u8, 2, 3]);
        let _ = sub.recv::<u8>(0, 1);
        assert_eq!(comm.stats().phase(Phase::Shift).messages, 1);
        assert_eq!(comm.stats().phase(Phase::Shift).elements, 3);
    }

    #[test]
    fn metered_self_comm_records_bytes() {
        let rec = MetricsRecorder::for_rank(0);
        let comm = SelfComm::metered(rec.clone());
        comm.set_phase(Phase::Shift);
        let sub = comm.split(0, 0);
        sub.send(0, 1, &[1u64, 2]);
        let _ = sub.recv::<u64>(0, 1);
        assert_eq!(comm.stats().phase(Phase::Shift).bytes, 16);
        let m = rec.finish().unwrap();
        assert_eq!(m.counter("comm_send_bytes", Some(Phase::Shift)), 16);
        assert_eq!(m.counter("comm_send_messages", Some(Phase::Shift)), 1);
        assert!(comm.metrics().is_enabled());
        assert!(!SelfComm::new().metrics().is_enabled());
    }

    #[test]
    fn ca_all_pairs_runs_on_self_comm() {
        // The whole Algorithm-1 code path on one rank, no threads.
        // (Exercised through the generic function, not run_ranks.)
        use crate::communicator::Communicator as _;
        let comm = SelfComm::new();
        // p=1, c=1 grid: broadcast/skew/reduce are no-ops, a single shift.
        let mut token = vec![42u64];
        token = comm.sendrecv(0, 0, 99, &token);
        assert_eq!(token, vec![42]);
    }
}
