//! Structured errors for the fallible communication paths.
//!
//! The blocking [`Communicator::recv`] keeps its MPI-style contract — a
//! protocol violation is a bug and panics — but fault-tolerant drivers need
//! to *observe* failures instead of dying with them. [`CommError`] is the
//! vocabulary of those observations: every way a receive or send can go
//! wrong on the threaded transport, as data instead of a panic message.
//!
//! [`Communicator::recv`]: crate::communicator::Communicator::recv

use std::fmt;
use std::time::Duration;

/// A communication failure, returned by the `try_*` paths of
/// [`Communicator`](crate::communicator::Communicator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the deadline. On a healthy
    /// protocol this means the peer died or stopped sending — the signal
    /// the recovery layer turns into a retry.
    Timeout {
        /// Local rank the receive was posted against.
        src: usize,
        /// Tag the receive was waiting for.
        tag: u64,
        /// How long the receive waited before giving up.
        waited: Duration,
    },
    /// The local rank has been declared dead by fault injection (or knows
    /// its peer has): no further point-to-point progress is possible.
    PeerDead {
        /// World rank of the dead process.
        rank: usize,
    },
    /// The next in-order message from the source carried the wrong tag —
    /// a protocol violation (only reported under strict matching).
    TagMismatch {
        /// Local source rank.
        src: usize,
        /// Tag the receive expected.
        expected: u64,
        /// Tag the message actually carried.
        got: u64,
    },
    /// The matched message's payload was not the expected element type.
    TypeMismatch {
        /// Local source rank.
        src: usize,
        /// Tag of the offending message.
        tag: u64,
    },
    /// The destination or source rank is outside `0..size()`.
    InvalidRank {
        /// The out-of-range rank.
        rank: usize,
        /// The communicator's size.
        size: usize,
    },
    /// The transport fabric shut down while an operation was in flight.
    FabricClosed,
    /// The rank's replicated simulation state no longer matches its
    /// column's majority fingerprint: silent corruption detected by the
    /// health cross-check. The recovery layer treats this as its own
    /// fault class — the corrupt replica must be re-seeded, not retried.
    StateCorrupt {
        /// World rank holding the corrupt replica.
        rank: usize,
        /// The column-majority state fingerprint.
        expected: u64,
        /// The fingerprint the rank's own state hashes to.
        got: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { src, tag, waited } => write!(
                f,
                "receive from rank {src} (tag {tag}) timed out after {waited:?} — \
                 protocol deadlock or dead peer?"
            ),
            CommError::PeerDead { rank } => {
                write!(f, "rank {rank} is dead; no point-to-point progress possible")
            }
            CommError::TagMismatch { src, expected, got } => write!(
                f,
                "expected tag {expected} from rank {src}, got {got}"
            ),
            CommError::TypeMismatch { src, tag } => write!(
                f,
                "payload type mismatch from rank {src} (tag {tag})"
            ),
            CommError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            CommError::FabricClosed => write!(f, "fabric closed while operating"),
            CommError::StateCorrupt { rank, expected, got } => write!(
                f,
                "rank {rank} replica state is corrupt: fingerprint {got:016x} \
                 disagrees with column majority {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_diagnostic() {
        let e = CommError::Timeout {
            src: 3,
            tag: 7,
            waited: Duration::from_millis(250),
        };
        let s = e.to_string();
        assert!(s.contains("rank 3"), "{s}");
        assert!(s.contains("tag 7"), "{s}");
        assert!(s.contains("timed out"), "{s}");
        assert!(CommError::FabricClosed.to_string().contains("fabric closed"));
        assert!(CommError::PeerDead { rank: 1 }.to_string().contains("rank 1"));
        assert!(
            CommError::TagMismatch { src: 0, expected: 2, got: 9 }
                .to_string()
                .contains("expected tag 2")
        );
        assert!(
            CommError::InvalidRank { rank: 9, size: 4 }
                .to_string()
                .contains("size 4")
        );
        let s = CommError::StateCorrupt {
            rank: 5,
            expected: 0xdead,
            got: 0xbeef,
        }
        .to_string();
        assert!(s.contains("rank 5") && s.contains("000000000000dead"), "{s}");
    }

    #[test]
    fn errors_compare_and_clone() {
        let a = CommError::PeerDead { rank: 2 };
        assert_eq!(a.clone(), a);
        assert_ne!(a, CommError::FabricClosed);
    }
}
