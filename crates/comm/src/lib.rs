//! # nbody-comm
//!
//! An MPI-like message-passing runtime for the reproduction of
//! *“A Communication-Optimal N-Body Algorithm for Direct Interactions”*
//! (IPDPS 2013).
//!
//! The paper's experiments ran C/MPI codes on Cray XE-6 and BlueGene/P
//! clusters. This crate substitutes a faithful in-process transport: each
//! rank is an OS thread, point-to-point messages and tree collectives have
//! MPI semantics, and communicators can be `split` into the paper's
//! `p/c × c` grids of teams and rows. Every operation is attributed to an
//! execution [`Phase`] so instrumented runs can be compared against the
//! paper's per-phase time breakdowns and against the discrete-event network
//! simulator in `nbody-netsim`.

#![warn(missing_docs)]

pub mod chaos;
mod comm_metrics;
pub mod communicator;
pub mod error;
pub mod self_comm;
pub mod stats;
pub mod thread_comm;

pub use chaos::{
    run_ranks_chaos, run_ranks_chaos_probed, run_ranks_chaos_traced, ChaosComm, FaultEvent,
    FaultKind, FaultPlan,
};
pub use communicator::{sum_combine, CommData, Communicator};
pub use error::CommError;
pub use stats::{CommStats, Phase, PhaseCounters, ALL_PHASES, PHASE_COUNT};
pub use self_comm::SelfComm;
pub use thread_comm::{
    run_ranks, run_ranks_probed, run_ranks_probed_traced, run_ranks_silent, run_ranks_traced,
    validate_env, ThreadComm,
};
pub use nbody_metrics::{MetricsRecorder, MetricsSnapshot, RankMetrics};
pub use nbody_timeline::{
    EventKind, FlightEvent, RankTimeline, RunTimeline, StepSample, TimelineRecorder,
};
pub use nbody_trace::{ExecutionTrace, Tracer};
pub use nbody_wireprobe::{
    causal_log, check_conformance, match_events, ChannelStats, ConformanceReport, ExpectedMsg,
    ExpectedSchedule, FaultNote, LatencySummary, MsgEvent, ProbeKind, ProbeRecorder, RankWireLog,
    Violation, ViolationKind, WireLog, WireReport, ALL_PROBE_KINDS, WIRE_SCHEMA,
};
